#!/usr/bin/env python3
"""Large-page (2 MB) study (Section 5.4.1).

Runs the graph workloads with regular 4 KB pages and with 2 MB pages on a
Banshee configuration whose DRAM cache is large enough to hold whole 2 MB
pages, using the paper's large-page sampling coefficient (0.001).

Usage::

    python examples/large_pages.py [records_per_core]
"""

from __future__ import annotations

import dataclasses
import sys

from repro import SystemConfig, run_simulation
from repro.experiments.report import format_table
from repro.sim.config import MB, DramConfig
from repro.workloads.registry import GRAPH_WORKLOADS


def enlarged(config: SystemConfig) -> SystemConfig:
    in_dram = DramConfig(name="in-package", capacity_bytes=64 * MB, num_channels=4,
                         bandwidth_scale=config.in_package_dram.bandwidth_scale)
    return dataclasses.replace(config, in_package_dram=in_dram)


def main() -> None:
    records = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    rows = []
    for workload in GRAPH_WORKLOADS:
        small = run_simulation(
            enlarged(SystemConfig.scaled_default(scheme="banshee")),
            workload_name=workload, records_per_core=records,
        )
        large_config = enlarged(
            SystemConfig.scaled_default(scheme="banshee").with_scheme("banshee", large_page_fraction=1.0)
        )
        large = run_simulation(
            large_config, workload_name=workload, records_per_core=records,
            page_size=large_config.dram_cache.large_page_size,
        )
        rows.append([workload, round(small.ipc, 3), round(large.ipc, 3),
                     round(100.0 * (small.cycles / large.cycles - 1.0), 2)])
    print(format_table(["workload", "ipc_4k", "ipc_2m", "gain_pct"], rows,
                       title="Banshee with 2 MB pages vs 4 KB pages"))


if __name__ == "__main__":
    main()
