#!/usr/bin/env python3
"""Design-space exploration of Banshee's own parameters, as a campaign.

Sweeps the three knobs the paper studies in its sensitivity section —
sampling coefficient (Figure 9), DRAM-cache associativity (Table 6) and the
tag-buffer / PTE-update cost (Table 5) — on a workload of your choice, and
prints how miss rate, metadata traffic and performance respond.

The sweeps are declared as :class:`repro.campaign.CampaignSpec` grids and
executed through :func:`repro.campaign.run_campaign`, so they fan out across
worker processes and, when ``--store`` is given, are fully resumable: re-run
with the same store directory and only missing cells are simulated.

Usage::

    python examples/design_space.py [--workload mcf] [--records 6000]
        [--workers 4] [--store DIR]
"""

from __future__ import annotations

import argparse

from repro.campaign import CampaignSpec, ResultStore, SweepGrid, run_campaign
from repro.experiments.report import format_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="mcf")
    parser.add_argument("--records", type=int, default=6000)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--store", help="persistent store directory (enables resume)")
    return parser.parse_args()


def run_sweep(spec: CampaignSpec, store, workers: int, value_by_label):
    """Run a one-axis sweep and return (value, result) pairs in axis order."""
    report = run_campaign(spec, store=store, workers=workers)
    for outcome in report.errors:
        raise RuntimeError(f"cell {outcome.cell.describe()} failed:\n{outcome.error}")
    pairs = [
        (value_by_label[label], result)
        for (label, _workload, _seed), result in report.results().items()
    ]
    return sorted(pairs, key=lambda pair: pair[0])


def main() -> None:
    args = parse_args()
    store = ResultStore(args.store) if args.store else None

    def spec(name: str, schemes) -> CampaignSpec:
        return CampaignSpec(
            name=name,
            grids=[SweepGrid(schemes=schemes, workloads=[args.workload])],
            records_per_core=args.records,
            preset="scaled",
            num_cores=4,
        )

    def one_axis_sweep(name: str, override_field: str, values):
        labels = {f"{name}-{value}": value for value in values}
        schemes = [(label, "banshee", {override_field: value}) for label, value in labels.items()]
        return run_sweep(spec(name, schemes), store, args.workers, labels)

    # Sampling coefficient sweep (Figure 9).
    pairs = one_axis_sweep("coeff", "sampling_coefficient", (1.0, 0.1, 0.01))
    rows = [[coefficient, round(result.dram_cache_miss_rate, 3),
             round(result.in_bytes_per_instruction.get("Counter", 0.0), 3),
             round(result.ipc, 3)]
            for coefficient, result in reversed(pairs)]
    print(format_table(["sampling_coeff", "miss_rate", "counter_bpi", "ipc"], rows,
                       title=f"Sampling coefficient sweep ({args.workload})"))

    # Associativity sweep (Table 6).
    pairs = one_axis_sweep("ways", "ways", (1, 2, 4, 8))
    rows = [[ways, round(result.dram_cache_miss_rate, 3), round(result.ipc, 3)]
            for ways, result in pairs]
    print()
    print(format_table(["ways", "miss_rate", "ipc"], rows, title="Associativity sweep"))

    # PTE-update cost sweep (Table 5).
    pairs = one_axis_sweep("cost", "tag_buffer_flush_cost_us", (0.0, 10.0, 20.0, 40.0))
    rows = [[cost, round(result.cycles, 0), round(result.os_stall_cycles, 0)]
            for cost, result in pairs]
    print()
    print(format_table(["pte_update_cost_us", "cycles", "os_stall_cycles"], rows,
                       title="PTE update cost sweep"))

    if store is not None:
        print(f"\n{len(store)} cells in {store.path} — re-run with --store to skip them all.")


if __name__ == "__main__":
    main()
