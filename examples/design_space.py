#!/usr/bin/env python3
"""Design-space exploration of Banshee's own parameters.

Sweeps the three knobs the paper studies in its sensitivity section —
sampling coefficient (Figure 9), DRAM-cache associativity (Table 6) and the
tag-buffer / PTE-update cost (Table 5) — on a workload of your choice, and
prints how miss rate, metadata traffic and performance respond.

Usage::

    python examples/design_space.py [workload] [records_per_core]
"""

from __future__ import annotations

import sys

from repro import SystemConfig, run_simulation
from repro.experiments.report import format_table


def run(workload, records, **overrides):
    config = SystemConfig.scaled_default(scheme="banshee").with_scheme("banshee", **overrides)
    return run_simulation(config, workload_name=workload, records_per_core=records)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    records = int(sys.argv[2]) if len(sys.argv) > 2 else 6000

    rows = []
    for coefficient in (1.0, 0.1, 0.01):
        result = run(workload, records, sampling_coefficient=coefficient)
        rows.append([coefficient, round(result.dram_cache_miss_rate, 3),
                     round(result.in_bytes_per_instruction.get("Counter", 0.0), 3),
                     round(result.ipc, 3)])
    print(format_table(["sampling_coeff", "miss_rate", "counter_bpi", "ipc"], rows,
                       title=f"Sampling coefficient sweep ({workload})"))

    rows = []
    for ways in (1, 2, 4, 8):
        result = run(workload, records, ways=ways)
        rows.append([ways, round(result.dram_cache_miss_rate, 3), round(result.ipc, 3)])
    print()
    print(format_table(["ways", "miss_rate", "ipc"], rows, title="Associativity sweep"))

    rows = []
    for cost in (0.0, 10.0, 20.0, 40.0):
        result = run(workload, records, tag_buffer_flush_cost_us=cost)
        rows.append([cost, round(result.cycles, 0), round(result.os_stall_cycles, 0)])
    print()
    print(format_table(["pte_update_cost_us", "cycles", "os_stall_cycles"], rows,
                       title="PTE update cost sweep"))


if __name__ == "__main__":
    main()
