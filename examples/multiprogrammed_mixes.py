#!/usr/bin/env python3
"""Multi-programmed SPEC mixes (Table 4) under different DRAM-cache schemes.

The heterogeneous mixes stress the DRAM cache differently from the
homogeneous runs: streaming, irregular and compute-bound programs compete
for the same in-package capacity and for off-package bandwidth.  This
example runs mix1/mix2/mix3 under NoCache, Alloy, and Banshee and reports
per-mix speedups and traffic.

Usage::

    python examples/multiprogrammed_mixes.py [records_per_core]
"""

from __future__ import annotations

import sys

from repro import SystemConfig, run_simulation
from repro.experiments.report import format_table
from repro.workloads.mixes import MIX_DEFINITIONS

SCHEMES = [("NoCache", "nocache"), ("Alloy 0.1", "alloy"), ("Banshee", "banshee")]


def main() -> None:
    records = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    rows = []
    for mix in sorted(MIX_DEFINITIONS):
        baseline = None
        for label, scheme in SCHEMES:
            config = SystemConfig.scaled_default(scheme=scheme)
            if scheme == "alloy":
                config = config.with_scheme("alloy", alloy_replacement_probability=0.1)
            result = run_simulation(config, workload_name=mix, records_per_core=records)
            if baseline is None:
                baseline = result
            rows.append(
                [mix, label, round(result.speedup_over(baseline), 3),
                 round(result.mpki, 2),
                 round(result.total_in_bytes_per_instruction, 2),
                 round(result.total_off_bytes_per_instruction, 2)]
            )
    print(format_table(["mix", "scheme", "speedup", "mpki", "in_bpi", "off_bpi"], rows,
                       title="Multi-programmed SPEC mixes (Table 4)"))
    print("\nPer-core benchmark assignment:")
    for mix, benchmarks in sorted(MIX_DEFINITIONS.items()):
        print(f"  {mix}: {', '.join(benchmarks)}")


if __name__ == "__main__":
    main()
