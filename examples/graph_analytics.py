#!/usr/bin/env python3
"""Graph-analytics study: all DRAM-cache schemes on the throughput workloads.

The paper motivates in-package DRAM with graph and machine-learning codes
(Section 1) and reports that Banshee's largest gains come from the
high-traffic graph benchmarks.  This example runs every scheme on the graph
workloads and prints a Figure-4-style comparison restricted to them.

Usage::

    python examples/graph_analytics.py [records_per_core]
"""

from __future__ import annotations

import sys

from repro import SystemConfig, geometric_mean, run_simulation
from repro.experiments.report import format_table
from repro.workloads.registry import GRAPH_WORKLOADS

SCHEMES = [
    ("NoCache", "nocache", {}),
    ("Unison", "unison", {}),
    ("TDC", "tdc", {}),
    ("Alloy 0.1", "alloy", {"alloy_replacement_probability": 0.1}),
    ("Banshee", "banshee", {}),
    ("CacheOnly", "cacheonly", {}),
]


def main() -> None:
    records = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    rows = []
    per_scheme = {label: [] for label, _s, _o in SCHEMES}
    for workload in GRAPH_WORKLOADS:
        baseline = None
        for label, scheme, overrides in SCHEMES:
            config = SystemConfig.scaled_default(scheme=scheme)
            if overrides:
                config = config.with_scheme(scheme, **overrides)
            result = run_simulation(config, workload_name=workload, records_per_core=records)
            if label == "NoCache":
                baseline = result
            speedup = result.speedup_over(baseline)
            per_scheme[label].append(speedup)
            rows.append(
                [workload, label, round(speedup, 3), round(result.dram_cache_miss_rate, 3),
                 round(result.total_in_bytes_per_instruction, 2),
                 round(result.total_off_bytes_per_instruction, 2)]
            )
    print(format_table(
        ["workload", "scheme", "speedup", "miss_rate", "in_bpi", "off_bpi"], rows,
        title="Graph analytics workloads (speedup normalised to NoCache)",
    ))
    print("\nGeometric-mean speedups:")
    for label, values in per_scheme.items():
        print(f"  {label:10s} {geometric_mean(values):.3f}")


if __name__ == "__main__":
    main()
