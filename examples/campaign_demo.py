#!/usr/bin/env python3
"""Campaign subsystem walkthrough: declare, fan out, resume, export.

Runs a small (scheme x workload x seed) matrix through
:func:`repro.campaign.run_campaign` twice against the same store directory —
the second pass performs zero simulations because every cell is served from
the persistent :class:`~repro.campaign.ResultStore` — then rebuilds a
Figure-4-style speedup table straight from the store and exports it as CSV.

Usage::

    python examples/campaign_demo.py [store_dir] [workers]

The same flow is available without writing code::

    python -m repro.campaign run --store ./campaign-store \\
        --schemes nocache banshee alloy --workloads gcc mcf --seeds 1 2 \\
        --records 2000 --cores 2 --preset tiny --workers 4
    python -m repro.campaign status --store ./campaign-store
    python -m repro.campaign export --store ./campaign-store --format csv
"""

from __future__ import annotations

import sys
import tempfile

from repro.campaign import CampaignSpec, ResultStore, SweepGrid, export_csv, run_campaign
from repro.experiments.report import format_table
from repro.experiments.runner import ResultCache, run_simulation


def progress(done, total, outcome):
    source = "store" if outcome.from_store else f"{outcome.wall_seconds:.2f}s"
    print(f"  [{done}/{total}] {outcome.cell.describe():<32s} {source}")


def main() -> None:
    store_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="campaign-demo-")
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    spec = CampaignSpec(
        name="demo",
        grids=[
            SweepGrid(
                schemes=["nocache", "banshee", ("Alloy 0.1", "alloy", {"alloy_replacement_probability": 0.1})],
                workloads=["gcc", "mcf"],
                seeds=[1, 2],
            )
        ],
        records_per_core=2000,
        num_cores=2,
        preset="tiny",
    )
    store = ResultStore(store_dir)

    print(f"First pass: {spec.num_cells} cells across {workers} workers -> {store.path}")
    report = run_campaign(spec, store=store, workers=workers, progress=progress)
    print(f"  simulated={len(report.simulated)} from_store={len(report.skipped)} errors={len(report.errors)}\n")

    print("Second pass against the same store (resumable: nothing re-simulates)")
    report = run_campaign(spec, store=store, workers=workers)
    print(f"  simulated={len(report.simulated)} from_store={len(report.skipped)}\n")

    # Rebuild a speedup table purely from the store: the read-through cache
    # finds every simulation on disk, so run_simulation never runs the engine.
    cache = ResultCache(store=store)
    rows = []
    for workload in ("gcc", "mcf"):
        results = {}
        for label, scheme, overrides in (
            ("nocache", "nocache", {}),
            ("banshee", "banshee", {}),
            ("Alloy 0.1", "alloy", {"alloy_replacement_probability": 0.1}),
        ):
            from repro.sim.config import SystemConfig

            config = SystemConfig.tiny(scheme=scheme, num_cores=2, seed=1)
            if overrides:
                config = config.with_scheme(scheme, **overrides)
            results[label] = run_simulation(
                config, workload_name=workload, records_per_core=2000, seed=1, cache=cache
            )
        baseline = results["nocache"]
        for label in ("banshee", "Alloy 0.1"):
            rows.append([workload, label, round(results[label].speedup_over(baseline), 3)])
    print(format_table(["workload", "scheme", "speedup_vs_nocache"], rows,
                       title="Speedups rebuilt from the store (0 engine runs)"))
    print(f"  cache: hits={cache.hits} misses={cache.misses} store_hits={cache.store_hits}\n")

    csv_text = export_csv(store)
    print("CSV export (first 3 lines):")
    for line in csv_text.splitlines()[:3]:
        print(f"  {line}")
    print(f"\nStore kept at {store_dir} — re-run this script to see a full store-hit pass.")


if __name__ == "__main__":
    main()
