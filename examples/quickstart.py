#!/usr/bin/env python3
"""Quickstart: compare Banshee against NoCache on one workload.

Runs the PageRank workload on a small scaled configuration under the
NoCache baseline and under Banshee, then prints speedup, miss rate and the
DRAM traffic split — the three quantities the paper's evaluation revolves
around.

Usage::

    python examples/quickstart.py [workload] [records_per_core]
"""

from __future__ import annotations

import sys

from repro import SystemConfig, run_simulation


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "pagerank"
    records = int(sys.argv[2]) if len(sys.argv) > 2 else 8000

    print(f"workload={workload}  records/core={records}")
    baseline = run_simulation(
        SystemConfig.scaled_default(scheme="nocache"),
        workload_name=workload,
        records_per_core=records,
    )
    banshee = run_simulation(
        SystemConfig.scaled_default(scheme="banshee"),
        workload_name=workload,
        records_per_core=records,
    )

    print(f"\nNoCache : cycles={baseline.cycles:12.0f}  ipc={baseline.ipc:.3f}  "
          f"off-package bytes/instr={baseline.total_off_bytes_per_instruction:.2f}")
    print(f"Banshee : cycles={banshee.cycles:12.0f}  ipc={banshee.ipc:.3f}  "
          f"off-package bytes/instr={banshee.total_off_bytes_per_instruction:.2f}")
    print(f"\nBanshee speedup over NoCache : {banshee.speedup_over(baseline):.3f}x")
    print(f"Banshee DRAM cache miss rate : {banshee.dram_cache_miss_rate:.3f}")
    print(f"Banshee MPKI                 : {banshee.mpki:.2f}")
    print("\nBanshee in-package traffic breakdown (bytes/instr):")
    for category, value in sorted(banshee.in_bytes_per_instruction.items()):
        if value > 0:
            print(f"  {category:12s} {value:8.3f}")


if __name__ == "__main__":
    main()
