#!/usr/bin/env python3
"""Trace subsystem walkthrough: record once, transform, replay everywhere.

Captures two single-program workloads to ``.rtrace`` files, verifies that
replaying a capture is bit-identical to re-running its generator, interleaves
the captures into a custom multi-programmed mix that no generator defines,
and finally runs that mix against two scheme variants of the tag-buffer axis
— all through the ordinary ``trace:<path>`` workload name, so the same files
work with ``repro.campaign``, ``repro.perf`` and the figure functions.

Usage::

    python examples/trace_demo.py [trace_dir]

The same flow is available without writing code::

    python -m repro.trace record --workload pagerank --output pr.rtrace \\
        --records 2000 --cores 1 --scale 0.05
    python -m repro.trace transform interleave --inputs pr.rtrace mcf.rtrace \\
        --output mix.rtrace --name pr+mcf
    python -m repro.trace replay mix.rtrace --scheme banshee-tb4k
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.experiments.report import format_table
from repro.sim.config import SystemConfig
from repro.sim.engine import SimulationEngine
from repro.sim.system import System
from repro.trace import TraceWorkload, interleave_traces, record_named, slice_trace
from repro.workloads.registry import get_workload

RECORDS = 2000
SCALE = 0.05


def run(workload, scheme: str):
    config = SystemConfig.tiny(scheme=scheme, num_cores=workload.num_cores, seed=1)
    return SimulationEngine(System(config, workload)).run(RECORDS)


def main() -> None:
    trace_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="traces-"))
    trace_dir.mkdir(parents=True, exist_ok=True)

    # 1. Capture: pay the generator cost once per workload.
    captures = {}
    for name in ("pagerank", "mcf"):
        path = str(trace_dir / f"{name}.rtrace")
        meta = record_named(name, path, records_per_core=RECORDS, num_cores=1,
                            scale=SCALE, seed=1, compress=True)
        captures[name] = path
        print(f"recorded {name}: {meta.stats['records']} records, "
              f"{meta.stats['unique_pages']} pages -> {path}")

    # 2. Replay fidelity: a trace is its generator, bit for bit.
    generated = run(get_workload("pagerank", 1, scale=SCALE, seed=1), "banshee")
    replayed = run(TraceWorkload(captures["pagerank"]), "banshee")
    assert replayed.identity_dict() == generated.identity_dict()
    print("\nreplay of pagerank.rtrace is bit-identical to the generator run\n")

    # 3. Transform: a custom two-program mix no generator defines, built from
    #    the captures (each slot rebased into its own 1 GB slice), trimmed to
    #    a common length first.
    short = {}
    for name, path in captures.items():
        short[name] = str(trace_dir / f"{name}-short.rtrace")
        slice_trace(path, short[name], records=RECORDS)
    mix_path = str(trace_dir / "pr_mcf.rtrace")
    mix_meta = interleave_traces([short["pagerank"], short["mcf"]], mix_path, name="pr+mcf")
    print(f"interleaved mix '{mix_meta.name}': {mix_meta.num_cores} cores, "
          f"{mix_meta.stats['records']} records")

    # 4. Sweep the mix across two points of the tag-buffer axis.
    rows = []
    for scheme in ("banshee", "banshee-tb4k"):
        result = run(TraceWorkload(mix_path), scheme)
        summary = result.summary()
        rows.append([scheme, summary["ipc"], summary["miss_rate"],
                     summary["in_bpi"], summary["off_bpi"]])
    print()
    print(format_table(["scheme", "ipc", "miss_rate", "in_bpi", "off_bpi"],
                       rows, title=f"Custom mix '{mix_meta.name}' across the tag-buffer axis"))
    print(f"\ntraces kept in {trace_dir} — sweep the mix through a campaign with:\n"
          f"  python -m repro.campaign run --store ./trace-store "
          f"--schemes banshee banshee-tb4k \\\n"
          f"      --workloads trace:{mix_path} --records {RECORDS} --cores 2 --preset tiny")


if __name__ == "__main__":
    main()
