"""Unit tests for statistics collection."""

import pytest

from repro.sim.stats import MissRateWindow, StatsSet, TrafficCategory, TrafficStats, merge_traffic


def test_stats_set_inc_and_get():
    stats = StatsSet("test")
    stats.inc("hits")
    stats.inc("hits", 4)
    assert stats.get("hits") == 5
    assert stats.get("missing") == 0


def test_stats_set_merge():
    a = StatsSet("a")
    b = StatsSet("b")
    a.inc("x", 2)
    b.inc("x", 3)
    b.inc("y", 1)
    a.merge(b)
    assert a.get("x") == 5
    assert a.get("y") == 1


def test_traffic_stats_breakdown():
    traffic = TrafficStats("in-package")
    traffic.record(TrafficCategory.HIT_DATA, 64)
    traffic.record(TrafficCategory.TAG, 32)
    traffic.record(TrafficCategory.HIT_DATA, 64)
    assert traffic.total_bytes == 160
    assert traffic.bytes_for(TrafficCategory.HIT_DATA) == 128
    assert traffic.breakdown()["Tag"] == 32
    assert traffic.total_accesses == 3


def test_traffic_stats_bytes_per_instruction():
    traffic = TrafficStats("x")
    traffic.record(TrafficCategory.REPLACEMENT, 4096)
    per_instr = traffic.bytes_per_instruction(1000)
    assert per_instr["Replacement"] == pytest.approx(4.096)
    assert traffic.bytes_per_instruction(0)["Replacement"] == 0.0


def test_traffic_stats_rejects_negative():
    traffic = TrafficStats("x")
    with pytest.raises(ValueError):
        traffic.record(TrafficCategory.TAG, -1)


def test_merge_traffic():
    a = TrafficStats("a")
    b = TrafficStats("b")
    a.record(TrafficCategory.HIT_DATA, 64)
    b.record(TrafficCategory.HIT_DATA, 64)
    merged = merge_traffic({"a": a, "b": b})
    assert merged.bytes_for(TrafficCategory.HIT_DATA) == 128


def test_miss_rate_window_tracks_rate():
    window = MissRateWindow(window=100, initial_rate=1.0)
    assert window.rate == pytest.approx(1.0)
    for _ in range(100):
        window.record(hit=True)
    assert window.rate == pytest.approx(0.0, abs=0.05)
    for _ in range(100):
        window.record(hit=False)
    assert window.rate > 0.9


def test_miss_rate_window_validation():
    with pytest.raises(ValueError):
        MissRateWindow(window=0)
