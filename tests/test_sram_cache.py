"""Unit tests for the SRAM cache model and replacement policies."""

import pytest

from repro.cache.replacement import FifoPolicy, LruPolicy, RandomPolicy, make_policy
from repro.cache.sram_cache import SramCache
from repro.sim.config import CacheLevelConfig


def make_cache(size=4096, ways=4, replacement="lru"):
    return SramCache("test", CacheLevelConfig(size_bytes=size, ways=ways, replacement=replacement))


def test_miss_then_hit():
    cache = make_cache()
    assert not cache.access(0x1000, False).hit
    assert cache.access(0x1000, False).hit
    assert cache.hits == 1 and cache.misses == 1


def test_same_line_different_offset_hits():
    cache = make_cache()
    cache.access(0x1000, False)
    assert cache.access(0x1020, False).hit


def test_dirty_eviction_reported():
    cache = make_cache(size=256, ways=1)  # 4 sets, direct mapped
    cache.access(0x0, True)
    result = cache.access(0x400, False)  # same set, evicts the dirty line
    assert result.eviction is not None
    assert result.eviction.dirty
    assert result.eviction.addr == 0x0


def test_clean_eviction_not_dirty():
    cache = make_cache(size=256, ways=1)
    cache.access(0x0, False)
    result = cache.access(0x400, False)
    assert result.eviction is not None
    assert not result.eviction.dirty


def test_lru_eviction_order():
    cache = make_cache(size=256, ways=2)  # 2 sets, 2 ways
    cache.access(0x0, False)
    cache.access(0x200, False)
    cache.access(0x0, False)  # touch line 0 so 0x200 is LRU
    result = cache.access(0x400, False)
    assert result.eviction.addr == 0x200


def test_occupancy_never_exceeds_capacity():
    cache = make_cache(size=1024, ways=4)
    for i in range(1000):
        cache.access(i * 64, i % 3 == 0)
    assert cache.occupancy <= cache.capacity_lines


def test_fill_does_not_count_as_demand():
    cache = make_cache()
    cache.fill(0x1000, dirty=True)
    assert cache.hits == 0 and cache.misses == 0
    assert cache.lookup(0x1000)


def test_invalidate_returns_dirty_line():
    cache = make_cache()
    cache.access(0x1000, True)
    evicted = cache.invalidate(0x1000)
    assert evicted is not None and evicted.dirty
    assert not cache.lookup(0x1000)
    assert cache.invalidate(0x1000) is None


def test_flush_page_removes_all_lines():
    cache = make_cache(size=16 * 1024, ways=8)
    for offset in range(0, 4096, 64):
        cache.access(0x2000 + offset if False else offset, True)
    dirty = cache.flush_page(0, 4096)
    assert len(dirty) > 0
    for offset in range(0, 4096, 64):
        assert not cache.lookup(offset)


def test_miss_rate():
    cache = make_cache()
    cache.access(0, False)
    cache.access(0, False)
    assert cache.miss_rate == pytest.approx(0.5)


# --------------------------------------------------------------------------- replacement policies


def test_lru_policy_victim_is_least_recent():
    policy = LruPolicy(1, 4)
    for way in range(4):
        policy.on_fill(0, way)
    policy.on_access(0, 0)
    victim = policy.victim(0, [True] * 4)
    assert victim == 1


def test_lru_policy_prefers_invalid_way():
    policy = LruPolicy(1, 4)
    assert policy.victim(0, [True, False, True, True]) == 1


def test_fifo_policy_ignores_hits():
    policy = FifoPolicy(1, 3)
    for way in range(3):
        policy.on_fill(0, way)
    policy.on_access(0, 0)  # should not matter
    assert policy.victim(0, [True] * 3) == 0


def test_random_policy_returns_valid_way():
    policy = RandomPolicy(1, 4)
    for _ in range(20):
        assert 0 <= policy.victim(0, [True] * 4) < 4


def test_make_policy_rejects_unknown():
    with pytest.raises(ValueError):
        make_policy("plru", 1, 4)
