"""Unit tests for the lazy PTE-update batcher."""

import pytest

from repro.core.pte_extension import PteUpdateBatcher
from repro.core.tag_buffer import TagBuffer
from repro.dramcache.base import OsServices


class RecordingOs(OsServices):
    def __init__(self):
        self.batches = []

    def pte_update_batch(self, initiator_core, updates):
        self.batches.append((initiator_core, list(updates)))


def test_needs_flush_threshold():
    buffers = [TagBuffer(16, 4), TagBuffer(16, 4)]
    batcher = PteUpdateBatcher(buffers, RecordingOs())
    assert not batcher.needs_flush(0.5)
    for page in range(8):
        buffers[0].insert(page, True, 0, remap=True)
    assert batcher.needs_flush(0.5)


def test_flush_collects_from_all_buffers_and_clears():
    buffers = [TagBuffer(16, 4), TagBuffer(16, 4)]
    os_services = RecordingOs()
    batcher = PteUpdateBatcher(buffers, os_services)
    buffers[0].insert(1, True, 2, remap=True)
    buffers[1].insert(5, False, 0, remap=True)
    buffers[1].insert(6, True, 1, remap=False)
    applied = batcher.flush(initiator_core=3)
    assert applied == 2
    assert os_services.batches[0][0] == 3
    assert set(page for page, _c, _w in os_services.batches[0][1]) == {1, 5}
    assert all(buffer.remap_count == 0 for buffer in buffers)
    assert batcher.flushes == 1
    assert batcher.updates_applied == 2


def test_requires_at_least_one_buffer():
    with pytest.raises(ValueError):
        PteUpdateBatcher([], RecordingOs())
