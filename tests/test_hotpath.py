"""Hot-path regression tests.

Covers the three guarantees of the allocation-free record pipeline:

* engine reuse is safe (per-run counter reset — the warmup/budget bug),
* warmup is excluded from *every* reported statistic (the
  ``begin_measurement`` snapshot bug for scheme/hierarchy stats),
* the fast path is bit-identical to the pre-refactor implementation
  (golden results captured from the original composed-API pipeline).
"""

import json
import os

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.sram_cache import SramCache
from repro.dramcache.variants import available_scheme_names
from repro.sim.config import SystemConfig
from repro.sim.engine import ENGINE_MODES, SimulationEngine
from repro.sim.system import System
from repro.util.rng import DeterministicRng
from repro.workloads.registry import get_workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_hotpath.json")

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

#: Engine modes testable on this host (the numpy front end needs numpy).
TESTABLE_MODES = [
    mode for mode in ENGINE_MODES if mode != "numpy" or HAVE_NUMPY
]


def make_engine(scheme="banshee", workload="gcc", num_cores=2, scale=0.05, seed=1):
    config = SystemConfig.tiny(scheme=scheme, num_cores=num_cores, seed=seed)
    return SimulationEngine(System(config, get_workload(workload, num_cores, scale=scale, seed=seed)))


# ---------------------------------------------------------------- engine reuse


def test_engine_reuse_resets_per_run_counter():
    engine = make_engine()
    engine.run(100)
    assert engine.records_processed == 200  # 2 cores x 100 records
    assert engine.total_records_processed == 200
    engine.run(150)
    assert engine.records_processed == 300  # per-run, not cumulative
    assert engine.total_records_processed == 500


def test_engine_reuse_does_not_exhaust_total_budget():
    """A reused engine used to hit ``max_total_records`` before record one."""
    engine = make_engine()
    engine.run(100)
    second = engine.run(100, max_total_records=150)
    assert engine.records_processed == 150
    # The shared System keeps simulating across runs (no snapshot between
    # runs without warmup), so the result covers both runs' records.
    assert second.memory_accesses == 200 + 150


def test_engine_reuse_does_not_mistime_warmup():
    """A reused engine used to trip the warmup threshold immediately.

    With the bug, ``records_processed`` carried over from the first run, so
    ``begin_measurement`` fired on the second run's first record and the
    "measured" window silently included the warmup records.
    """
    engine = make_engine()
    engine.run(100)
    result = engine.run(100, warmup_records_per_core=60)
    # 2 cores x (100 - 60) post-warmup records, one memory access each.
    assert result.memory_accesses == 80


# ----------------------------------------------------- warmup stat consistency


def test_warmup_excludes_hierarchy_and_scheme_stats():
    """hierarchy_stats/scheme_stats must be post-warmup deltas like the rest."""
    engine = make_engine(workload="mcf", scale=0.05)
    result = engine.run(400, warmup_records_per_core=200)
    hier = result.hierarchy_stats
    # Every post-warmup record makes exactly one L1 access, so the L1
    # hit+miss total must equal the post-warmup access count.  Before the
    # fix these counters covered the whole run (warmup included).
    assert hier["l1_hits"] + hier["l1_misses"] == result.memory_accesses
    assert hier["l1_misses"] == hier["l2_hits"] + hier["l2_misses"]
    # Scheme counters must agree with the (already deltaed) top-level ones.
    assert result.scheme_stats.get("dram_cache_hits", 0) == result.dram_cache_hits
    assert result.scheme_stats.get("dram_cache_misses", 0) == result.dram_cache_misses


def test_no_warmup_stats_unchanged():
    """Without warmup the deltas equal the whole-run totals."""
    engine = make_engine(workload="mcf", scale=0.05)
    result = engine.run(400)
    hier = result.hierarchy_stats
    assert hier["l1_hits"] + hier["l1_misses"] == result.memory_accesses
    assert result.scheme_stats.get("dram_cache_hits", 0) == result.dram_cache_hits


# ------------------------------------------------------- fast-path equivalence


def _reference_walk(hierarchy, core_id, addr, is_write):
    """The pre-refactor composed walk, via the allocating public APIs."""
    outcome = hierarchy.access(core_id, addr, is_write)
    return outcome.level, outcome.llc_miss, [(wb.addr, wb.dirty) for wb in outcome.writebacks]


def test_hierarchy_fast_path_matches_public_api():
    config = SystemConfig.tiny(num_cores=2)
    slow = CacheHierarchy(config, rng=DeterministicRng(3))
    fast = CacheHierarchy(config, rng=DeterministicRng(3))
    rng = DeterministicRng(11)
    for i in range(4000):
        core_id = i % 2
        addr = (rng.randint(0, 1 << 18)) * 16
        is_write = rng.chance(0.3)
        expected = _reference_walk(slow, core_id, addr, is_write)
        outcome = fast.access_reused(core_id, addr, is_write)
        got = (outcome.level, outcome.llc_miss, [(wb.addr, wb.dirty) for wb in outcome.writebacks])
        assert got == expected
    assert fast.stats() == slow.stats()


def test_sram_fast_path_matches_public_api():
    from repro.sim.config import CacheLevelConfig

    for policy in ("lru", "fifo", "random"):
        config = CacheLevelConfig(size_bytes=4096, ways=4, replacement=policy)
        slow = SramCache("slow", config, rng=DeterministicRng(5))
        fast = SramCache("fast", config, rng=DeterministicRng(5))
        rng = DeterministicRng(9)
        for _ in range(3000):
            addr = rng.randint(0, 1 << 16)
            is_write = rng.chance(0.5)
            result = slow.access(addr, is_write)
            hit = fast.access_fast(addr, is_write)
            assert hit == result.hit
            if not hit:
                if result.eviction is None:
                    assert fast.victim_addr is None
                else:
                    assert fast.victim_addr == result.eviction.addr
                    assert fast.victim_dirty == result.eviction.dirty
        assert (fast.hits, fast.misses, fast.evictions, fast.dirty_evictions) == (
            slow.hits, slow.misses, slow.evictions, slow.dirty_evictions
        )


# ------------------------------------------------------------ golden determinism


def load_goldens():
    with open(GOLDEN_PATH, encoding="utf-8") as fh:
        return json.load(fh)["cells"]


@pytest.mark.parametrize("mode", TESTABLE_MODES)
@pytest.mark.parametrize(
    "cell", load_goldens(), ids=lambda cell: f"{cell['scheme']}-{cell['workload']}"
)
def test_fast_path_matches_pre_refactor_goldens(cell, mode):
    """Every engine mode must stay bit-identical to the original pipeline.

    The goldens were captured from the original allocating pipeline (before
    the allocation-free fast path landed); JSON round-trip on both sides
    makes float comparison exact (shortest-round-trip formatting).  The
    scalar, batch and numpy engines all replay the same golden cells.
    """
    config = SystemConfig.scaled_default(
        scheme=cell["scheme"], num_cores=cell["num_cores"], seed=cell["seed"]
    )
    workload = get_workload(
        cell["workload"], cell["num_cores"], scale=cell["scale"], seed=cell["seed"]
    )
    result = SimulationEngine(System(config, workload), mode=mode).run(cell["records_per_core"])
    assert json.loads(json.dumps(result.identity_dict())) == cell["result"]


# ------------------------------------------------------ cross-mode bit-identity


def _identity(scheme, mode, workload="gcc", num_cores=2, records=600, warmup=150):
    config = SystemConfig.scaled_default(scheme=scheme, num_cores=num_cores, seed=4)
    engine = SimulationEngine(
        System(config, get_workload(workload, num_cores, scale=0.02, seed=4)), mode=mode
    )
    return engine.run(records, warmup_records_per_core=warmup).identity_dict()


@pytest.mark.parametrize("scheme", available_scheme_names())
def test_batch_engine_matches_scalar_for_every_variant(scheme):
    """Batch and scalar must agree exactly for every registered variant.

    Variants flip replacement policies, page sizes, sampling rates and OS
    hooks — the machinery most likely to disagree with the batch engine's
    inlined hit path and run-length scheduling.  Warmup is included so run
    cuts at the warmup edge are exercised too.
    """
    assert _identity(scheme, "batch") == _identity(scheme, "scalar")


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy engine mode requires numpy")
@pytest.mark.parametrize("scheme", ["banshee", "nocache", "hma"])
def test_numpy_engine_matches_scalar(scheme):
    """The vectorized front end must not change a single result bit."""
    assert _identity(scheme, "numpy", workload="pagerank", num_cores=1) == \
        _identity(scheme, "scalar", workload="pagerank", num_cores=1)


def test_single_core_scalar_fast_path_matches_multicore_semantics():
    """The heap-free single-core scalar loop is bit-identical per core.

    One core simulated alone must produce the same identity results whether
    the scheduler uses the heap or the dedicated single-core loop; compare
    against the batch engine, which schedules without a heap by design.
    """
    assert _identity("banshee", "scalar", workload="pagerank", num_cores=1) == \
        _identity("banshee", "batch", workload="pagerank", num_cores=1)
