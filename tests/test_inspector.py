"""Tests for the engine inspector stack: snapshots (capture / serialize /
restore / resume), watchpoints, the file-mailbox attach protocol, warmup
checkpointing and the Chrome trace-event export."""

import json
import multiprocessing
import os
import threading

import pytest

from repro.campaign import CampaignSpec, ResultStore, SweepGrid, run_campaign
from repro.campaign.cli import main as campaign_main
from repro.dramcache.variants import available_scheme_names
from repro.obs.cli import main as obs_main
from repro.obs.events import EventLog, make_event, read_events
from repro.obs.export_chrome import events_to_trace, timeline_to_trace, write_trace
from repro.obs.inspect import InspectorClient, InspectorServer
from repro.obs.snapshot import EngineSnapshot, capture, capture_cursor
from repro.obs.timeline import TimelineObserver
from repro.obs.watch import WatchSession, Watchpoint
from repro.sim.batch import RunController
from repro.sim.config import SystemConfig, config_from_dict, config_hash
from repro.sim.engine import ENGINE_MODES, SimulationEngine
from repro.sim.system import System
from repro.trace.capture import record_named
from repro.workloads.registry import get_workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_hotpath.json")

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

TESTABLE_MODES = [mode for mode in ENGINE_MODES if mode != "numpy" or HAVE_NUMPY]


class SnapshotAt(RunController):
    """Test controller: capture one snapshot at global record ``target``."""

    def __init__(self, target):
        self.target = target
        self.snapshot = None

    def next_stop(self, processed):
        return None if self.snapshot is not None else self.target

    def on_edge(self, cursor):
        if self.snapshot is None and cursor.processed >= self.target:
            self.snapshot = capture_cursor(cursor)
        return False

    def on_finish(self, cursor):
        return None


def build_engine(scheme="banshee", mode="batch", workload="gcc", num_cores=2,
                 scale=0.05, seed=1, config=None):
    if config is None:
        config = SystemConfig.tiny(scheme=scheme, num_cores=num_cores, seed=seed)
    system = System(config, get_workload(workload, config.num_cores, scale=scale, seed=seed))
    return SimulationEngine(system, mode=mode)


def run_resumed(config, workload, records, warmup, snap_at, mode):
    """identity_dict of a run interrupted at ``snap_at`` and resumed fresh."""
    controller = SnapshotAt(snap_at)
    first = SimulationEngine(System(config, workload), mode=mode)
    first.run(records, warmup_records_per_core=warmup, controller=controller)
    assert controller.snapshot is not None
    # Serialize through JSON so the resumed run exercises the full persisted
    # form, not live object references.
    snapshot = EngineSnapshot.from_dict(json.loads(json.dumps(controller.snapshot.to_dict())))
    resumed = SimulationEngine(System(config, workload), mode=mode)
    resumed.restore(snapshot)
    return resumed.run(records, warmup_records_per_core=warmup).identity_dict()


# -------------------------------------------------------------- resume identity


@pytest.mark.parametrize("mode", TESTABLE_MODES)
@pytest.mark.parametrize("scheme", ["banshee", "alloy", "unison"])
def test_resume_at_record_is_bit_identical(scheme, mode):
    """Interrupt at record N, restore into a fresh system, finish: identical."""
    config = SystemConfig.tiny(scheme=scheme, num_cores=2, seed=3)
    workload = get_workload("gcc", 2, scale=0.05, seed=3)
    straight = SimulationEngine(System(config, workload), mode=mode)
    expected = straight.run(400, warmup_records_per_core=100).identity_dict()
    got = run_resumed(config, workload, 400, 100, snap_at=300, mode=mode)
    assert got == expected


@pytest.mark.parametrize("scheme", available_scheme_names())
def test_resume_every_registered_variant(scheme):
    """Every registered scheme variant snapshots and resumes bit-identically."""
    config = SystemConfig.tiny(scheme=scheme, num_cores=2, seed=5)
    workload = get_workload("mcf", 2, scale=0.05, seed=5)
    expected = SimulationEngine(System(config, workload)).run(200).identity_dict()
    got = run_resumed(config, workload, 200, 0, snap_at=150, mode="batch")
    assert got == expected


def load_goldens():
    with open(GOLDEN_PATH, encoding="utf-8") as fh:
        return json.load(fh)["cells"]


@pytest.mark.parametrize(
    "cell",
    [c for c in load_goldens() if c["workload"] == "gcc"],
    ids=lambda cell: f"{cell['scheme']}-{cell['workload']}",
)
def test_resume_matches_pre_refactor_goldens(cell):
    """A snapshot-interrupted run still lands exactly on the pinned goldens."""
    config = SystemConfig.scaled_default(
        scheme=cell["scheme"], num_cores=cell["num_cores"], seed=cell["seed"]
    )
    workload = get_workload(
        cell["workload"], cell["num_cores"], scale=cell["scale"], seed=cell["seed"]
    )
    got = run_resumed(
        config, workload, cell["records_per_core"], 0,
        snap_at=cell["records_per_core"], mode="batch",
    )
    assert json.loads(json.dumps(got)) == cell["result"]


def test_resume_trace_workload(tmp_path):
    """Snapshot/restore works when the workload is a captured-trace replay."""
    path = str(tmp_path / "gcc.rtrace")
    record_named("gcc", path, records_per_core=400, num_cores=2, scale=0.05, seed=7)
    name = f"trace:{path}"
    config = SystemConfig.tiny(num_cores=2, seed=7)
    expected = SimulationEngine(
        System(config, get_workload(name, 2))
    ).run(400, warmup_records_per_core=100).identity_dict()
    got = run_resumed(config, get_workload(name, 2), 400, 100, snap_at=350, mode="batch")
    assert got == expected


def test_resume_before_warmup_edge_preserves_measurement():
    """A snapshot taken inside the warmup window resumes with warmup intact."""
    config = SystemConfig.tiny(num_cores=2, seed=2)
    workload = get_workload("gcc", 2, scale=0.05, seed=2)
    expected = SimulationEngine(System(config, workload)).run(
        400, warmup_records_per_core=200
    ).identity_dict()
    got = run_resumed(config, workload, 400, 200, snap_at=150, mode="batch")
    assert got == expected


# ------------------------------------------------------------ snapshot serde


def test_snapshot_dict_and_json_round_trip_exactly(tmp_path):
    engine = build_engine(scheme="banshee")
    engine.run(300, warmup_records_per_core=50)
    system = engine.system
    snapshot = capture(system, 600, [300, 300], True)
    payload = snapshot.to_dict()
    assert json.loads(json.dumps(payload)) == payload
    assert EngineSnapshot.from_dict(payload).to_dict() == payload
    path = str(tmp_path / "snap.json")
    snapshot.save(path)
    assert EngineSnapshot.load(path).to_dict() == payload
    summary = snapshot.summary()
    assert summary["processed"] == 600
    assert summary["workload"] == "gcc"


def test_snapshot_rejects_wrong_kind_version_and_config():
    engine = build_engine()
    engine.run(100)
    snapshot = capture(engine.system, 200, [100, 100], True)
    bad_kind = dict(snapshot.to_dict(), kind="something-else")
    with pytest.raises(ValueError, match="not an engine snapshot"):
        EngineSnapshot.from_dict(bad_kind)
    bad_version = dict(snapshot.to_dict(), version=999)
    with pytest.raises(ValueError, match="version"):
        EngineSnapshot.from_dict(bad_version)
    other = build_engine(scheme="alloy")
    with pytest.raises(ValueError, match="different configuration"):
        other.restore(snapshot)
    with pytest.raises(ValueError, match="cores"):
        capture(engine.system, 200, [100], True)


def test_config_from_dict_round_trips_presets():
    for config in (
        SystemConfig.tiny(scheme="banshee-lru", num_cores=2),
        SystemConfig.scaled_default(scheme="alloy", num_cores=4),
        SystemConfig.tiny(scheme="unison", num_cores=1, seed=9),
    ):
        rebuilt = config_from_dict(config.to_dict())
        assert rebuilt == config
        assert config_hash(rebuilt) == config_hash(config)


# ---------------------------------------------------------------- watchpoints


def test_watchpoint_parse_and_validation():
    point = Watchpoint.parse("page:0x12")
    assert (point.kind, point.value) == ("page", 0x12)
    assert point.on == ("touch", "fill", "evict", "writeback")
    assert Watchpoint.parse("addr:4096:touch").on == ("touch",)
    assert Watchpoint.parse("set:7").on == ("touch", "writeback")
    assert Watchpoint.parse("page:300:fill|evict").on == ("fill", "evict")
    with pytest.raises(ValueError, match="unknown watch kind"):
        Watchpoint.parse("frame:1")
    with pytest.raises(ValueError, match="bad watch spec"):
        Watchpoint.parse("page")
    with pytest.raises(ValueError, match="page-granular"):
        Watchpoint.parse("set:3:fill")
    with pytest.raises(ValueError, match="duplicate"):
        WatchSession([Watchpoint.parse("page:1"), Watchpoint.parse("page:1")])


def _watched_run(mode, flush_interval=4096, events=None):
    engine = build_engine(scheme="banshee", mode=mode, seed=11)
    watch = WatchSession(
        [
            Watchpoint("hot-page", "page", 0x20),
            Watchpoint("one-addr", "addr", 0x20000, on=["touch"]),
            Watchpoint("one-set", "set", 3),
        ],
        events=events,
        flush_interval=flush_interval,
    )
    watch.attach(engine.system)
    result = engine.run(400, warmup_records_per_core=100, controller=watch)
    watch.detach()
    return result.identity_dict(), watch.hits, watch.summary()


def test_watch_hits_identical_across_engine_modes():
    """Hit payloads are simulation-derived: identical in every engine mode,
    and watching never perturbs the simulation itself."""
    baseline = build_engine(scheme="banshee", seed=11).run(
        400, warmup_records_per_core=100
    ).identity_dict()
    reference_hits = None
    for mode in TESTABLE_MODES:
        result, hits, summary = _watched_run(mode)
        assert result == baseline, f"watching changed results in {mode} mode"
        assert hits, f"expected watch hits in {mode} mode"
        if reference_hits is None:
            reference_hits = hits
        else:
            assert hits == reference_hits, f"{mode} hits differ from reference"
        assert summary["hits"] == len(hits)


def test_watch_flush_interval_does_not_change_hits(tmp_path):
    log = EventLog(str(tmp_path / "events.jsonl"))
    _, coarse, _ = _watched_run("batch")
    _, fine, _ = _watched_run("batch", flush_interval=32, events=log)
    assert fine == coarse
    emitted = [e for e in read_events(log.path) if e["event"] == "watch_hit"]
    assert [
        {k: e[k] for k in ("watch", "kind", "record", "core", "addr", "page", "write")}
        for e in emitted
    ] == [{k: h[k] for k in ("watch", "kind", "record", "core", "addr", "page", "write")}
          for h in coarse]


def _watch_hits_worker(path):
    _, hits, _ = _watched_run("batch")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(hits, fh)


def test_watch_hits_identical_across_processes(tmp_path):
    """Hit payloads carry no process state: a worker process reproduces the
    serial run's hits exactly (only the event-log envelope may differ)."""
    _, serial_hits, _ = _watched_run("batch")
    out = str(tmp_path / "hits.json")
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=_watch_hits_worker, args=(out,))
    proc.start()
    proc.join(120)
    assert proc.exitcode == 0
    with open(out, encoding="utf-8") as fh:
        worker_hits = json.load(fh)
    assert worker_hits == serial_hits


# ------------------------------------------------------------ attach protocol


def test_inspector_pause_step_dump_watch_resume(tmp_path):
    control = tmp_path / "control"
    events = EventLog(str(tmp_path / "events.jsonl"))
    engine = build_engine(scheme="banshee", seed=13)
    watch = WatchSession(events=events)
    watch.attach(engine.system)
    server = InspectorServer(
        control, watch=watch, events=events, poll_records=100, pause_at=300
    )

    done = {}

    def simulate():
        done["result"] = engine.run(600, controller=server)
        watch.detach()

    thread = threading.Thread(target=simulate)
    thread.start()
    try:
        client = InspectorClient(control, timeout=30.0)
        state = client.wait_for_status("paused")
        assert state["processed"] == 300
        payload = client.request("state")
        assert payload["ok"] and payload["processed"] == 300
        assert sum(payload["consumed_per_core"]) == 300
        reply = client.request("watch", spec="page:0x10")
        assert reply["ok"]
        reply = client.request("step", n=100)
        assert reply["ok"]
        state = client.wait_for_status("paused")
        assert state["processed"] == 400
        dump = client.request("dump")
        assert dump["ok"] and dump["processed"] == 400
        listed = client.request("watches")
        assert listed["ok"] and listed["watchpoints"]
        assert client.request("unwatch", wid="page:0x10")["removed"]
        bad = client.request("nonsense")
        assert not bad["ok"] and "unknown command" in bad["error"]
        assert client.request("resume")["ok"]
        client.wait_for_status("finished")
    finally:
        thread.join(60)
    assert not thread.is_alive()

    # The dumped snapshot resumes bit-identically to the inspected run.
    snapshot = EngineSnapshot.load(dump["path"])
    assert snapshot.progress["processed"] == 400
    resumed = build_engine(scheme="banshee", seed=13)
    resumed.restore(snapshot)
    assert resumed.run(600).identity_dict() == done["result"].identity_dict()

    names = [e["event"] for e in read_events(events.path)]
    assert "inspect_pause" in names and "inspect_resume" in names
    assert "snapshot_saved" in names and "watch_set" in names and "watch_clear" in names


def test_inspector_quit_stops_run_early(tmp_path):
    control = tmp_path / "control"
    engine = build_engine(seed=17)
    server = InspectorServer(control, poll_records=100, pause_at=200)
    done = {}

    def simulate():
        done["result"] = engine.run(2000, controller=server)

    thread = threading.Thread(target=simulate)
    thread.start()
    try:
        client = InspectorClient(control, timeout=30.0)
        client.wait_for_status("paused")
        assert client.request("quit")["ok"]
    finally:
        thread.join(60)
    assert not thread.is_alive()
    assert engine.records_processed == 200


# --------------------------------------------------------------- chrome export


def test_timeline_to_trace_structure(tmp_path):
    events = EventLog(str(tmp_path / "events.jsonl"))
    engine = build_engine(scheme="banshee", seed=19)
    watch = WatchSession([Watchpoint("hot", "page", 0x20)], events=events)
    watch.attach(engine.system)
    observer = TimelineObserver(100)
    result = engine.run(
        600, warmup_records_per_core=200, observer=observer,
        events=events, controller=watch,
    )
    watch.detach()
    trace = timeline_to_trace(result.timeline, events=read_events(events.path))
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    rows = trace["traceEvents"]
    slices = [e for e in rows if e["ph"] == "X"]
    counters = [e for e in rows if e["ph"] == "C"]
    instants = [e for e in rows if e["ph"] == "i"]
    windows = result.timeline["windows"]
    assert len(slices) == len(windows)
    assert len(counters) == 3 * len(windows)
    assert {s["name"] for s in slices} == {"warmup", "measure"}
    # Record-count timebase: slice starts line up with window boundaries.
    assert [s["ts"] for s in slices] == [w["start_record"] for w in windows]
    marks = {e["name"] for e in instants}
    assert "warmup_end" in marks
    assert any(name.startswith("watch:hot:") for name in marks)
    count = write_trace(trace, str(tmp_path / "trace.json"))
    assert count == len(rows)
    with open(tmp_path / "trace.json", encoding="utf-8") as fh:
        assert json.load(fh)["traceEvents"]


def test_events_to_trace_pairs_spans(tmp_path):
    records = [
        make_event("run_start", workload="gcc", scheme="banshee"),
        make_event("cell_start", cell="banshee/gcc/1"),
        make_event("cell_finish", cell="banshee/gcc/1"),
        make_event("run_end", workload="gcc"),
        make_event("cell_start", cell="banshee/gcc/2"),  # left unclosed
    ]
    trace = events_to_trace(records)
    slices = {e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"}
    assert "run:gcc" in slices
    assert any(name.startswith("cell:") for name in slices)
    unclosed = [e for e in trace["traceEvents"] if e["ph"] == "i" and "(unclosed)" in e["name"]]
    assert len(unclosed) == 1


def test_obs_cli_export_chrome(tmp_path):
    events = EventLog(str(tmp_path / "events.jsonl"))
    events.emit("run_start", workload="gcc", scheme="banshee")
    events.emit("run_end", workload="gcc")
    out = str(tmp_path / "trace.json")
    stream = __import__("io").StringIO()
    code = obs_main(["export-chrome", "--events", events.path, "--output", out], stream=stream)
    assert code == 0
    with open(out, encoding="utf-8") as fh:
        assert fh.read().startswith("{")


# ---------------------------------------------------------- warmup checkpoints


def _checkpoint_spec(name, records=600, timeline_interval=None, timeline_bounds=None):
    return CampaignSpec(
        name=name,
        grids=[SweepGrid(schemes=["banshee", "alloy"], workloads=["gcc"], seeds=[1])],
        records_per_core=records,
        num_cores=2,
        preset="tiny",
        warmup_fraction=0.5,
        timeline_interval=timeline_interval,
        timeline_bounds=timeline_bounds,
    )


def _identities(report):
    out = {}
    for outcome in report.outcomes:
        assert outcome.ok, outcome.error
        out[(outcome.cell.label, outcome.cell.workload, outcome.cell.seed)] = (
            outcome.result.identity_dict()
        )
    return out


def test_checkpoint_warmup_bit_identical_and_reused(tmp_path):
    reference = _identities(run_campaign(_checkpoint_spec("ref")))

    store = ResultStore(str(tmp_path / "store"))
    first = run_campaign(_checkpoint_spec("ckpt"), store=store, checkpoint_warmup=True)
    assert _identities(first) == reference
    ckpt_dir = tmp_path / "store" / "obs" / "checkpoints"
    checkpoints = sorted(ckpt_dir.glob("*.json"))
    assert len(checkpoints) == 2  # one per (config, workload, warmup) prefix

    # Force a re-run: every cell restores its checkpoint, results unchanged.
    second = run_campaign(
        _checkpoint_spec("ckpt"), store=store, checkpoint_warmup=True, force=True
    )
    assert _identities(second) == reference
    assert sorted(ckpt_dir.glob("*.json")) == checkpoints

    # A longer run shares the same warmup-prefix checkpoints only when the
    # warmup length matches; 800 records at 0.5 warmup is a new prefix.
    run_campaign(_checkpoint_spec("longer", records=800), store=store,
                 checkpoint_warmup=True)
    assert len(sorted(ckpt_dir.glob("*.json"))) == 4


def test_timeline_cells_bypass_checkpointing(tmp_path):
    """Timeline cells must simulate their warmup (the timeline covers it)."""
    store = ResultStore(str(tmp_path / "store"))
    report = run_campaign(
        _checkpoint_spec("tl", timeline_interval=100, timeline_bounds=[50.0, 200.0]),
        store=store, checkpoint_warmup=True,
    )
    assert not (tmp_path / "store" / "obs" / "checkpoints").exists()
    for outcome in report.outcomes:
        assert outcome.ok
        phases = {w["phase"] for w in outcome.result.timeline["windows"]}
        assert phases == {"warmup", "measure"}


def test_timeline_bounds_extend_cell_key_only_when_set():
    plain = _checkpoint_spec("keys", timeline_interval=100)
    bounded = _checkpoint_spec("keys", timeline_interval=100, timeline_bounds=[50.0, 200.0])
    for cell_plain, cell_bounded in zip(plain.cells(), bounded.cells()):
        assert cell_plain.key() != cell_bounded.key()
        assert cell_bounded.meta()["timeline_bounds"] == [50.0, 200.0]
        assert "timeline_bounds" not in cell_plain.meta()
    with pytest.raises(ValueError, match="timeline_interval"):
        _checkpoint_spec("bad", timeline_bounds=[50.0])
    with pytest.raises(ValueError, match="strictly increasing"):
        _checkpoint_spec("bad", timeline_interval=100, timeline_bounds=[200.0, 50.0])


def test_campaign_cli_checkpoint_warmup_and_stale_after(tmp_path):
    import io
    import time

    store_dir = str(tmp_path / "store")
    stream = io.StringIO()
    code = campaign_main(
        ["run", "--name", "smoke", "--schemes", "banshee", "--workloads", "gcc",
         "--seeds", "1", "--records", "400", "--cores", "2", "--preset", "tiny",
         "--warmup", "0.5", "--store", store_dir, "--checkpoint-warmup"],
        stream=stream,
    )
    assert code == 0
    assert list((tmp_path / "store" / "obs" / "checkpoints").glob("*.json"))

    # Fabricate a stale heartbeat; status --live must list the worker.
    obs_dir = tmp_path / "store" / "obs"
    beat = {"worker": "worker-9", "pid": 1, "state": "running",
            "updated_ts": time.time() - 3600, "started_ts": time.time() - 3700}
    hb_dir = obs_dir / "heartbeats"
    hb_dir.mkdir(parents=True, exist_ok=True)
    (hb_dir / "worker-9.hb.json").write_text(json.dumps(beat), encoding="utf-8")
    # Strip campaign_end so the campaign reads as live.
    events_path = obs_dir / "events.jsonl"
    lines = [line for line in events_path.read_text(encoding="utf-8").splitlines()
             if '"campaign_end"' not in line]
    events_path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    stream = io.StringIO()
    code = campaign_main(["status", "--store", store_dir, "--live"], stream=stream)
    assert code == 0
    assert "worker-9" in stream.getvalue()

    stream = io.StringIO()
    code = campaign_main(
        ["status", "--store", store_dir, "--live", "--stale-after", "7200"],
        stream=stream,
    )
    assert code == 0
    assert "stale workers" not in stream.getvalue()
