"""Unit tests for the workload generators."""

import itertools

import pytest

from repro.cpu.trace import summarize
from repro.workloads.graph import PageRankWorkload
from repro.workloads.mixes import MIX_DEFINITIONS, MixWorkload
from repro.workloads.registry import EVALUATION_WORKLOADS, available_workloads, get_workload
from repro.workloads.spec import SPEC_PARAMS, SpecWorkload
from repro.workloads.synthetic import (
    PointerChasePattern,
    StreamPattern,
    ZipfPagePattern,
)
from repro.util.rng import DeterministicRng


def take(workload, core_id, count):
    return list(itertools.islice(workload.trace(core_id), count))


def test_registry_covers_evaluation_workloads():
    names = available_workloads()
    for workload in EVALUATION_WORKLOADS:
        assert workload in names


def test_registry_builds_each_kind():
    for name in ("pagerank", "mcf", "mix1"):
        workload = get_workload(name, num_cores=2, scale=0.1)
        records = take(workload, 0, 50)
        assert len(records) == 50


def test_registry_rejects_unknown():
    with pytest.raises(ValueError):
        get_workload("nonsense", num_cores=2)


def test_registry_error_lists_names_and_trace_form():
    with pytest.raises(ValueError) as excinfo:
        get_workload("nonsense", num_cores=2)
    message = str(excinfo.value)
    for name in ("pagerank", "mcf", "mix1"):
        assert name in message
    assert "trace:" in message


def test_validate_workload_name():
    from repro.workloads.registry import validate_workload_name

    validate_workload_name("pagerank")
    with pytest.raises(ValueError, match="trace:"):
        validate_workload_name("nonsense")
    with pytest.raises(ValueError, match="not found"):
        validate_workload_name("trace:/nonexistent/x.rtrace")


def test_traces_are_deterministic_per_seed():
    a = get_workload("mcf", num_cores=2, scale=0.1, seed=3)
    b = get_workload("mcf", num_cores=2, scale=0.1, seed=3)
    assert take(a, 1, 200) == take(b, 1, 200)
    c = get_workload("mcf", num_cores=2, scale=0.1, seed=4)
    assert take(a, 1, 200) != take(c, 1, 200)


def test_cores_have_distinct_streams():
    workload = get_workload("omnetpp", num_cores=2, scale=0.1)
    assert take(workload, 0, 100) != take(workload, 1, 100)


def test_spec_cores_use_disjoint_regions():
    workload = SpecWorkload("mcf", num_cores=2, scale=0.2)
    records0 = take(workload, 0, 500)
    records1 = take(workload, 1, 500)
    max0 = max(record.addr for record in records0)
    min1 = min(record.addr for record in records1)
    assert max0 < workload.per_core_footprint
    assert min1 >= workload.per_core_footprint


def test_spec_write_fraction_approximates_parameter():
    workload = SpecWorkload("lbm", num_cores=1, scale=0.2)
    stats = summarize(itertools.islice(workload.trace(0), 4000))
    assert stats.write_fraction == pytest.approx(SPEC_PARAMS["lbm"]["write_fraction"], abs=0.08)


def test_spec_streaming_benchmark_has_more_spatial_locality_than_pointer_chasing():
    def unique_page_ratio(name):
        workload = SpecWorkload(name, num_cores=1, scale=0.2)
        stats = summarize(itertools.islice(workload.trace(0), 4000))
        return stats.unique_pages / stats.records

    assert unique_page_ratio("lbm") < unique_page_ratio("omnetpp")


def test_graph_workload_addresses_stay_in_footprint():
    workload = PageRankWorkload(num_cores=2, scale=0.1)
    records = take(workload, 0, 2000)
    limit = workload.vertex_b_base + workload.num_vertices * 8 + 4096
    assert all(0 <= record.addr < limit for record in records)
    assert any(record.is_write for record in records)
    assert any(not record.is_write for record in records)


def test_graph_workload_shared_across_cores():
    workload = PageRankWorkload(num_cores=2, scale=0.1)
    pages0 = {record.addr // 4096 for record in take(workload, 0, 2000)}
    pages1 = {record.addr // 4096 for record in take(workload, 1, 2000)}
    assert pages0 & pages1, "graph data (vertex state) must be shared between cores"


def test_mix_assignment_matches_table4():
    workload = MixWorkload("mix1", num_cores=4)
    assert workload.assignment == MIX_DEFINITIONS["mix1"][:4]
    info = workload.describe()
    assert info["assignment"] == workload.assignment


def test_mix_cores_live_in_disjoint_gigabyte_slices():
    workload = MixWorkload("mix2", num_cores=2, scale=0.1)
    records0 = take(workload, 0, 300)
    records1 = take(workload, 1, 300)
    assert max(r.addr for r in records0) < 1 << 30
    assert min(r.addr for r in records1) >= 1 << 30


def test_mix_assignment_wraps_when_cores_exceed_definition():
    """More cores than Table 4 entries: the benchmark list wraps around."""
    benchmarks = MIX_DEFINITIONS["mix1"]
    num_cores = len(benchmarks) + 2
    workload = MixWorkload("mix1", num_cores=num_cores, scale=0.05)
    assert workload.assignment == [benchmarks[core % len(benchmarks)] for core in range(num_cores)]
    assert workload.assignment[len(benchmarks)] == benchmarks[0]
    # The wrapped instance re-runs the same benchmark with a distinct seed,
    # so its trace differs from core 0's even before rebasing...
    first = take(workload, 0, 100)
    wrapped = take(workload, len(benchmarks), 100)
    assert [r.addr % (1 << 30) for r in first] != [r.addr % (1 << 30) for r in wrapped]
    # ...and every core still lives in its own 1 GB slice.
    assert all(r.addr >= len(benchmarks) * (1 << 30) for r in wrapped)
    assert all(r.addr < (1 << 30) for r in first)


def test_mix_rejects_unknown_name():
    with pytest.raises(ValueError):
        MixWorkload("mix99", num_cores=2)


def test_spec_rejects_unknown_benchmark():
    with pytest.raises(ValueError):
        SpecWorkload("doom", num_cores=2)


# --------------------------------------------------------------------------- synthetic patterns


def test_stream_pattern_is_sequential():
    pattern = StreamPattern(0, 1 << 20)
    rng = DeterministicRng(1).generator
    addrs = pattern.addresses(rng, 100)
    deltas = addrs[1:] - addrs[:-1]
    assert (deltas >= 0).all() or (deltas <= 0).sum() <= 1


def test_stream_pattern_wraps_around():
    pattern = StreamPattern(0, 4096)
    rng = DeterministicRng(1).generator
    addrs = pattern.addresses(rng, 200)
    assert addrs.max() < 4096


def test_zipf_pattern_is_skewed():
    pattern = ZipfPagePattern(0, 1 << 22, zipf_alpha=1.0, burst_lines=1)
    rng = DeterministicRng(1).generator
    addrs = pattern.addresses(rng, 5000)
    pages = [addr // 4096 for addr in addrs]
    counts = sorted((pages.count(page) for page in set(pages)), reverse=True)
    top_share = sum(counts[:10]) / len(pages)
    assert top_share > 0.15, "a zipf pattern must concentrate accesses on few pages"


def test_zipf_pattern_respects_region():
    pattern = ZipfPagePattern(1 << 30, 1 << 20, burst_lines=4)
    rng = DeterministicRng(1).generator
    addrs = pattern.addresses(rng, 1000)
    assert addrs.min() >= 1 << 30
    assert addrs.max() < (1 << 30) + (1 << 20)


def test_pointer_chase_covers_region():
    pattern = PointerChasePattern(0, 1 << 20)
    rng = DeterministicRng(1).generator
    addrs = pattern.addresses(rng, 2000)
    assert len(set(addr // 4096 for addr in addrs)) > 100


# ------------------------------------------------------------- column batches


def batch_records(workload, core_id, count):
    """First ``count`` records of the column-batch stream, as tuples."""
    records = []
    for gaps, addrs, writes in workload.trace_batches(core_id):
        records.extend(zip(gaps, addrs, writes))
        if len(records) >= count:
            break
    return records[:count]


@pytest.mark.parametrize("name", [
    "gcc",        # SPEC generator (default per-record shim)
    "mcf",
    "pagerank",   # graph generators (native vectorized batches)
    "tri_count",
    "graph500",   # random vertex order: permutation draws must line up
    "sgd",
    "lsh",
    "mix1",       # mix: per-member page-size plumbing
])
def test_trace_batches_replays_trace_exactly(name):
    """trace_batches must yield exactly the records trace() yields, in order.

    This is the contract the whole batch engine rests on: the default shim,
    the native synthetic/graph column builders and the mix wrapper all
    promise the identical stream (gaps, addresses, write flags) — only the
    container changes.
    """
    count = 6000
    for cores in (1, 2):
        source = get_workload(name, cores, scale=0.02, seed=5)
        batched = get_workload(name, cores, scale=0.02, seed=5)
        for core_id in range(cores):
            expected = [(r.gap, r.addr, r.is_write) for r in take(source, core_id, count)]
            got = [(g, a, bool(w)) for g, a, w in batch_records(batched, core_id, count)]
            assert got == expected, f"{name} core {core_id} diverged"


def test_trace_batches_chunks_are_column_aligned():
    """Each chunk's three columns must agree in length and be non-empty."""
    workload = get_workload("pagerank", 1, scale=0.01, seed=2)
    seen = 0
    for gaps, addrs, writes in workload.trace_batches(0):
        assert len(gaps) == len(addrs) == len(writes) > 0
        seen += len(gaps)
        if seen > 20000:
            break
    assert seen > 20000


def test_trace_batches_default_shim_handles_finite_streams():
    """The base-class shim must flush a final partial batch, then stop."""

    from repro.cpu.trace import TraceRecord
    from repro.workloads.base import BATCH_RECORDS, Workload

    class Finite(Workload):
        def __init__(self, n):
            super().__init__("finite", 1, footprint_bytes=4096)
            self.n = n

        def trace(self, core_id):
            for i in range(self.n):
                yield TraceRecord(1, i * 64, False)

    n = BATCH_RECORDS + 7
    chunks = list(Finite(n).trace_batches(0))
    assert [len(gaps) for gaps, _, _ in chunks] == [BATCH_RECORDS, 7]
    assert sum(len(gaps) for gaps, _, _ in chunks) == n
