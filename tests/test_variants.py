"""Tests for the scheme-variant registry and scheme isolation.

Covers the three guarantees of the variant layer:

* every registered scheme and variant can be constructed and exercised in
  isolation — against the default no-op ``OsServices``, with no ``System`` —
  which is what makes variants safe to declare without new scheme code;
* the factory resolves variant names to base classes with the declared
  configuration overrides applied (and reports the variant name back);
* unknown names fail loudly, up front, with the available names listed —
  at config construction, at factory resolution, at campaign-spec
  normalisation and at the perf harness entry point.
"""

import pytest

from repro.campaign.spec import CampaignSpec, SweepGrid, normalize_scheme
from repro.dram.device import DramDevice
from repro.dramcache.factory import available_schemes, create_scheme
from repro.dramcache.variants import (
    BASE_SCHEMES,
    SchemeVariant,
    all_variants,
    available_scheme_names,
    get_variant,
    is_known_scheme,
    register_variant,
    resolve_scheme,
    unregister_variant,
)
from repro.memctrl.request import MemRequest
from repro.perf.harness import validate_matrix
from repro.sim.config import SystemConfig
from repro.util.rng import DeterministicRng


def build_scheme(name):
    config = SystemConfig.tiny(scheme=name)
    in_dram = DramDevice(config.in_package_dram, config.core.freq_ghz)
    off_dram = DramDevice(config.off_package_dram, config.core.freq_ghz)
    return create_scheme(config, in_dram, off_dram, rng=DeterministicRng(7)), in_dram, off_dram


# --------------------------------------------------------------------------- registry


def test_registry_has_all_axes_covered():
    axes = {variant.axis for variant in all_variants().values()}
    assert {"tag-buffer", "sampling", "associativity", "page-size"} <= axes


def test_registry_has_at_least_six_variants():
    assert len(all_variants()) >= 6


def test_resolve_base_scheme_is_identity():
    for name in BASE_SCHEMES:
        assert resolve_scheme(name) == (name, {})


def test_resolve_variant_returns_base_and_overrides():
    assert resolve_scheme("banshee-tb4k") == ("banshee", {"tag_buffer_entries": 4096})
    assert resolve_scheme("unison-2kpage") == ("unison", {"page_size": 2048})


def test_resolve_unknown_name_lists_available():
    with pytest.raises(ValueError, match="available:.*banshee-tb4k"):
        resolve_scheme("banshee-bogus")


def test_available_names_cover_bases_and_variants():
    names = available_scheme_names()
    assert set(BASE_SCHEMES) <= set(names)
    assert set(all_variants()) <= set(names)
    assert available_schemes() == names


def test_register_variant_runtime_extension():
    variant = SchemeVariant(
        name="banshee-tb32-test", base="banshee", overrides={"tag_buffer_entries": 32},
        axis="tag-buffer", description="runtime-registered test variant",
    )
    register_variant(variant)
    try:
        assert is_known_scheme("banshee-tb32-test")
        assert get_variant("banshee-tb32-test") is variant
        scheme, _in, _off = build_scheme("banshee-tb32-test")
        assert scheme.tag_buffers[0].num_entries == 32
    finally:
        unregister_variant("banshee-tb32-test")
    assert not is_known_scheme("banshee-tb32-test")


def test_register_variant_rejects_bad_declarations():
    with pytest.raises(ValueError, match="shadows a base scheme"):
        register_variant(SchemeVariant(name="banshee", base="banshee", overrides={}))
    with pytest.raises(ValueError, match="base must be one of"):
        SchemeVariant(name="x-y", base="nonsense", overrides={})
    with pytest.raises(ValueError, match="unknown DramCacheConfig fields"):
        SchemeVariant(name="x-y", base="banshee", overrides={"not_a_field": 1})
    with pytest.raises(ValueError, match="must not contain 'scheme'"):
        SchemeVariant(name="x-y", base="banshee", overrides={"scheme": "alloy"})
    with pytest.raises(ValueError, match="already registered"):
        register_variant(SchemeVariant(name="banshee-tb4k", base="banshee", overrides={}))


# --------------------------------------------------------------------------- config layer


def test_config_accepts_variant_names():
    config = SystemConfig.tiny(scheme="banshee-sample32")
    assert config.dram_cache.scheme == "banshee-sample32"


def test_config_rejects_unknown_names_with_list():
    with pytest.raises(ValueError, match="available:.*unison-2kpage"):
        SystemConfig.tiny(scheme="no-such-variant")


def test_config_folds_variant_overrides_at_construction():
    """The whole system must see the values the scheme simulates with."""
    config = SystemConfig.tiny(scheme="unison-2kpage")
    assert config.dram_cache.page_size == 2048
    assert config.dram_cache.base_scheme == "unison"
    config = SystemConfig.tiny(scheme="banshee-tb4k")
    assert config.dram_cache.tag_buffer_entries == 4096
    base = SystemConfig.tiny(scheme="banshee")
    assert base.dram_cache.base_scheme == "banshee"


def test_with_scheme_rejects_conflicting_variant_overrides():
    config = SystemConfig.tiny()
    with pytest.raises(ValueError, match="conflicts with variant"):
        config.with_scheme("unison-2kpage", page_size=8192)
    # Non-conflicting extra overrides compose with the variant's.
    combined = config.with_scheme("banshee-tb4k", sampling_coefficient=0.5)
    assert combined.dram_cache.tag_buffer_entries == 4096
    assert combined.dram_cache.sampling_coefficient == 0.5


def test_direct_construction_rejects_conflicting_variant_overrides():
    from repro.sim.config import DramCacheConfig

    with pytest.raises(ValueError, match="conflicts with variant"):
        DramCacheConfig(scheme="banshee-sample01", sampling_coefficient=0.5)
    # Re-folding an already-resolved config (dataclasses.replace) is fine.
    import dataclasses

    resolved = DramCacheConfig(scheme="banshee-tb4k")
    replaced = dataclasses.replace(resolved, num_candidates=3)
    assert replaced.tag_buffer_entries == 4096
    with pytest.raises(ValueError, match="conflicts with variant"):
        dataclasses.replace(resolved, tag_buffer_entries=128)


def test_with_scheme_switches_between_variants_of_one_axis():
    config = SystemConfig.tiny(scheme="unison-8kpage")
    assert config.dram_cache.page_size == 8192
    switched = config.with_scheme("unison-2kpage")
    assert switched.dram_cache.page_size == 2048
    back_to_base = switched.with_scheme("unison")
    assert back_to_base.dram_cache.page_size == 4096  # variant delta reverted


def test_with_scheme_rejects_unknown_names_despite_carried_base_scheme():
    """A typo'd variant must not silently build the old base scheme."""
    config = SystemConfig.tiny(scheme="banshee-tb4k")
    with pytest.raises(ValueError, match="available:"):
        config.with_scheme("banshee-tb8k")


def test_with_scheme_reverts_variant_delta_to_preset_value():
    """Leaving a variant restores the *preset's* value, not the class default.

    The tiny preset scales the tag buffer to 64 entries; a tb-variant
    round-trip must come back to 64, or a tag-buffer sensitivity sweep
    built with with_scheme would compare against a 16x-off baseline.
    """
    tiny = SystemConfig.tiny(scheme="banshee-tb128")
    assert tiny.with_scheme("banshee").dram_cache.tag_buffer_entries == 64
    scaled = SystemConfig.scaled_default(scheme="banshee-tb4k")
    assert scaled.with_scheme("banshee").dram_cache.tag_buffer_entries == 256


def test_variant_path_matches_explicit_override_path():
    """unison-2kpage must simulate identically to unison + page_size=2048.

    This pins variant resolution to config-construction time: workload,
    page table and TLBs are built from the same (folded) page size the
    scheme uses, so the two spellings of the same design point agree.
    """
    from repro.experiments.runner import run_simulation

    via_variant = run_simulation(
        SystemConfig.tiny(scheme="unison-2kpage"),
        workload_name="gcc", records_per_core=400, scale=0.05, seed=1,
    )
    via_override = run_simulation(
        SystemConfig.tiny(scheme="unison").with_scheme("unison", page_size=2048),
        workload_name="gcc", records_per_core=400, scale=0.05, seed=1,
    )
    expected = via_override.identity_dict()
    expected["scheme"] = "unison-2kpage"  # the only intended difference
    assert via_variant.identity_dict() == expected


# --------------------------------------------------------------------------- factory resolution


def test_factory_applies_variant_overrides():
    scheme, _in, _off = build_scheme("banshee-tb4k")
    assert scheme.name == "banshee-tb4k"
    assert scheme.tag_buffers[0].num_entries == 4096

    scheme, _in, _off = build_scheme("unison-2kpage")
    assert scheme.name == "unison-2kpage"
    assert scheme.page_size == 2048

    scheme, _in, _off = build_scheme("banshee-8way")
    assert scheme.partition_for(4096).ways == 8

    scheme, _in, _off = build_scheme("banshee-lru")
    assert scheme.policy == "lru"

    scheme, _in, _off = build_scheme("alloy-p10")
    assert scheme.fill_probability == pytest.approx(0.1)


def test_factory_rejects_unknown_variant():
    config = SystemConfig.tiny()
    object.__setattr__(config.dram_cache, "scheme", "banshee-bogus")
    object.__setattr__(config.dram_cache, "base_scheme", "")
    in_dram = DramDevice(config.in_package_dram, config.core.freq_ghz)
    off_dram = DramDevice(config.off_package_dram, config.core.freq_ghz)
    with pytest.raises(ValueError, match="available:"):
        create_scheme(config, in_dram, off_dram, rng=DeterministicRng(7))


def test_factory_builds_foreign_variant_from_base_scheme():
    """A config resolved in another process (base_scheme recorded, name not
    in this process's registry) must still build — spawn-based campaign
    workers depend on this."""
    config = SystemConfig.tiny(scheme="banshee-tb4k")
    object.__setattr__(config.dram_cache, "scheme", "banshee-tb9999")  # foreign name
    in_dram = DramDevice(config.in_package_dram, config.core.freq_ghz)
    off_dram = DramDevice(config.off_package_dram, config.core.freq_ghz)
    scheme = create_scheme(config, in_dram, off_dram, rng=DeterministicRng(7))
    assert scheme.name == "banshee-tb9999"
    assert scheme.tag_buffers[0].num_entries == 4096  # folded overrides survive


# --------------------------------------------------------------------------- scheme isolation


@pytest.mark.parametrize("name", available_schemes())
def test_every_scheme_and_variant_runs_in_isolation(name):
    """Exercise each scheme against the default no-op OsServices (no System).

    A few hundred demand accesses over a small page working set, a write
    mix, and explicit LLC writebacks — enough to drive hits, misses, fills,
    evictions and (for Banshee) replacements and tag-buffer traffic.
    """
    scheme, in_dram, off_dram = build_scheme(name)
    assert scheme.name == name

    now = 0
    for i in range(400):
        page = (i * 7) % 23
        addr = page * 4096 + (i % 64) * 64
        request = MemRequest(addr=addr, is_write=(i % 5 == 0), core_id=i % 2)
        result = scheme.access(now, request, mc_id=page % 2)
        assert result.latency >= 0
        assert result.served_by in ("in-package", "off-package")
        now += 10 + result.latency
    for i in range(40):
        addr = ((i * 3) % 23) * 4096
        wb = MemRequest(addr=addr, is_write=True, core_id=0, is_writeback=True)
        result = scheme.access(now, wb, mc_id=0)
        assert result.latency == 0
        now += 10

    assert scheme.demand_accesses == 400
    assert 0.0 <= scheme.miss_rate <= 1.0
    summary = scheme.traffic_summary()
    assert set(summary) == {"in-package", "off-package"}
    # finalize must be safe without a System behind the OsServices.
    scheme.finalize(now)


# --------------------------------------------------------------------------- campaign / perf front doors


def test_normalize_scheme_validates_names_up_front():
    assert normalize_scheme("banshee-tb4k") == ("banshee-tb4k", "banshee-tb4k", {})
    with pytest.raises(ValueError, match="available:"):
        normalize_scheme("banshee-bogus")
    with pytest.raises(ValueError, match="available:"):
        normalize_scheme(("Label", "banshee-bogus"))


def test_campaign_spec_rejects_unknown_variant_before_expansion():
    with pytest.raises(ValueError, match="available:"):
        CampaignSpec(name="bad", grids=[SweepGrid(schemes=["banshee-bogus"])])


def test_campaign_cells_resolve_variants():
    spec = CampaignSpec(name="vars", grids=[SweepGrid(schemes=["banshee", "banshee-tb4k"])])
    cells = spec.cells()
    assert [cell.scheme for cell in cells] == ["banshee", "banshee-tb4k"]
    assert cells[1].config.dram_cache.scheme == "banshee-tb4k"


def test_perf_validate_matrix_lists_names():
    validate_matrix(["banshee", "banshee-tb4k"], ["gcc"])
    with pytest.raises(ValueError, match="available:.*banshee-tb4k"):
        validate_matrix(["banshee-bogus"], ["gcc"])
    with pytest.raises(ValueError, match="unknown workload"):
        validate_matrix(["banshee"], ["no-such-workload"])


def test_perf_cli_exits_cleanly_on_unknown_scheme(tmp_path, capsys):
    from repro.perf.cli import main

    rc = main([
        "--smoke", "--preset", "tiny", "--schemes", "banshee-bogus",
        "--output", str(tmp_path / "bench.json"), "--quiet",
    ])
    assert rc == 2
    assert "available:" in capsys.readouterr().err
