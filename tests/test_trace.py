"""Tests for the trace capture / transform / replay subsystem."""

import itertools
import json
import os
import pickle

import pytest

from repro.cpu.trace import TraceRecord, summarize_streams
from repro.sim.config import SystemConfig
from repro.sim.engine import SimulationEngine
from repro.sim.system import System
from repro.trace import (
    TraceFormatError,
    TraceMeta,
    TraceReader,
    TraceWorkload,
    TraceWriter,
    filter_accesses,
    interleave_traces,
    read_meta,
    record_named,
    record_workload,
    remap_cores,
    scale_footprint,
    slice_trace,
    trace_digest,
)
from repro.trace.cli import main as trace_main
from repro.workloads.registry import get_workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_hotpath.json")


def capture(tmp_path, name="gcc", records=300, cores=2, scale=0.05, seed=1, compress=False,
            filename=None):
    path = str(tmp_path / (filename or f"{name}.rtrace"))
    meta = record_named(name, path, records_per_core=records, num_cores=cores,
                        scale=scale, seed=seed, compress=compress)
    return path, meta


def generator_records(name, core_id, count, cores=2, scale=0.05, seed=1):
    workload = get_workload(name, cores, scale=scale, seed=seed)
    return list(itertools.islice(workload.trace(core_id), count))


# --------------------------------------------------------------------- format


def test_round_trip_preserves_records_exactly(tmp_path):
    path, meta = capture(tmp_path, records=300)
    reader = TraceReader(path)
    assert reader.record_counts == [300, 300]
    for core_id in range(2):
        assert list(reader.stream(core_id)) == generator_records("gcc", core_id, 300)
    assert meta.records_per_core == [300, 300]
    assert meta.stats["records"] == 600


def test_compressed_round_trip_and_digest_invariance(tmp_path):
    raw_path, _ = capture(tmp_path, records=200, filename="raw.rtrace")
    zip_path, zip_meta = capture(tmp_path, records=200, compress=True, filename="zip.rtrace")
    assert zip_meta.compressed
    assert list(TraceReader(zip_path).stream(0)) == list(TraceReader(raw_path).stream(0))
    # The digest covers the uncompressed records, so compression is invisible.
    assert trace_digest(zip_path) == trace_digest(raw_path)
    assert os.path.getsize(zip_path) < os.path.getsize(raw_path)


def test_meta_round_trips_through_footer(tmp_path):
    path, meta = capture(tmp_path, name="mcf", records=150, cores=1)
    loaded = read_meta(path)
    assert loaded == meta
    assert loaded.name == "mcf"
    assert loaded.source["workload"] == "mcf"
    assert loaded.core_stats[0]["records"] == 150


def test_streams_can_be_consumed_interleaved(tmp_path):
    """The engine interleaves cores, so streams must not share file state."""
    path, _ = capture(tmp_path, records=100)
    reader = TraceReader(path)
    a, b = reader.stream(0), reader.stream(1)
    woven = [next(a), next(b), next(a), next(b)]
    assert woven[0::2] == generator_records("gcc", 0, 2)
    assert woven[1::2] == generator_records("gcc", 1, 2)


def test_reader_rejects_non_trace_files(tmp_path):
    bogus = tmp_path / "not_a_trace.rtrace"
    bogus.write_bytes(b"definitely not a trace" * 10)
    with pytest.raises(TraceFormatError, match="bad magic"):
        TraceReader(str(bogus))


def test_reader_rejects_truncated_capture(tmp_path):
    path = str(tmp_path / "trunc.rtrace")
    writer = TraceWriter(path, TraceMeta(name="x", num_cores=1))
    writer.write_stream([TraceRecord(1, 64, False)])
    # Never closed: the header's footer offset stays zero.
    writer._fh.flush()
    with pytest.raises(TraceFormatError, match="truncated"):
        TraceReader(path)


def test_writer_enforces_stream_count(tmp_path):
    path = str(tmp_path / "short.rtrace")
    writer = TraceWriter(path, TraceMeta(name="x", num_cores=2))
    writer.write_stream([TraceRecord(1, 64, False)])
    with pytest.raises(TraceFormatError, match="expected 2"):
        writer.close()


def test_writer_rejects_oversized_gap(tmp_path):
    path = str(tmp_path / "gap.rtrace")
    writer = TraceWriter(path, TraceMeta(name="x", num_cores=1))
    with pytest.raises(TraceFormatError, match="31-bit"):
        writer.write_stream([TraceRecord(1 << 31, 64, False)])


# --------------------------------------------------------------------- replay


def test_replay_is_bit_identical_to_generator(tmp_path):
    path, _ = capture(tmp_path, records=300)
    config = SystemConfig.tiny(scheme="banshee", num_cores=2, seed=1)
    generated = SimulationEngine(
        System(config, get_workload("gcc", 2, scale=0.05, seed=1))
    ).run(300)
    replayed = SimulationEngine(
        System(SystemConfig.tiny(scheme="banshee", num_cores=2, seed=1),
               get_workload(f"trace:{path}", 2))
    ).run(300)
    assert replayed.identity_dict() == generated.identity_dict()
    assert replayed.workload == "gcc"  # the capture's name, not the file's


def test_replay_matches_pinned_goldens(tmp_path):
    """Replaying a capture reproduces the golden results of the generator.

    The goldens pin the exact pre-refactor results (scaled preset), so this
    also pins that capture->replay introduces no drift anywhere in the
    record path.
    """
    with open(GOLDEN_PATH, encoding="utf-8") as fh:
        cells = json.load(fh)["cells"]
    for cell in cells:
        if cell["scheme"] not in ("banshee", "nocache"):
            continue
        path = str(tmp_path / f"{cell['workload']}.rtrace")
        record_named(cell["workload"], path, records_per_core=cell["records_per_core"],
                     num_cores=cell["num_cores"], scale=cell["scale"], seed=cell["seed"])
        config = SystemConfig.scaled_default(
            scheme=cell["scheme"], num_cores=cell["num_cores"], seed=cell["seed"]
        )
        workload = get_workload(f"trace:{path}", cell["num_cores"])
        result = SimulationEngine(System(config, workload)).run(cell["records_per_core"])
        assert json.loads(json.dumps(result.identity_dict())) == cell["result"]


def test_engine_rejects_budget_beyond_trace_length(tmp_path):
    """A trace that runs dry mid-simulation would silently skew warmup
    accounting and record counts; the engine refuses the budget up front."""
    path, _ = capture(tmp_path, records=100)
    workload = TraceWorkload(path)
    assert workload.max_records_per_core == 100
    assert get_workload("gcc", 2, scale=0.05).max_records_per_core is None
    engine = SimulationEngine(System(SystemConfig.tiny(num_cores=2), workload))
    with pytest.raises(ValueError, match="holds only 100 records"):
        engine.run(101)
    assert engine.run(100).memory_accesses == 200


def test_digest_covers_stream_boundaries_and_replay_meta(tmp_path):
    """Same flat records split differently across cores (or relabelled with
    a different mlp/page size) must not collide in the result store."""
    r1, r2, r3 = (TraceRecord(1, 64 * i, False) for i in (1, 2, 3))

    def write(filename, streams, **meta_fields):
        path = str(tmp_path / filename)
        fields = dict(name="x", num_cores=len(streams), page_size=4096, mlp=4.0)
        fields.update(meta_fields)
        writer = TraceWriter(path, TraceMeta(**fields))
        for stream in streams:
            writer.write_stream(stream)
        writer.close()
        return path

    split_a = write("a.rtrace", [[r1, r2], [r3]])
    split_b = write("b.rtrace", [[r1], [r2, r3]])
    assert trace_digest(split_a) != trace_digest(split_b)
    same_as_a = write("a2.rtrace", [[r1, r2], [r3]])
    assert trace_digest(same_as_a) == trace_digest(split_a)
    other_mlp = write("c.rtrace", [[r1, r2], [r3]], mlp=8.0)
    assert trace_digest(other_mlp) != trace_digest(split_a)


def test_trace_workload_pickles_and_replays(tmp_path):
    path, _ = capture(tmp_path, records=120)
    workload = TraceWorkload(path)
    clone = pickle.loads(pickle.dumps(workload))
    assert clone.name == workload.name
    assert list(clone.trace(1)) == list(workload.trace(1))


def test_trace_workload_rejects_core_mismatch(tmp_path):
    path, _ = capture(tmp_path, records=50, cores=2)
    with pytest.raises(ValueError, match="2 core stream"):
        TraceWorkload(path, num_cores=4)
    with pytest.raises(ValueError, match="not found"):
        TraceWorkload(str(tmp_path / "missing.rtrace"))


def test_trace_workload_rejects_page_size_mismatch(tmp_path):
    """A 4 KB capture must not masquerade as a 2 MB page-size study: the
    page table/TLBs would follow the trace while the cache followed the
    config."""
    path, _ = capture(tmp_path, records=50, cores=2)
    with pytest.raises(ValueError, match="captured at page_size=4096"):
        TraceWorkload(path, page_size=2 * 1024 * 1024)
    with pytest.raises(ValueError, match="captured at page_size=4096"):
        get_workload(f"trace:{path}", 2, page_size=8192)
    assert get_workload(f"trace:{path}", 2, page_size=4096).page_size == 4096


def test_writer_context_manager_removes_partial_file_on_error(tmp_path):
    path = str(tmp_path / "partial.rtrace")

    def failing_stream():
        yield TraceRecord(1, 64, False)
        raise RuntimeError("generator blew up")

    with pytest.raises(RuntimeError, match="blew up"):
        with TraceWriter(path, TraceMeta(name="x", num_cores=1)) as writer:
            writer.write_stream(failing_stream())
    assert not os.path.exists(path)


def test_registry_resolves_trace_names(tmp_path):
    path, _ = capture(tmp_path, records=50)
    workload = get_workload(f"trace:{path}", 2)
    assert isinstance(workload, TraceWorkload)
    assert workload.records_per_core == 50
    info = workload.describe()
    assert info["trace_path"] == os.path.abspath(path)


# ----------------------------------------------------------------- transforms


def test_slice_by_records(tmp_path):
    path, _ = capture(tmp_path, records=300)
    out = str(tmp_path / "sliced.rtrace")
    meta = slice_trace(path, out, records=75)
    assert meta.records_per_core == [75, 75]
    assert list(TraceReader(out).stream(0)) == generator_records("gcc", 0, 75)
    assert meta.source["transform"] == "slice"


def test_slice_by_instructions(tmp_path):
    path, _ = capture(tmp_path, records=300)
    out = str(tmp_path / "sliced.rtrace")
    budget = 500
    meta = slice_trace(path, out, instructions=budget)
    for stats in meta.core_stats:
        assert 0 < stats["instructions"] <= budget


def test_slice_requires_a_bound(tmp_path):
    path, _ = capture(tmp_path, records=50)
    with pytest.raises(ValueError, match="records and/or instructions"):
        slice_trace(path, str(tmp_path / "x.rtrace"))


def test_remap_duplicates_and_reorders_streams(tmp_path):
    path, _ = capture(tmp_path, records=60)
    out = str(tmp_path / "remap.rtrace")
    meta = remap_cores(path, out, [1, 1, 0])
    assert meta.num_cores == 3
    reader = TraceReader(out)
    core1 = generator_records("gcc", 1, 60)
    assert list(reader.stream(0)) == core1
    assert list(reader.stream(1)) == core1
    assert list(reader.stream(2)) == generator_records("gcc", 0, 60)
    with pytest.raises(ValueError, match="out of range"):
        remap_cores(path, out, [0, 5])


def test_interleave_builds_multiprogrammed_mix(tmp_path):
    a, _ = capture(tmp_path, name="gcc", records=80, cores=1, filename="a.rtrace")
    b, _ = capture(tmp_path, name="mcf", records=80, cores=1, filename="b.rtrace")
    out = str(tmp_path / "mix.rtrace")
    meta = interleave_traces([a, b], out, name="custom-mix")
    assert meta.name == "custom-mix"
    assert meta.num_cores == 2
    reader = TraceReader(out)
    slot0 = list(reader.stream(0))
    slot1 = list(reader.stream(1))
    # Slot 0 keeps its addresses, slot 1 is rebased into the next 1 GB slice
    # (the same disjoint-slice layout MixWorkload uses).
    assert slot0 == generator_records("gcc", 0, 80, cores=1)
    assert max(r.addr for r in slot0) < 1 << 30
    assert min(r.addr for r in slot1) >= 1 << 30
    originals = generator_records("mcf", 0, 80, cores=1)
    assert [r.addr - (1 << 30) for r in slot1] == [r.addr for r in originals]
    # The mix replays end to end as a first-class workload.
    config = SystemConfig.tiny(num_cores=2)
    result = SimulationEngine(System(config, TraceWorkload(out))).run(80)
    assert result.workload == "custom-mix"
    assert result.memory_accesses == 160


def test_interleave_rejects_streams_reaching_past_their_slot(tmp_path):
    """Address reach, not footprint, gates rebasing: a mix capture's core 1
    already lives at >= 1 GB, so rebasing it would collide with slot 2."""
    mix, _ = capture(tmp_path, name="mix1", records=40, cores=2, filename="mix.rtrace")
    other, _ = capture(tmp_path, name="gcc", records=40, cores=1, filename="g.rtrace")
    with pytest.raises(TraceFormatError, match="core 1 addresses reach"):
        interleave_traces([mix, other], str(tmp_path / "out.rtrace"))
    # Without rebasing the same inputs are fine.
    meta = interleave_traces([mix, other], str(tmp_path / "out.rtrace"), slice_bytes=None)
    assert meta.num_cores == 3


def test_interleave_rejects_mixed_page_sizes(tmp_path):
    a, _ = capture(tmp_path, records=20, cores=1, filename="a.rtrace")
    b = str(tmp_path / "b.rtrace")
    workload = get_workload("gcc", 1, scale=0.05, page_size=8192)
    record_workload(workload, b, records_per_core=20)
    with pytest.raises(TraceFormatError, match="page sizes"):
        interleave_traces([a, b], str(tmp_path / "mix.rtrace"))


def test_scale_footprint_folds_pages(tmp_path):
    path, meta = capture(tmp_path, records=300)
    out = str(tmp_path / "scaled.rtrace")
    scaled = scale_footprint(path, out, 0.25)
    assert scaled.stats["unique_pages"] < meta.stats["unique_pages"]
    # In-page offsets are preserved; record order and kinds are untouched.
    before = list(TraceReader(path).stream(0))
    after = list(TraceReader(out).stream(0))
    assert [(r.gap, r.is_write, r.addr % 4096) for r in before] == [
        (r.gap, r.is_write, r.addr % 4096) for r in after
    ]
    with pytest.raises(ValueError, match="factor"):
        scale_footprint(path, out, 0.0)


def test_filter_keeps_kind_and_instruction_counts(tmp_path):
    path, meta = capture(tmp_path, name="lbm", records=400, cores=1)
    reads = str(tmp_path / "reads.rtrace")
    writes = str(tmp_path / "writes.rtrace")
    reads_meta = filter_accesses(path, reads, "reads")
    writes_meta = filter_accesses(path, writes, "writes")
    assert reads_meta.stats["writes"] == 0
    assert writes_meta.stats["reads"] == 0
    assert reads_meta.stats["reads"] == meta.stats["reads"]
    assert writes_meta.stats["writes"] == meta.stats["writes"]
    # Dropped gaps fold into the next kept record: instruction totals match
    # up to the trailing run of dropped records.
    source = list(TraceReader(path).stream(0))
    kept_instructions = reads_meta.stats["instructions"]
    trailing = 0
    for record in reversed(source):
        if not record.is_write:
            break
        trailing += record.gap
    assert kept_instructions == meta.stats["instructions"] - trailing
    with pytest.raises(ValueError, match="keep"):
        filter_accesses(path, reads, "everything")


# ------------------------------------------------------------------ harnesses


def test_trace_workload_runs_through_campaign_by_name(tmp_path):
    from repro.campaign.driver import run_campaign
    from repro.campaign.spec import CampaignSpec, SweepGrid
    from repro.campaign.store import ResultStore

    path, _ = capture(tmp_path, records=200)
    spec = CampaignSpec(
        name="trace-campaign",
        grids=[SweepGrid(schemes=("banshee",), workloads=(f"trace:{path}",))],
        records_per_core=200,
        num_cores=2,
        preset="tiny",
        warmup_fraction=0.0,
    )
    store = ResultStore(str(tmp_path / "store"))
    report = run_campaign(spec, store=store)
    assert report.counts() == {"total": 1, "simulated": 1, "from_store": 0, "errors": 0}
    # Resumable: the second run serves the cell from the store.
    rerun = run_campaign(spec, store=store)
    assert rerun.counts()["from_store"] == 1
    # And matches the generator-built equivalent bit for bit.
    config = SystemConfig.tiny(scheme="banshee", num_cores=2, seed=1)
    generated = SimulationEngine(
        System(config, get_workload("gcc", 2, scale=0.05, seed=1))
    ).run(200)
    assert report.outcomes[0].result.identity_dict() == generated.identity_dict()


def test_trace_cells_survive_spawn_workers(tmp_path):
    """Spawn workers re-resolve trace cells from scratch (fresh cwd, fresh
    module state), so the cell must carry everything needed to reopen the
    file — the absolute path the spec normalisation bakes in."""
    from repro.campaign.executor import ParallelExecutor, SerialExecutor
    from repro.campaign.spec import CampaignSpec, SweepGrid

    path, _ = capture(tmp_path, records=120)
    spec = CampaignSpec(
        name="spawn-trace",
        grids=[SweepGrid(schemes=("nocache",), workloads=(f"trace:{os.path.relpath(path)}",))],
        records_per_core=120,
        num_cores=2,
        preset="tiny",
        warmup_fraction=0.0,
    )
    cells = spec.cells()
    assert cells[0].workload == f"trace:{path}"  # relative path absolutized
    serial = SerialExecutor().run(cells)
    spawned = ParallelExecutor(workers=1, mp_start_method="spawn").run(cells)
    assert spawned[0].ok, spawned[0].error
    assert serial[0].result.identity_dict() == spawned[0].result.identity_dict()


def test_campaign_spec_rejects_missing_trace_up_front(tmp_path):
    from repro.campaign.spec import SweepGrid

    with pytest.raises(ValueError, match="trace file not found"):
        SweepGrid(workloads=("trace:/nonexistent/x.rtrace",))
    with pytest.raises(ValueError, match="unknown workload"):
        SweepGrid(workloads=("not-a-workload",))


def test_trace_cell_key_tracks_content_not_path(tmp_path):
    from repro.experiments.runner import simulation_cell_key

    path_a, _ = capture(tmp_path, records=50, filename="a.rtrace")
    path_b, _ = capture(tmp_path, records=50, filename="b.rtrace")
    path_c, _ = capture(tmp_path, records=60, filename="c.rtrace")
    config = SystemConfig.tiny()

    def key(path):
        return simulation_cell_key(config, f"trace:{path}", 50, 1.0, 1, 0.0)

    assert key(path_a) == key(path_b)  # same records, different path
    assert key(path_a) != key(path_c)  # different records


def test_perf_cell_runs_trace_workload(tmp_path):
    from repro.perf.harness import run_cell, validate_matrix

    path, _ = capture(tmp_path, records=100)
    cell = run_cell("nocache", f"trace:{path}", records_per_core=100,
                    num_cores=2, repeats=1, preset="tiny")
    assert cell.records == 200
    assert cell.generation_seconds >= 0.0
    assert 0.0 <= cell.generation_fraction <= 1.0
    payload = cell.to_dict()
    assert payload["simulation_seconds"] == pytest.approx(cell.simulation_seconds)
    validate_matrix(["banshee"], [f"trace:{path}", "gcc"])
    with pytest.raises(ValueError, match="trace file not found"):
        validate_matrix(["banshee"], ["trace:/nonexistent.rtrace"])
    # Fail-fast also covers the record budget: a short trace is rejected
    # before any cell simulates, not mid-matrix.
    validate_matrix(["banshee"], [f"trace:{path}"], records_per_core=100)
    with pytest.raises(ValueError, match="holds only 100 records"):
        validate_matrix(["banshee"], [f"trace:{path}"], records_per_core=101)


def test_perf_benchmark_reports_workload_time_split(tmp_path):
    from repro.perf.harness import run_benchmark

    payload = run_benchmark(schemes=["nocache"], workloads=["gcc"], records_per_core=50,
                            num_cores=2, scale=0.05, repeats=1, preset="tiny")
    split = payload["workload_time_split"]["gcc"]
    assert set(split) == {"generation_seconds", "simulation_seconds", "generation_fraction"}
    assert 0.0 <= split["generation_fraction"] <= 1.0
    json.dumps(payload)


# ------------------------------------------------------------------------ CLI


def test_cli_record_info_transform_replay(tmp_path, capsys):
    path = str(tmp_path / "cli.rtrace")
    assert trace_main(["record", "--workload", "gcc", "--output", path,
                       "--records", "120", "--cores", "2", "--scale", "0.05"]) == 0
    assert trace_main(["info", path]) == 0
    out = capsys.readouterr().out
    assert "workload:     gcc" in out
    assert "240" in out

    assert trace_main(["info", path, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["meta"]["num_cores"] == 2

    sliced = str(tmp_path / "sliced.rtrace")
    assert trace_main(["transform", "slice", "--input", path, "--output", sliced,
                       "--records", "40"]) == 0
    assert TraceReader(sliced).record_counts == [40, 40]

    mix = str(tmp_path / "mix.rtrace")
    assert trace_main(["transform", "interleave", "--inputs", path, sliced,
                       "--output", mix, "--name", "climix"]) == 0
    assert read_meta(mix).num_cores == 4

    assert trace_main(["replay", sliced, "--scheme", "banshee", "--preset", "tiny"]) == 0
    assert "ipc" in capsys.readouterr().out


def test_cli_reports_errors_as_exit_code_2(tmp_path, capsys):
    assert trace_main(["record", "--workload", "nope", "--output",
                       str(tmp_path / "x.rtrace")]) == 2
    assert "unknown workload" in capsys.readouterr().err
    assert trace_main(["info", str(tmp_path / "missing.rtrace")]) == 2
    path = str(tmp_path / "ok.rtrace")
    trace_main(["record", "--workload", "gcc", "--output", path,
                "--records", "30", "--cores", "1", "--scale", "0.05"])
    capsys.readouterr()
    assert trace_main(["replay", path, "--scheme", "bogus"]) == 2
    assert "unknown scheme" in capsys.readouterr().err
    assert trace_main(["replay", path, "--records", "500"]) == 2
    assert "30 records" in capsys.readouterr().err


# -------------------------------------------------------- multi-core stats


def test_summarize_streams_counts_shared_pages_once():
    streams = [
        [TraceRecord(10, 0, False), TraceRecord(5, 4096, True)],
        [TraceRecord(2, 0, False), TraceRecord(3, 8192, False)],
    ]
    combined, per_core = summarize_streams(streams, page_size=4096)
    assert [stats.records for stats in per_core] == [2, 2]
    assert [stats.unique_pages for stats in per_core] == [2, 2]
    assert combined.records == 4
    assert combined.instructions == 20
    assert combined.reads == 3
    assert combined.writes == 1
    assert combined.unique_pages == 3  # page 0 is shared between the cores
    assert combined.footprint_bytes == 3 * 4096


def test_capture_stats_match_summarize_streams(tmp_path):
    path, meta = capture(tmp_path, name="pagerank", records=200)
    workload = get_workload("pagerank", 2, scale=0.05, seed=1)
    combined, per_core = summarize_streams(
        [itertools.islice(workload.trace(core_id), 200) for core_id in range(2)]
    )
    assert meta.stats["records"] == combined.records
    assert meta.stats["unique_pages"] == combined.unique_pages
    # Graph state is shared: the union footprint is smaller than the sum.
    assert combined.unique_pages < sum(stats.unique_pages for stats in per_core)
    assert [stats["records"] for stats in meta.core_stats] == [200, 200]


def test_stream_batches_round_trips_capture(tmp_path):
    """Column batches must replay the stored streams exactly, per chunk.

    Both the raw and the compressed layout go through the same one-shot
    struct decode; concatenated columns must equal the per-record stream.
    """
    for compress in (False, True):
        path, _ = capture(tmp_path, records=300, compress=compress,
                          filename=f"cols-{compress}.rtrace")
        reader = TraceReader(path)
        for core_id in range(reader.num_cores):
            expected = [(r.gap, r.addr, r.is_write) for r in reader.stream(core_id)]
            got = []
            for gaps, addrs, writes in reader.stream_batches(core_id):
                assert len(gaps) == len(addrs) == len(writes) > 0
                got.extend(zip(gaps, addrs, writes))
            assert got == expected


def test_trace_workload_batches_match_trace(tmp_path):
    """TraceWorkload.trace_batches replays exactly its trace() stream."""
    path, _ = capture(tmp_path, records=250)
    workload = TraceWorkload(path)
    for core_id in range(workload.num_cores):
        expected = [(r.gap, r.addr, r.is_write) for r in workload.trace(core_id)]
        got = []
        for gaps, addrs, writes in workload.trace_batches(core_id):
            got.extend(zip(gaps, addrs, writes))
        assert got == expected


def test_batch_engine_replays_trace_workload(tmp_path):
    """A captured trace replayed through the batch engine matches scalar."""
    path, _ = capture(tmp_path, records=400)
    results = {}
    for mode in ("scalar", "batch"):
        config = SystemConfig.scaled_default(scheme="banshee", num_cores=2)
        engine = SimulationEngine(System(config, TraceWorkload(path)), mode=mode)
        results[mode] = engine.run(400, warmup_records_per_core=100).identity_dict()
    assert results["batch"] == results["scalar"]
