"""Unit tests for the virtual-memory substrate (page table, TLB, reverse map)."""

import pytest

from repro.sim.config import TlbConfig
from repro.vm.page_table import PageTable
from repro.vm.physical_memory import FrameAllocator
from repro.vm.reverse_mapping import ReverseMapping
from repro.vm.shootdown import ShootdownCostModel
from repro.vm.tlb import Tlb


def test_translate_allocates_and_reuses():
    table = PageTable(page_size=4096)
    entry_a = table.translate(0x1234)
    entry_b = table.translate(0x1FFF)
    assert entry_a is entry_b
    assert table.mapped_pages() == 1


def test_identity_mapping():
    table = PageTable(page_size=4096)
    entry = table.translate(5 * 4096 + 12)
    assert entry.ppn == 5


def test_apply_mapping_updates_all_aliases():
    table = PageTable(page_size=4096)
    table.translate(7 * 4096)
    table.alias(vpn=100, target_vpn=7)
    updated = table.apply_mapping(7, cached=True, way=2)
    assert updated == 2
    assert table.entry_for_vpn(7).cached
    assert table.entry_for_vpn(100).cached
    assert table.entry_for_vpn(100).way == 2


def test_reverse_mapping_alias_count():
    rmap = ReverseMapping()
    rmap.add(10, 1)
    rmap.add(10, 2)
    assert rmap.alias_count(10) == 2
    rmap.remove(10, 1)
    assert set(rmap.vpns_for(10)) == {2}


def test_reverse_mapping_remove_prunes_empty_frames():
    """Removing a frame's last mapping must drop its entry entirely.

    Regression test: ``remove`` used to leave a permanently-empty set in the
    backing defaultdict for every frame ever touched, so a simulation with
    page churn leaked one set per retired frame.
    """
    rmap = ReverseMapping()
    for frame in range(100):
        rmap.add(frame, frame + 1000)
        rmap.remove(frame, frame + 1000)
    assert len(rmap) == 0
    assert rmap._map == {}  # no empty-set residue in the backing dict

    # Removing a never-added pair must not (re)create an entry either.
    rmap.remove(12345, 1)
    assert rmap._map == {}

    # Partial removal keeps the frame listed until the last alias goes.
    rmap.add(7, 1)
    rmap.add(7, 2)
    rmap.remove(7, 1)
    assert len(rmap) == 1
    assert set(rmap.vpns_for(7)) == {2}
    rmap.remove(7, 2)
    assert len(rmap) == 0
    assert rmap.alias_count(7) == 0


def test_frame_allocator_reuses_freed_frames():
    allocator = FrameAllocator()
    first = allocator.allocate()
    second = allocator.allocate()
    assert first != second
    allocator.free(first)
    assert allocator.allocate() == first


def test_tlb_hit_miss_and_capacity():
    table = PageTable(page_size=4096)
    tlb = Tlb(0, TlbConfig(entries=4))
    for vpn in range(6):
        assert tlb.lookup(vpn) is None
        tlb.fill(table.entry_for_vpn(vpn))
    # Capacity is 4, so the two oldest translations were evicted.
    assert tlb.occupancy == 4
    assert tlb.lookup(0) is None
    assert tlb.lookup(5) is not None


def test_tlb_lru_keeps_recently_used():
    table = PageTable(page_size=4096)
    tlb = Tlb(0, TlbConfig(entries=2))
    tlb.fill(table.entry_for_vpn(1))
    tlb.fill(table.entry_for_vpn(2))
    tlb.lookup(1)
    tlb.fill(table.entry_for_vpn(3))
    assert tlb.lookup(1) is not None
    assert tlb.lookup(2) is None


def test_tlb_shootdown_clears_entries():
    table = PageTable(page_size=4096)
    tlb = Tlb(0, TlbConfig(entries=8))
    for vpn in range(5):
        tlb.fill(table.entry_for_vpn(vpn))
    dropped = tlb.invalidate_all()
    assert dropped == 5
    assert tlb.occupancy == 0
    assert tlb.invalidations == 1


def test_tlb_entry_carries_mapping_bits():
    table = PageTable(page_size=4096)
    pte = table.entry_for_vpn(9)
    pte.cached = True
    pte.way = 3
    tlb = Tlb(0, TlbConfig(entries=8))
    entry = tlb.fill(pte)
    assert entry.cached and entry.way == 3


def test_shootdown_costs_match_table3():
    model = ShootdownCostModel(num_cores=4, freq_ghz=2.7, initiator_us=4.0, slave_us=1.0)
    cost = model.shootdown(initiator_core=2)
    assert cost.per_core_cycles[2] == 10_800
    assert cost.per_core_cycles[0] == 2_700
    assert model.shootdowns == 1
    with pytest.raises(ValueError):
        model.shootdown(99)
