"""Unit tests for the configuration dataclasses."""

import pytest

from repro.sim.config import (
    CacheLevelConfig,
    DramCacheConfig,
    DramConfig,
    DramTimingConfig,
    SystemConfig,
)
from repro.util.units import MB


def test_paper_default_matches_table2():
    config = SystemConfig.paper_default()
    assert config.num_cores == 16
    assert config.in_package_dram.capacity_bytes == 1024 * MB
    assert config.in_package_dram.num_channels == 4
    assert config.off_package_dram.num_channels == 1
    assert config.l3.size_bytes == 8 * MB
    assert config.dram_cache.ways == 4
    assert config.dram_cache.sampling_coefficient == pytest.approx(0.1)


def test_scaled_default_preserves_bandwidth_ratio():
    config = SystemConfig.scaled_default(num_cores=4)
    ratio = config.in_package_dram.peak_bandwidth_gb_per_s / config.off_package_dram.peak_bandwidth_gb_per_s
    assert ratio == pytest.approx(4.0)


def test_peak_bandwidth_matches_paper():
    timing = DramTimingConfig()
    # 128-bit channel at DDR-1333 is ~21.3 GB/s; 4 channels are ~85 GB/s.
    assert timing.peak_bandwidth_gb_per_s == pytest.approx(21.3, abs=0.5)
    in_package = DramConfig(name="in", capacity_bytes=MB, num_channels=4)
    assert in_package.peak_bandwidth_gb_per_s == pytest.approx(85.3, abs=2.0)


def test_cache_level_validation():
    with pytest.raises(ValueError):
        CacheLevelConfig(size_bytes=0, ways=4)
    with pytest.raises(ValueError):
        CacheLevelConfig(size_bytes=48 * 1024, ways=5)  # non power-of-two sets
    with pytest.raises(ValueError):
        CacheLevelConfig(size_bytes=64 * 1024, ways=4, replacement="mru")


def test_dram_cache_config_validation():
    with pytest.raises(ValueError):
        DramCacheConfig(scheme="bogus")
    with pytest.raises(ValueError):
        DramCacheConfig(sampling_coefficient=0.0)
    with pytest.raises(ValueError):
        DramCacheConfig(banshee_policy="mru")


def test_effective_threshold_formula():
    config = DramCacheConfig()
    # page_size(lines)=64, coeff=0.1 -> 64*0.1/2 = 3.2 -> 3
    assert config.effective_threshold(4096, 0.1) == 3
    # explicit override wins
    override = DramCacheConfig(replacement_threshold=7)
    assert override.effective_threshold(4096, 0.1) == 7


def test_counter_max():
    assert DramCacheConfig(counter_bits=5).counter_max == 31


def test_with_scheme_returns_new_config():
    config = SystemConfig.tiny(scheme="banshee")
    alloy = config.with_scheme("alloy", alloy_replacement_probability=0.1)
    assert alloy.dram_cache.scheme == "alloy"
    assert alloy.dram_cache.alloy_replacement_probability == pytest.approx(0.1)
    assert config.dram_cache.scheme == "banshee"


def test_dram_cache_sets_and_pages():
    config = SystemConfig.tiny()
    assert config.dram_cache_pages == config.in_package_dram.capacity_bytes // 4096
    assert config.dram_cache_sets == config.dram_cache_pages // config.dram_cache.ways


def test_llc_must_be_smaller_than_dram_cache():
    with pytest.raises(ValueError):
        SystemConfig(
            in_package_dram=DramConfig(name="in", capacity_bytes=256 * 1024, num_channels=1),
            l3=CacheLevelConfig(size_bytes=512 * 1024, ways=16),
        )
