"""Boundary tests for the engine's run-parameter validation."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.engine import SimulationEngine
from repro.sim.system import System
from repro.workloads.registry import get_workload


def make_engine():
    config = SystemConfig.tiny()
    workload = get_workload("gcc", config.num_cores, scale=0.05)
    return SimulationEngine(System(config, workload))


def test_rejects_non_positive_records():
    with pytest.raises(ValueError, match="max_records_per_core"):
        make_engine().run(0)
    with pytest.raises(ValueError, match="max_records_per_core"):
        make_engine().run(-5)


def test_rejects_negative_warmup():
    with pytest.raises(ValueError, match="warmup_records_per_core"):
        make_engine().run(100, warmup_records_per_core=-1)


def test_rejects_warmup_equal_to_records():
    with pytest.raises(ValueError, match="warmup_records_per_core"):
        make_engine().run(100, warmup_records_per_core=100)
    with pytest.raises(ValueError, match="warmup_records_per_core"):
        make_engine().run(100, warmup_records_per_core=150)


def test_accepts_warmup_boundaries():
    zero = make_engine().run(120, warmup_records_per_core=0)
    assert zero.instructions > 0
    almost_all = make_engine().run(120, warmup_records_per_core=119)
    assert almost_all.cycles > 0


def test_rejects_unknown_engine_mode():
    config = SystemConfig.tiny()
    workload = get_workload("gcc", config.num_cores, scale=0.05)
    with pytest.raises(ValueError, match="engine mode"):
        SimulationEngine(System(config, workload), mode="warp")


def test_default_engine_mode_is_batch():
    assert make_engine().mode == "batch"
