"""Unit tests for the baseline DRAM-cache schemes (NoCache, CacheOnly, Alloy, Unison, TDC, HMA)."""

import pytest

from repro.dramcache.alloy import AlloyCache
from repro.dramcache.cache_only import CacheOnly
from repro.dramcache.factory import available_schemes, create_scheme
from repro.dramcache.hma import HmaCache
from repro.dramcache.no_cache import NoCache
from repro.dramcache.tdc import TaglessDramCache
from repro.dramcache.unison import UnisonCache
from repro.memctrl.request import MemRequest
from repro.sim.stats import TrafficCategory


def read(addr, core=0, write=False, writeback=False):
    return MemRequest(addr=addr, is_write=write, core_id=core, is_writeback=writeback)


# --------------------------------------------------------------------------- NoCache / CacheOnly


def test_nocache_goes_off_package(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("nocache")
    scheme = NoCache(config, in_dram, off_dram, rng=rng)
    result = scheme.access(0, read(0x1000), 0)
    assert result.served_by == "off-package"
    assert not result.dram_cache_hit
    assert off_dram.traffic.total_bytes == 64
    assert in_dram.traffic.total_bytes == 0


def test_cacheonly_always_hits(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("cacheonly")
    scheme = CacheOnly(config, in_dram, off_dram, rng=rng)
    for i in range(50):
        result = scheme.access(0, read(i * 4096), 0)
        assert result.dram_cache_hit
    assert scheme.miss_rate == 0.0
    assert off_dram.traffic.total_bytes == 0


# --------------------------------------------------------------------------- Alloy Cache


def test_alloy_hit_after_fill(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("alloy", alloy_replacement_probability=1.0)
    scheme = AlloyCache(config, in_dram, off_dram, rng=rng)
    miss = scheme.access(0, read(0x2000), 0)
    assert not miss.dram_cache_hit
    hit = scheme.access(100, read(0x2000), 0)
    assert hit.dram_cache_hit


def test_alloy_hit_traffic_is_96_bytes(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("alloy")
    scheme = AlloyCache(config, in_dram, off_dram, rng=rng)
    scheme.access(0, read(0x2000), 0)
    before = in_dram.traffic.total_bytes
    scheme.access(100, read(0x2000), 0)
    assert in_dram.traffic.total_bytes - before == 96  # 64 B data + 32 B tag (TAD)


def test_alloy_stochastic_fill_probability_zero_never_fills(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("alloy", alloy_replacement_probability=0.0)
    scheme = AlloyCache(config, in_dram, off_dram, rng=rng)
    for _ in range(5):
        scheme.access(0, read(0x2000), 0)
    assert scheme.stats.get("fills") == 0
    assert scheme.miss_rate == 1.0


def test_alloy_conflict_eviction_writes_back_dirty_line(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("alloy", alloy_replacement_probability=1.0)
    scheme = AlloyCache(config, in_dram, off_dram, rng=rng)
    conflict_stride = scheme.num_frames * scheme.line_size
    scheme.access(0, read(0x0, write=True), 0)
    scheme.access(10, read(conflict_stride), 0)  # same frame, evicts dirty line
    assert scheme.stats.get("dirty_victim_writebacks") == 1
    assert off_dram.traffic.bytes_for(TrafficCategory.WRITEBACK) == 64


def test_alloy_writeback_probe(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("alloy")
    scheme = AlloyCache(config, in_dram, off_dram, rng=rng)
    scheme.access(0, read(0x2000, write=True), 0)
    hit = scheme.access(10, read(0x2000, writeback=True), 0)
    assert hit.dram_cache_hit
    miss = scheme.access(20, read(0x9999000, writeback=True), 0)
    assert not miss.dram_cache_hit
    assert scheme.stats.get("writeback_misses") == 1


# --------------------------------------------------------------------------- Unison Cache


def test_unison_replaces_on_every_miss(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("unison")
    scheme = UnisonCache(config, in_dram, off_dram, rng=rng)
    scheme.access(0, read(0x4000), 0)
    assert scheme.stats.get("page_fills") == 1
    assert scheme.is_resident(0x4000 // 4096)
    hit = scheme.access(10, read(0x4000 + 64), 0)
    assert hit.dram_cache_hit


def test_unison_hit_traffic_includes_tag_update(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("unison")
    scheme = UnisonCache(config, in_dram, off_dram, rng=rng)
    scheme.access(0, read(0x4000), 0)
    before_tag = in_dram.traffic.bytes_for(TrafficCategory.TAG)
    scheme.access(10, read(0x4000), 0)
    assert in_dram.traffic.bytes_for(TrafficCategory.TAG) - before_tag == 64  # read + update


def test_unison_lru_eviction_within_set(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("unison")
    scheme = UnisonCache(config, in_dram, off_dram, rng=rng)
    ways = scheme.ways
    set_stride = scheme.num_sets * 4096
    pages = [i * set_stride for i in range(ways + 1)]
    for addr in pages:
        scheme.access(0, read(addr), 0)
    # The first page mapped to the set is the LRU victim and must be gone.
    assert not scheme.is_resident(pages[0] // 4096)
    assert scheme.is_resident(pages[-1] // 4096)


def test_unison_dirty_page_eviction_writes_back(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("unison")
    scheme = UnisonCache(config, in_dram, off_dram, rng=rng)
    set_stride = scheme.num_sets * 4096
    scheme.access(0, read(0x0, write=True), 0)
    for i in range(1, scheme.ways + 1):
        scheme.access(i, read(i * set_stride), 0)
    assert scheme.stats.get("dirty_page_evictions") == 1


# --------------------------------------------------------------------------- TDC


def test_tdc_has_no_tag_traffic(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("tdc")
    scheme = TaglessDramCache(config, in_dram, off_dram, rng=rng)
    for i in range(20):
        scheme.access(i, read(i * 4096), 0)
        scheme.access(i, read(i * 4096 + 64), 0)
    assert in_dram.traffic.bytes_for(TrafficCategory.TAG) == 0
    assert in_dram.traffic.bytes_for(TrafficCategory.COUNTER) == 0


def test_tdc_fifo_eviction(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("tdc")
    scheme = TaglessDramCache(config, in_dram, off_dram, rng=rng)
    capacity = scheme.capacity_pages
    for page in range(capacity + 1):
        scheme.access(page, read(page * 4096), 0)
    assert not scheme.is_resident(0), "FIFO must evict the oldest page"
    assert scheme.is_resident(capacity)
    assert len(scheme._resident) <= capacity


def test_tdc_hit_is_64_bytes(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("tdc")
    scheme = TaglessDramCache(config, in_dram, off_dram, rng=rng)
    scheme.access(0, read(0x4000), 0)
    before = in_dram.traffic.bytes_for(TrafficCategory.HIT_DATA)
    scheme.access(10, read(0x4000 + 128), 0)
    assert in_dram.traffic.bytes_for(TrafficCategory.HIT_DATA) - before == 64


# --------------------------------------------------------------------------- HMA


def test_hma_caches_hot_pages_only_after_interval(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("hma", hma_interval_ms=0.001)
    scheme = HmaCache(config, in_dram, off_dram, rng=rng)
    hot_addr = 0x8000
    for i in range(50):
        scheme.access(i, read(hot_addr), 0)
    assert not scheme.is_resident(hot_addr // 4096)
    # Cross the remap interval: the hot page must now be resident.
    scheme.access(10_000_000, read(hot_addr), 0)
    scheme.access(10_000_001, read(hot_addr), 0)
    assert scheme.is_resident(hot_addr // 4096)
    assert scheme.stats.get("remap_intervals") >= 1


def test_hma_resident_capacity_bounded(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("hma", hma_interval_ms=0.001)
    scheme = HmaCache(config, in_dram, off_dram, rng=rng)
    for page in range(3 * scheme.capacity_pages):
        scheme.access(page, read(page * 4096), 0)
    scheme.notify_cycle(1 << 40)
    assert len(scheme._resident) <= scheme.capacity_pages


# --------------------------------------------------------------------------- factory


def test_factory_builds_every_scheme(scheme_env):
    for name in available_schemes():
        config, in_dram, off_dram, rng = scheme_env(name)
        scheme = create_scheme(config, in_dram, off_dram, rng=rng)
        assert scheme.name == name


def test_factory_rejects_unknown_scheme(scheme_env):
    config, in_dram, off_dram, rng = scheme_env("banshee")
    bad = config.with_overrides()
    # Bypass config validation entirely; without a resolvable scheme or a
    # recorded base_scheme the factory must refuse to build anything.
    object.__setattr__(bad.dram_cache, "scheme", "nonsense")
    object.__setattr__(bad.dram_cache, "base_scheme", "")
    with pytest.raises(ValueError):
        create_scheme(bad, in_dram, off_dram, rng=rng)
