"""Tests for the observability layer: metrics, interval timelines, run
events, heartbeats, campaign telemetry wiring and the obs/perf CLIs."""

import io
import json

import pytest

from repro.campaign import CampaignSpec, ResultStore, SweepGrid, run_campaign
from repro.campaign.cli import main as campaign_main
from repro.obs.cli import main as obs_main
from repro.obs.events import (
    EventLog,
    ObsSink,
    make_event,
    merge_events,
    read_events,
    validate_event,
)
from repro.obs.heartbeat import HeartbeatWriter, is_stale, read_heartbeats
from repro.obs.metrics import DEFAULT_LATENCY_BOUNDS, Histogram, MetricsRegistry
from repro.obs.timeline import (
    PHASE_MEASURE,
    PHASE_WARMUP,
    Timeline,
    TimelineObserver,
)
from repro.experiments.runner import run_simulation
from repro.sim.config import SystemConfig
from repro.sim.engine import SimulationEngine
from repro.sim.system import System
from repro.workloads.registry import get_workload


def tiny_run(timeline_interval=None, events=None, records=400, warmup=0.5, scheme="banshee"):
    return run_simulation(
        SystemConfig.tiny(scheme=scheme),
        workload_name="gcc",
        records_per_core=records,
        warmup_fraction=warmup,
        timeline_interval=timeline_interval,
        events=events,
    )


def tiny_spec(name, timeline_interval=None, schemes=("banshee",)):
    return CampaignSpec(
        name=name,
        grids=[SweepGrid(schemes=list(schemes), workloads=["gcc"], seeds=[1])],
        records_per_core=300,
        num_cores=2,
        preset="tiny",
        timeline_interval=timeline_interval,
    )


# ------------------------------------------------------------------- metrics


def test_metrics_registry_counters_gauges_histograms():
    registry = MetricsRegistry()
    counter = registry.counter("records")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert registry.counter("records") is counter

    gauge = registry.gauge("depth")
    gauge.set(3.5)
    gauge.add(-1.5)
    assert gauge.value == 2.0

    histogram = registry.histogram("lat", bounds=(10.0, 100.0))
    for value in (5, 50, 500):
        histogram.observe(value)
    assert histogram.counts == [1, 1, 1]
    assert histogram.total == 3
    with pytest.raises(ValueError):
        registry.histogram("lat", bounds=(1.0, 2.0))  # conflicting bounds

    payload = registry.as_dict()
    assert payload["counters"]["records"] == 5
    assert payload["histograms"]["lat"]["counts"] == [1, 1, 1]


def test_histogram_quantile_and_bounds_validation():
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(10.0, 10.0))
    histogram = Histogram("lat", bounds=(10.0, 20.0, 40.0))
    for value in [5] * 50 + [15] * 40 + [100] * 10:
        histogram.observe(value)
    assert histogram.quantile(0.5) == 10.0     # within the first bucket
    assert histogram.quantile(0.95) == 40.0    # overflow reports last finite bound
    assert histogram.quantile(0.0) == 10.0


# ------------------------------------------------------------------ timeline


def test_first_measured_window_starts_exactly_at_begin_measurement():
    # tiny preset = 2 cores; warmup 0.5 of 400 records/core -> boundary at
    # 400 processed records, deliberately NOT a multiple of the interval.
    result = tiny_run(timeline_interval=150, records=400)
    timeline = result.timeline_object()
    measured = timeline.measured
    assert measured, "expected at least one measured window"
    assert measured[0].start_record == 400
    # Warmup windows cover [0, 400) contiguously.
    warmup = timeline.warmup
    assert warmup[0].start_record == 0
    assert warmup[-1].end_record == 400
    for earlier, later in zip(timeline.windows, timeline.windows[1:]):
        assert earlier.end_record == later.start_record
        assert earlier.index + 1 == later.index
    assert all(w.phase == PHASE_WARMUP for w in warmup)
    assert all(w.phase == PHASE_MEASURE for w in measured)


def test_measured_window_totals_match_result_aggregates():
    result = tiny_run(timeline_interval=100, records=400)
    totals = result.timeline_object().totals(PHASE_MEASURE)
    assert totals["dram_cache_hits"] == result.dram_cache_hits
    assert totals["dram_cache_misses"] == result.dram_cache_misses
    assert totals["instructions"] == result.instructions
    assert totals["llc_misses"] == result.llc_misses
    assert totals["llc_writebacks"] == result.llc_writebacks
    assert totals["tlb_misses"] == result.tlb_misses
    assert totals["in_bytes"] == sum(result.in_traffic_bytes.values())
    assert totals["off_bytes"] == sum(result.off_traffic_bytes.values())


def test_observer_does_not_change_simulation_outcomes():
    plain = tiny_run(records=300)
    observed = tiny_run(timeline_interval=64, records=300)
    identity = observed.identity_dict()
    assert identity.pop("timeline") is not None
    assert identity == plain.identity_dict()


def test_timeline_round_trips_dict_csv_jsonl():
    timeline = tiny_run(timeline_interval=100, records=300).timeline_object()
    assert len(timeline.windows) > 2
    assert Timeline.from_dict(json.loads(json.dumps(timeline.to_dict()))) == timeline
    assert Timeline.from_csv(timeline.to_csv()) == timeline
    assert Timeline.from_jsonl(timeline.to_jsonl()) == timeline
    with pytest.raises(ValueError):
        Timeline.from_csv("index,phase\n0,measure\n")


def test_observer_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        TimelineObserver(0)
    with pytest.raises(ValueError):
        Timeline(interval_records=-5)


def test_engine_detaches_latency_hook_after_run():
    config = SystemConfig.tiny()
    system = System(config, get_workload("gcc", config.num_cores))
    SimulationEngine(system).run(100, observer=TimelineObserver(50))
    assert system._obs_latency_hook is None


# -------------------------------------------------------------------- events


def test_event_validation_and_round_trip(tmp_path):
    log = EventLog(tmp_path / "events.jsonl")
    log.emit("run_start", workload="gcc")
    log.emit("run_end", records=100)
    records = read_events(log.path, validate=True)
    assert [r["event"] for r in records] == ["run_start", "run_end"]
    with pytest.raises(ValueError):
        make_event("nope")
    with pytest.raises(ValueError):
        validate_event({"event": "run_start"})  # missing ts/pid
    with pytest.raises(ValueError):
        validate_event({"ts": 1.0, "pid": 1, "event": "invented"})


def test_read_events_skips_truncated_tail(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path)
    log.emit("run_start")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"ts": 1.0, "pid": 1, "ev')  # crash mid-write
    assert [r["event"] for r in read_events(path)] == ["run_start"]


def test_merge_events_orders_by_timestamp(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    with open(a, "w", encoding="utf-8") as handle:
        handle.write('{"ts": 2.0, "pid": 1, "event": "run_end"}\n')
    with open(b, "w", encoding="utf-8") as handle:
        handle.write('{"ts": 1.0, "pid": 1, "event": "run_start"}\n')
    merged = merge_events([a, b], validate=True)
    assert [r["event"] for r in merged] == ["run_start", "run_end"]


def test_engine_emits_run_events(tmp_path):
    log = EventLog(tmp_path / "events.jsonl")
    tiny_run(records=200, events=log)
    events = read_events(log.path, validate=True)
    names = [r["event"] for r in events]
    assert names == ["run_start", "warmup_end", "run_end"]
    # tiny preset = 2 cores; warmup 0.5 of 200 -> boundary at 200 processed.
    assert events[1]["records"] == 200
    assert events[2]["records"] == 400


# ---------------------------------------------------------------- heartbeats


def test_heartbeat_write_read_stale(tmp_path):
    writer = HeartbeatWriter(tmp_path, "worker-1")
    writer.beat(state="running", cell="banshee/gcc", key="abc")
    writer.finished_cell()
    writer.beat(state="idle")
    beats = read_heartbeats(tmp_path)
    assert len(beats) == 1
    beat = beats[0]
    assert beat["worker"] == "worker-1"
    assert beat["state"] == "idle"
    assert beat["cells_done"] == 1
    assert not is_stale(beat)
    assert is_stale(beat, now=beat["updated_ts"] + 301.0)
    writer.clear()
    assert read_heartbeats(tmp_path) == []


# ----------------------------------------------------- campaign store errors


def test_store_persists_errors_and_retries(tmp_path, monkeypatch):
    spec = tiny_spec("errs", timeline_interval=None)
    store = ResultStore(tmp_path / "store")
    import repro.campaign.executor as executor_module

    def boom(*args, **kwargs):
        raise RuntimeError("injected failure")

    monkeypatch.setattr(executor_module, "run_simulation", boom)
    report = run_campaign(spec, store=store)
    assert len(report.errors) == 1
    key = report.outcomes[0].key

    reopened = ResultStore(tmp_path / "store")
    assert key not in reopened          # errors read as absent -> retried
    assert len(reopened) == 0
    assert reopened.error_keys() == [key]
    assert "injected failure" in reopened.get_error(key)
    status = reopened.status()
    assert status["errors"] == 1
    assert status["errors_by_scheme"] == {"banshee": 1}
    assert status["errors_by_workload"] == {"gcc": 1}

    monkeypatch.undo()
    retried = run_campaign(spec, store=reopened)
    assert retried.outcomes[0].ok and not retried.outcomes[0].from_store
    final = ResultStore(tmp_path / "store")
    assert final.error_keys() == [] and len(final) == 1


def test_store_put_backfills_scheme_workload_meta(tmp_path):
    store = ResultStore(tmp_path / "store")
    result = tiny_run(records=200)
    store.put("some-key", result, meta={"seed": 1})  # no scheme/workload given
    status = ResultStore(tmp_path / "store").status()
    assert "?" not in status["by_scheme"]
    assert "?" not in status["by_workload"]
    assert status["by_scheme"] == {"banshee": 1}
    assert status["by_workload"] == {"gcc": 1}


# ------------------------------------------- serial vs parallel determinism


def test_timeline_identical_across_serial_and_parallel(tmp_path):
    spec = tiny_spec("det", timeline_interval=75, schemes=["banshee", "alloy"])
    obs = ObsSink.for_directory(tmp_path / "obs")
    serial = run_campaign(spec, store=ResultStore(tmp_path / "s"), workers=1, obs=obs)
    parallel = run_campaign(spec, store=ResultStore(tmp_path / "p"), workers=2, obs=obs)
    assert all(o.ok for o in serial.outcomes + parallel.outcomes)
    for left, right in zip(serial.outcomes, parallel.outcomes):
        assert left.key == right.key
        assert left.result.timeline is not None
        assert left.result.timeline == right.result.timeline
        assert left.result.identity_dict() == right.result.identity_dict()
    # Both executors emitted cell + heartbeat events into the shared sink.
    names = {r["event"] for r in read_events(obs.events_path, validate=True)}
    assert {"campaign_start", "campaign_end", "cell_start", "cell_finish",
            "heartbeat", "run_start", "run_end"} <= names
    # Clean exits remove heartbeat files: a finished campaign must not show
    # ghost workers to ``status --live``.
    assert read_heartbeats(obs.heartbeat_dir) == []


def test_timeline_interval_extends_cell_key_only_when_set():
    plain = tiny_spec("a").cells()[0]
    timed = tiny_spec("a", timeline_interval=100).cells()[0]
    assert plain.key() != timed.key()
    assert "timeline_interval" not in plain.meta()
    assert timed.meta()["timeline_interval"] == 100


# ----------------------------------------------------------------- CLI layer


def test_campaign_cli_run_with_timeline_and_live_status(tmp_path):
    store_dir = str(tmp_path / "store")
    out = io.StringIO()
    rc = campaign_main(
        ["run", "--store", store_dir, "--schemes", "banshee", "--workloads", "gcc",
         "--seeds", "1", "--records", "300", "--preset", "tiny",
         "--timeline", "100"],
        stream=out,
    )
    assert rc == 0
    text = out.getvalue()
    assert "elapsed, eta" in text            # progress line timing satellite

    events = read_events(f"{store_dir}/obs/events.jsonl", validate=True)
    assert any(r["event"] == "campaign_end" for r in events)

    live = io.StringIO()
    assert campaign_main(["status", "--store", store_dir, "--live"], stream=live) == 0
    assert "finished" in live.getvalue()

    status = io.StringIO()
    assert campaign_main(["status", "--store", store_dir], stream=status) == 0
    assert "banshee" in status.getvalue()

    # Stored timeline is live through the obs CLI.
    summary = io.StringIO()
    assert obs_main(["summarize", "--store", store_dir], stream=summary) == 0
    assert "1 cell(s) with timelines" in summary.getvalue()


def test_campaign_cli_no_obs_flag(tmp_path):
    store_dir = tmp_path / "store"
    rc = campaign_main(
        ["run", "--store", str(store_dir), "--schemes", "banshee", "--workloads", "gcc",
         "--seeds", "1", "--records", "200", "--preset", "tiny", "--quiet", "--no-obs"],
        stream=io.StringIO(),
    )
    assert rc == 0
    assert not (store_dir / "obs").exists()


def test_obs_cli_summarize_merge_export(tmp_path):
    timeline = tiny_run(timeline_interval=100, records=300).timeline_object()
    csv_path = tmp_path / "t.csv"
    csv_path.write_text(timeline.to_csv(), encoding="utf-8")
    out = io.StringIO()
    assert obs_main(["summarize", "--timeline", str(csv_path)], stream=out) == 0
    assert "windows" in out.getvalue()

    log = EventLog(tmp_path / "e.jsonl")
    log.emit("run_start")
    log.emit("run_end", records=10)
    merged_path = tmp_path / "merged.jsonl"
    out = io.StringIO()
    assert obs_main(
        ["merge", "--inputs", str(log.path), "--output", str(merged_path), "--validate"],
        stream=out,
    ) == 0
    assert len(read_events(merged_path)) == 2

    # Export a store written through run_simulation's cache layer.
    from repro.experiments.runner import ResultCache

    store = ResultStore(tmp_path / "store")
    run_simulation(
        SystemConfig.tiny(), workload_name="gcc", records_per_core=300,
        timeline_interval=100, cache=ResultCache(store=store),
    )
    out = io.StringIO()
    assert obs_main(
        ["export", "--store", str(tmp_path / "store"), "--all", "--format", "csv"],
        stream=out,
    ) == 0
    header = out.getvalue().splitlines()[0]
    assert header.startswith("label,workload,seed,key,index,phase")

    assert obs_main(["summarize", "--events", str(tmp_path / "missing.jsonl")],
                    stream=io.StringIO()) == 2


def test_perf_profile_reports_hot_functions(capsys):
    from repro.perf.cli import main as perf_main

    out_path = "/tmp/test_obs_bench.json"
    rc = perf_main([
        "--smoke", "--profile", "--profile-top", "5", "--schemes", "banshee",
        "--workloads", "gcc", "--records", "300", "--output", out_path,
    ])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "top 5 functions by cumulative time" in captured
    assert "process_record" in captured
    with open(out_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["profile"]["top"] == 5
    assert len(payload["profile"]["functions"]) == 5
    assert all("cumtime" in row for row in payload["profile"]["functions"])
    assert all("profile" in cell for cell in payload["cells"])


def test_perf_report_omits_profile_by_default():
    from repro.perf.harness import run_cell

    cell = run_cell("banshee", "gcc", 200, repeats=1, preset="tiny")
    assert "profile" not in cell.to_dict()
