"""Unit tests for the Banshee DRAM-cache scheme."""

import pytest

from repro.core.banshee import BansheeCache
from repro.dramcache.base import OsServices
from repro.memctrl.request import MappingInfo, MemRequest
from repro.sim.stats import TrafficCategory


def demand(addr, cached=False, way=0, write=False, core=0):
    return MemRequest(addr=addr, is_write=write, core_id=core, mapping=MappingInfo(cached=cached, way=way))


def writeback(addr, core=0):
    return MemRequest(addr=addr, is_write=True, core_id=core, is_writeback=True)


class RecordingOs(OsServices):
    """Records PTE update batches for assertions."""

    def __init__(self):
        self.batches = []
        self.stalls = []

    def pte_update_batch(self, initiator_core, updates):
        self.batches.append((initiator_core, list(updates)))

    def stall_all_cores(self, cycles):
        self.stalls.append(cycles)


def make_banshee(scheme_env, **overrides):
    config, in_dram, off_dram, rng = scheme_env("banshee", **overrides)
    os_services = RecordingOs()
    scheme = BansheeCache(config, in_dram, off_dram, rng=rng, os_services=os_services)
    return scheme, in_dram, off_dram, os_services


def force_cache_page(scheme, page, mc_id=0, way=0):
    """Install a page into the Banshee cache directly (test helper)."""
    partition = scheme.partition_for(scheme.page_size)
    set_index = partition.set_of(page)
    meta = partition.metadata[set_index]
    meta.fill_way(way, page, count=5, dirty=False)
    partition.resident[page] = way
    scheme.tag_buffers[mc_id].insert(page, cached=True, way=way, remap=True)


def test_miss_goes_straight_off_package_no_probe(scheme_env):
    scheme, in_dram, off_dram, _os = make_banshee(scheme_env)
    result = scheme.access(0, demand(0x4000), 0)
    assert not result.dram_cache_hit
    # Table 1: Banshee misses move 64 B from off-package DRAM and touch the
    # in-package DRAM not at all (no speculative read, no tag lookup).
    assert off_dram.traffic.bytes_for(TrafficCategory.MISS_DATA) == 64
    assert in_dram.traffic.bytes_for(TrafficCategory.HIT_DATA) == 0
    assert in_dram.traffic.bytes_for(TrafficCategory.TAG) == 0


def test_hit_moves_exactly_64_bytes(scheme_env):
    scheme, in_dram, off_dram, _os = make_banshee(scheme_env, sampling_coefficient=0.0001)
    page = 5
    force_cache_page(scheme, page)
    result = scheme.access(0, demand(page * 4096 + 128), page % len(scheme.tag_buffers))
    assert result.dram_cache_hit
    assert in_dram.traffic.bytes_for(TrafficCategory.HIT_DATA) == 64
    assert off_dram.traffic.total_bytes == 0


def test_carried_mapping_is_never_stale(scheme_env):
    scheme, _in, _off, _os = make_banshee(scheme_env)
    for i in range(500):
        page = i % 40
        mc = page % len(scheme.tag_buffers)
        scheme.access(i, demand(page * 4096, cached=False), mc)
    assert scheme.stats.get("mapping_stale") == 0


def test_fbr_replacement_caches_hot_page(scheme_env):
    scheme, in_dram, off_dram, _os = make_banshee(scheme_env, sampling_coefficient=1.0, replacement_threshold=4)
    page = 3
    mc = page % len(scheme.tag_buffers)
    for i in range(200):
        scheme.access(i * 10, demand(page * 4096 + (i % 64) * 64), mc)
    assert scheme.partition_for(4096).is_resident(page)
    assert scheme.stats.get("replacements") >= 1
    assert in_dram.traffic.bytes_for(TrafficCategory.REPLACEMENT) >= 4096


def test_cold_pages_are_not_cached(scheme_env):
    scheme, _in, off_dram, _os = make_banshee(scheme_env, sampling_coefficient=1.0)
    partition = scheme.partition_for(4096)
    # A pure streaming pattern touches each page once: nothing should be cached.
    for page in range(200):
        mc = page % len(scheme.tag_buffers)
        scheme.access(page, demand(page * 4096), mc)
    assert partition.occupancy() <= 2
    assert scheme.stats.get("replacements", ) <= 2


def test_replacement_threshold_prevents_thrashing(scheme_env):
    scheme, _in, _off, _os = make_banshee(scheme_env, sampling_coefficient=1.0, replacement_threshold=1000)
    page = 3
    mc = page % len(scheme.tag_buffers)
    for i in range(300):
        scheme.access(i, demand(page * 4096), mc)
    # The threshold is unreachable within the counter range, so no replacement.
    assert scheme.stats.get("replacements") == 0


def test_counter_traffic_only_when_sampled(scheme_env):
    scheme, in_dram, _off, _os = make_banshee(scheme_env, sampling_coefficient=0.000001)
    for i in range(100):
        scheme.access(i, demand(i * 4096), i % len(scheme.tag_buffers))
    assert in_dram.traffic.bytes_for(TrafficCategory.COUNTER) == 0

    scheme2, in_dram2, _off2, _os2 = make_banshee(scheme_env, banshee_policy="fbr-nosample")
    for i in range(100):
        scheme2.access(i, demand(i * 4096), i % len(scheme2.tag_buffers))
    # Without sampling every access loads and stores the 32 B metadata record.
    assert in_dram2.traffic.bytes_for(TrafficCategory.COUNTER) == 100 * 64


def test_writeback_uses_tag_buffer_and_probes_otherwise(scheme_env):
    scheme, in_dram, off_dram, _os = make_banshee(scheme_env)
    page = 9
    mc = page % len(scheme.tag_buffers)
    force_cache_page(scheme, page, mc_id=mc)
    result = scheme.access(0, writeback(page * 4096), mc)
    assert result.served_by == "in-package"
    assert scheme.stats.get("writeback_tagbuffer_hits") == 1
    assert in_dram.traffic.bytes_for(TrafficCategory.TAG) == 0

    # A writeback to a page absent from the tag buffer must probe the in-DRAM tags.
    other = 123
    other_mc = other % len(scheme.tag_buffers)
    result = scheme.access(10, writeback(other * 4096), other_mc)
    assert scheme.stats.get("writeback_tag_probes") == 1
    assert in_dram.traffic.bytes_for(TrafficCategory.TAG) == 32
    assert result.served_by == "off-package"
    assert off_dram.traffic.bytes_for(TrafficCategory.WRITEBACK) == 64


def test_dirty_page_eviction_writes_whole_page(scheme_env):
    scheme, in_dram, off_dram, _os = make_banshee(scheme_env, sampling_coefficient=1.0, replacement_threshold=4)
    partition = scheme.partition_for(4096)
    victim_page = 7
    mc = victim_page % len(scheme.tag_buffers)
    # Fill every way of the set so that a replacement must evict a resident page.
    set_pages = [victim_page + way * partition.num_sets for way in range(partition.ways)]
    for way, page in enumerate(set_pages):
        force_cache_page(scheme, page, mc_id=page % len(scheme.tag_buffers), way=way)
    partition.mark_dirty(victim_page)
    # Hammer a competitor page of the same set until it displaces the victim.
    competitor = victim_page + partition.ways * partition.num_sets
    for i in range(600):
        scheme.access(i, demand(competitor * 4096), mc)
        if not partition.is_resident(victim_page):
            break
    assert not partition.is_resident(victim_page)
    assert off_dram.traffic.bytes_for(TrafficCategory.WRITEBACK) >= 4096


def test_tag_buffer_flush_triggers_pte_update_batch(scheme_env):
    scheme, _in, _off, os_services = make_banshee(scheme_env, sampling_coefficient=1.0, replacement_threshold=2)
    scheme.set_os_services(os_services)
    # Force many replacements by cycling hot pages across many sets.
    for i in range(4000):
        page = i % 300
        mc = page % len(scheme.tag_buffers)
        scheme.access(i, demand(page * 4096 + (i % 64) * 64, write=(i % 5 == 0)), mc)
        if os_services.batches:
            break
    assert os_services.batches, "filling the tag buffer with remaps must trigger a PTE update batch"
    initiator, updates = os_services.batches[0]
    assert updates, "the batch must carry the accumulated remap entries"
    assert all(len(item) == 3 for item in updates)
    for buffer in scheme.tag_buffers:
        assert buffer.remap_count == 0 or scheme.pte_updater.flushes >= 1


def test_finalize_flushes_outstanding_remaps(scheme_env):
    scheme, _in, _off, os_services = make_banshee(scheme_env, sampling_coefficient=1.0, replacement_threshold=2)
    scheme.set_os_services(os_services)
    page = 3
    mc = page % len(scheme.tag_buffers)
    for i in range(200):
        scheme.access(i, demand(page * 4096 + (i % 64) * 64), mc)
    scheme.finalize(10_000)
    assert sum(buffer.remap_count for buffer in scheme.tag_buffers) == 0


def test_lru_policy_replaces_on_every_miss(scheme_env):
    scheme, in_dram, _off, _os = make_banshee(scheme_env, banshee_policy="lru")
    partition = scheme.partition_for(4096)
    for page in range(10):
        mc = page % len(scheme.tag_buffers)
        scheme.access(page, demand(page * 4096), mc)
    assert partition.occupancy() == 10
    assert scheme.stats.get("replacements") == 10
    assert in_dram.traffic.bytes_for(TrafficCategory.REPLACEMENT) >= 10 * 4096
