"""Tests for the campaign subsystem (spec, store, executors, CLI) and the
cache/store key identity guarantees."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ParallelExecutor,
    ResultStore,
    SerialExecutor,
    SweepGrid,
    export_csv,
    export_json,
    run_campaign,
)
from repro.campaign.cli import main as cli_main
from repro.experiments.figures import figure4_speedup
from repro.experiments.runner import ResultCache, run_simulation, simulation_cell_key
from repro.sim.config import SystemConfig, config_hash
from repro.sim.results import SimulationResults

RUN = dict(records_per_core=600, num_cores=2, preset="tiny")


def tiny_spec(name="t", schemes=("banshee",), workloads=("gcc",), seeds=(1,), **kwargs):
    params = dict(RUN)
    params.update(kwargs)
    return CampaignSpec(
        name=name,
        grids=[SweepGrid(schemes=list(schemes), workloads=list(workloads), seeds=list(seeds))],
        **params,
    )


# ----------------------------------------------------------------- key identity


def test_cell_key_sensitive_to_every_run_parameter():
    config = SystemConfig.tiny()
    base = simulation_cell_key(config, "gcc", 500, 1.0, 1, 0.5, None)
    assert simulation_cell_key(config, "gcc", 500, 1.0, 1, 0.5, None) == base
    # page_size, warmup_fraction, seed and scale must all change the key.
    assert simulation_cell_key(config, "gcc", 500, 1.0, 1, 0.5, 8192) != base
    assert simulation_cell_key(config, "gcc", 500, 1.0, 1, 0.25, None) != base
    assert simulation_cell_key(config, "gcc", 500, 1.0, 2, 0.5, None) != base
    assert simulation_cell_key(config, "gcc", 500, 0.5, 1, 0.5, None) != base
    # ... as must the workload, the trace length and the configuration.
    assert simulation_cell_key(config, "mcf", 500, 1.0, 1, 0.5, None) != base
    assert simulation_cell_key(config, "gcc", 501, 1.0, 1, 0.5, None) != base
    other = SystemConfig.tiny(scheme="alloy")
    assert simulation_cell_key(other, "gcc", 500, 1.0, 1, 0.5, None) != base


def test_config_hash_stable_and_content_addressed():
    assert config_hash(SystemConfig.tiny()) == config_hash(SystemConfig.tiny())
    assert config_hash(SystemConfig.tiny()) != config_hash(SystemConfig.tiny(scheme="nocache"))


def test_prebuilt_workloads_bypass_cache():
    from repro.workloads.registry import get_workload

    cache = ResultCache()
    workload = get_workload("gcc", 2, scale=0.05)
    run_simulation(SystemConfig.tiny(), workload=workload, records_per_core=300, cache=cache)
    assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0


def test_result_cache_counts_misses_on_lookup():
    cache = ResultCache()
    assert cache.get("absent") is None
    assert cache.misses == 1 and cache.hits == 0
    run_simulation(SystemConfig.tiny(), workload_name="gcc", records_per_core=300, cache=cache)
    assert cache.misses == 2  # the simulation's own lookup missed too
    run_simulation(SystemConfig.tiny(), workload_name="gcc", records_per_core=300, cache=cache)
    assert cache.hits == 1 and cache.misses == 2


# ----------------------------------------------------------------- results round trip


def test_simulation_results_round_trip_is_exact():
    result = run_simulation(SystemConfig.tiny(), workload_name="gcc", records_per_core=400)
    payload = json.loads(json.dumps(result.to_dict()))
    rebuilt = SimulationResults.from_dict(payload)
    assert rebuilt == result
    with pytest.raises(ValueError):
        SimulationResults.from_dict({**result.to_dict(), "bogus_field": 1})


# ----------------------------------------------------------------- spec expansion


def test_spec_expands_full_grid_and_round_trips():
    spec = tiny_spec(schemes=["banshee", "nocache"], workloads=["gcc", "mcf"], seeds=[1, 2])
    cells = spec.cells()
    assert len(cells) == 8 == spec.num_cells
    assert len({cell.key() for cell in cells}) == 8
    rebuilt = CampaignSpec.from_dict(spec.to_dict())
    assert [cell.key() for cell in rebuilt.cells()] == [cell.key() for cell in cells]


def test_spec_sweep_axes_modify_config():
    spec = CampaignSpec(
        name="axes",
        grids=[SweepGrid(schemes=["banshee"], workloads=["gcc"],
                         sampling_coefficients=[1.0, 0.01], cache_sizes=[None, 2 * 1024 * 1024])],
        **RUN,
    )
    cells = spec.cells()
    assert len(cells) == 4
    assert {cell.config.dram_cache.sampling_coefficient for cell in cells} == {1.0, 0.01}
    assert {cell.config.in_package_dram.capacity_bytes for cell in cells} == {1024 * 1024, 2 * 1024 * 1024}


# ----------------------------------------------------------------- store + resume


def test_store_round_trip_and_resume(tmp_path):
    store = ResultStore(tmp_path / "store")
    spec = tiny_spec(schemes=["banshee", "nocache"], workloads=["gcc"])
    first = run_campaign(spec, store=store)
    assert first.counts() == {"total": 2, "simulated": 2, "from_store": 0, "errors": 0}

    # A fresh store object against the same directory: zero re-simulations.
    reopened = ResultStore(tmp_path / "store")
    second = run_campaign(spec, store=reopened)
    assert second.counts() == {"total": 2, "simulated": 0, "from_store": 2, "errors": 0}
    for (key_a, result_a), (_key_b, result_b) in zip(
        sorted(first.results().items()), sorted(second.results().items())
    ):
        assert result_a.identity_dict() == result_b.identity_dict(), key_a


def test_store_skips_truncated_trailing_line(tmp_path):
    store = ResultStore(tmp_path / "store")
    result = run_simulation(SystemConfig.tiny(), workload_name="gcc", records_per_core=300)
    store.put("k1", result, meta={"workload": "gcc"})
    with store.path.open("a", encoding="utf-8") as handle:
        handle.write('{"key": "k2", "result": {"trunc')  # simulated crash mid-append
    with pytest.warns(RuntimeWarning, match="unparseable"):
        reopened = ResultStore(tmp_path / "store")
    assert len(reopened) == 1 and reopened.get("k1") == result
    # Appending after the crash must not glue the new record onto the
    # truncated line: the store terminates the half line first.
    reopened.put("k3", result, meta={"workload": "gcc"})
    with pytest.warns(RuntimeWarning):
        final = ResultStore(tmp_path / "store")
    assert len(final) == 2 and final.get("k3") == result


def test_results_persist_per_cell_not_per_batch(tmp_path):
    store = ResultStore(tmp_path / "store")
    spec = tiny_spec(schemes=["banshee", "nocache"], workloads=["gcc"])

    def explode_after_first(done, total, outcome):
        raise RuntimeError("interrupted mid-campaign")

    with pytest.raises(RuntimeError):
        run_campaign(spec, store=store, progress=explode_after_first)
    # The first completed cell was persisted before the interruption...
    reopened = ResultStore(tmp_path / "store")
    assert len(reopened) == 1
    # ... so the resumed campaign only simulates the remainder.
    report = run_campaign(spec, store=reopened)
    assert report.counts() == {"total": 2, "simulated": 1, "from_store": 1, "errors": 0}


def test_results_mapping_rejects_ambiguous_labels():
    spec = CampaignSpec(
        name="ambiguous",
        grids=[SweepGrid(schemes=["banshee"], workloads=["gcc"],
                         sampling_coefficients=[1.0, 0.01])],
        **RUN,
    )
    report = run_campaign(spec)
    assert report.total == 2
    with pytest.raises(ValueError, match="distinct"):
        report.results()


def test_num_cores_defaults_to_preset_native_count():
    assert tiny_spec(num_cores=None).cells()[0].config.num_cores == 2
    scaled = tiny_spec(num_cores=None, preset="scaled", records_per_core=600)
    assert scaled.cells()[0].config.num_cores == 4
    paper = tiny_spec(num_cores=None, preset="paper", records_per_core=600)
    assert paper.cells()[0].config.num_cores == 16
    paper4 = tiny_spec(num_cores=4, preset="paper", records_per_core=600)
    assert paper4.cells()[0].config.num_cores == 4


def test_duplicate_key_cells_simulate_once():
    # ways=4 equals the tiny preset's default, so both sweep points expand
    # to the same content key; only one simulation should run.
    spec = CampaignSpec(
        name="dup",
        grids=[SweepGrid(schemes=[("ways-4", "banshee", {"ways": 4}), ("default", "banshee", {})],
                         workloads=["gcc"])],
        **RUN,
    )
    report = run_campaign(spec)
    assert report.total == 2
    assert len(report.simulated) == 1 and len(report.skipped) == 1
    results = list(report.results().values())
    assert results[0].identity_dict() == results[1].identity_dict()


def test_figure_write_through_records_meta(tmp_path):
    store = ResultStore(tmp_path / "store")
    cache = ResultCache(store=store)
    run_simulation(SystemConfig.tiny(), workload_name="gcc", records_per_core=300,
                   seed=3, cache=cache)
    record = store.get_record(store.keys()[0])
    assert record["meta"]["workload"] == "gcc"
    assert record["meta"]["seed"] == 3
    assert record["meta"]["scheme"] == "banshee"


def test_readonly_store_open_rejects_missing_directory(tmp_path):
    with pytest.raises(ValueError, match="no result store"):
        ResultStore(tmp_path / "typo", create=False)
    code, out = run_cli("status", "--store", str(tmp_path / "typo"))
    assert code == 2
    assert not (tmp_path / "typo").exists()


def test_parallel_matches_serial_bit_identically():
    spec = tiny_spec(schemes=["banshee", "alloy"], workloads=["gcc", "mcf"])
    cells = spec.cells()
    serial = SerialExecutor().run(cells)
    parallel = ParallelExecutor(workers=4).run(cells)
    assert len(serial) == len(parallel) == 4
    for s, p in zip(serial, parallel):
        assert s.ok and p.ok
        assert s.result.identity_dict() == p.result.identity_dict()


def test_traces_stable_across_interpreter_hash_seeds():
    # The store serves results to future processes, so traces must not
    # depend on PYTHONHASHSEED (regression: workload RNGs were seeded with
    # the process-randomised hash()).
    import os
    import pathlib
    import subprocess
    import sys

    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    code = (
        "from repro.experiments.runner import run_simulation\n"
        "from repro.sim.config import SystemConfig\n"
        "r = run_simulation(SystemConfig.tiny(), workload_name='gcc', records_per_core=300)\n"
        "print(repr(r.cycles), r.dram_cache_misses)\n"
    )
    outputs = {
        subprocess.check_output(
            [sys.executable, "-c", code],
            env={**os.environ, "PYTHONHASHSEED": hash_seed, "PYTHONPATH": src},
        )
        for hash_seed in ("1", "2")
    }
    assert len(outputs) == 1


def test_spawn_parallel_matches_serial():
    spec = tiny_spec(workloads=["gcc"], records_per_core=300)
    cells = spec.cells()
    serial = SerialExecutor().run(cells)
    spawned = ParallelExecutor(workers=2, mp_start_method="spawn").run(cells)
    assert serial[0].result.identity_dict() == spawned[0].result.identity_dict()


def test_executor_captures_per_cell_errors():
    spec = tiny_spec(workloads=["gcc"])
    cell = spec.cells()[0]
    cell.workload = "no-such-workload"
    outcomes = SerialExecutor().run([cell])
    assert not outcomes[0].ok
    assert "no-such-workload" in outcomes[0].error


def test_run_matrix_reads_through_store(tmp_path):
    from repro.experiments.runner import run_matrix

    store = ResultStore(tmp_path / "store")
    schemes = [("Banshee", SystemConfig.tiny("banshee"))]
    first = run_matrix(schemes, ["gcc"], records_per_core=400, store=store)
    assert len(store) == 1
    reopened = ResultStore(tmp_path / "store")
    second = run_matrix(schemes, ["gcc"], records_per_core=400, store=reopened)
    assert first[("gcc", "Banshee")] == second[("gcc", "Banshee")]


# ----------------------------------------------------------------- figures read the store


def test_figure_rebuilds_from_campaign_store(tmp_path):
    store = ResultStore(tmp_path / "store")
    records, cores = 600, 2
    spec = CampaignSpec(
        name="fig4",
        grids=[SweepGrid(schemes=["nocache", "banshee"], workloads=["gcc"])],
        records_per_core=records,
        num_cores=cores,
        preset="scaled",
    )
    report = run_campaign(spec, store=store)
    assert len(report.simulated) == 2

    cache = ResultCache(store=store)
    figure = figure4_speedup(workloads=["gcc"], records_per_core=records, num_cores=cores,
                             cache=cache, schemes=[("Banshee", "banshee", {})])
    assert cache.store_hits == 2  # baseline + banshee both came from disk
    assert figure["rows"][0]["speedup"] > 0


# ----------------------------------------------------------------- CLI


def run_cli(*argv):
    import io

    stream = io.StringIO()
    code = cli_main(list(argv), stream=stream)
    return code, stream.getvalue()


def test_cli_run_status_export(tmp_path):
    store_dir = str(tmp_path / "store")
    argv = ("run", "--store", store_dir, "--schemes", "banshee", "--workloads", "gcc",
            "--records", "500", "--cores", "2", "--preset", "tiny", "--quiet")
    code, out = run_cli(*argv)
    assert code == 0 and "1 simulated" in out

    code, out = run_cli(*argv)
    assert code == 0 and "0 simulated" in out and "1 from store" in out

    code, out = run_cli("status", "--store", store_dir)
    assert code == 0 and "cells: 1" in out

    csv_path = tmp_path / "out.csv"
    code, out = run_cli("export", "--store", store_dir, "--format", "csv",
                        "--output", str(csv_path))
    assert code == 0
    lines = csv_path.read_text().strip().splitlines()
    assert len(lines) == 2 and lines[0].startswith("label,scheme,workload,seed")

    code, out = run_cli("export", "--store", store_dir, "--format", "json")
    assert code == 0 and json.loads(out)[0]["workload"] == "gcc"


def test_cli_spec_file_and_status_pending(tmp_path):
    spec = tiny_spec(name="from-file", schemes=["banshee", "nocache"], workloads=["gcc"])
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec.to_dict()))
    store_dir = str(tmp_path / "store")

    code, out = run_cli("run", "--store", store_dir, "--spec", str(spec_path),
                        "--workloads", "gcc", "--quiet")
    assert code == 0 and "campaign 'from-file': 2 cells" in out

    code, out = run_cli("status", "--store", store_dir, "--spec", str(spec_path))
    assert code == 0 and "2 cells, 0 pending" in out


def test_export_helpers_return_text(tmp_path):
    store = ResultStore(tmp_path / "store")
    run_campaign(tiny_spec(), store=store)
    assert export_csv(store).startswith("label,")
    assert json.loads(export_json(store))[0]["scheme"] == "banshee"
