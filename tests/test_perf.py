"""Tests for the ``repro.perf`` benchmark harness."""

import json

import pytest

from repro.perf.cli import main
from repro.perf.harness import run_benchmark, run_cell


def test_run_cell_counts_all_records():
    cell = run_cell("nocache", "gcc", records_per_core=50, num_cores=2,
                    scale=0.05, repeats=1, preset="tiny")
    assert cell.records == 100
    assert cell.best_seconds > 0
    assert cell.records_per_sec == pytest.approx(cell.records / cell.best_seconds)
    assert cell.instructions > 0


def test_run_cell_rejects_bad_repeats():
    with pytest.raises(ValueError, match="repeats"):
        run_cell("nocache", "gcc", records_per_core=10, repeats=0, preset="tiny")
    with pytest.raises(ValueError, match="preset"):
        run_cell("nocache", "gcc", records_per_core=10, preset="bogus")


def test_run_benchmark_payload_schema():
    payload = run_benchmark(
        schemes=["nocache", "banshee"],
        workloads=["gcc"],
        records_per_core=50,
        num_cores=2,
        scale=0.05,
        repeats=1,
        preset="tiny",
    )
    assert payload["name"] == "hotpath"
    assert [cell["scheme"] for cell in payload["cells"]] == ["nocache", "banshee"]
    aggregate = payload["aggregate"]
    assert aggregate["total_records"] == 200
    assert aggregate["geomean_records_per_sec"] > 0
    assert aggregate["min_records_per_sec"] <= aggregate["geomean_records_per_sec"]
    # The payload must be JSON-serialisable as-is.
    json.dumps(payload)


def test_cli_smoke_writes_report(tmp_path, capsys):
    out = tmp_path / "bench.json"
    rc = main([
        "--smoke", "--preset", "tiny", "--scale", "0.05",
        "--schemes", "nocache", "--workloads", "gcc",
        "--output", str(out), "--quiet",
    ])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["params"]["repeats"] == 1
    assert payload["params"]["records_per_core"] <= 500
    assert len(payload["cells"]) == 1
    assert "geomean" in capsys.readouterr().out


def test_run_cell_records_engine_mode():
    scalar = run_cell("nocache", "gcc", records_per_core=50, num_cores=1,
                      scale=0.05, repeats=1, preset="tiny", engine_mode="scalar")
    batch = run_cell("nocache", "gcc", records_per_core=50, num_cores=1,
                     scale=0.05, repeats=1, preset="tiny", engine_mode="batch")
    assert scalar.engine_mode == "scalar"
    assert batch.engine_mode == "batch"
    assert scalar.to_dict()["engine_mode"] == "scalar"
    # Identical simulations: the two modes must report identical work.
    assert (scalar.records, scalar.instructions, scalar.cycles) == \
        (batch.records, batch.instructions, batch.cycles)


def test_run_cell_rejects_unknown_engine_mode():
    with pytest.raises(ValueError, match="engine mode"):
        run_cell("nocache", "gcc", records_per_core=10, repeats=1,
                 preset="tiny", engine_mode="turbo")


def test_run_benchmark_payload_records_engine_mode():
    payload = run_benchmark(
        schemes=["nocache"], workloads=["gcc"], records_per_core=50,
        num_cores=1, scale=0.05, repeats=1, preset="tiny", engine_mode="scalar",
    )
    assert payload["params"]["engine_mode"] == "scalar"
    assert payload["cells"][0]["engine_mode"] == "scalar"


# ------------------------------------------------------------------ comparison


def _payload(cells, **params):
    return {
        "name": "hotpath",
        "params": params,
        "cells": [
            {"scheme": scheme, "workload": workload,
             "records_per_sec": rps, "engine_mode": mode}
            for scheme, workload, rps, mode in cells
        ],
    }


def test_compare_payloads_ratios_and_noise_band():
    from repro.perf.compare import compare_payloads

    old = _payload([
        ("nocache", "gcc", 100000.0, "scalar"),
        ("banshee", "gcc", 50000.0, "scalar"),
        ("banshee", "mcf", 40000.0, "scalar"),
    ], engine_mode="scalar")
    new = _payload([
        ("nocache", "gcc", 200000.0, "batch"),   # 2.00x -> faster
        ("banshee", "gcc", 51000.0, "batch"),    # 1.02x -> inside the band
        ("banshee", "lsh", 90000.0, "batch"),    # unmatched
    ], engine_mode="batch")
    report = compare_payloads(old, new, noise=0.05)
    rows = {(row["scheme"], row["workload"]): row for row in report["rows"]}
    assert rows[("nocache", "gcc")]["flag"] == "faster"
    assert rows[("banshee", "gcc")]["flag"] == ""
    assert report["only_in_old"] == [("banshee", "mcf")]
    assert report["only_in_new"] == [("banshee", "lsh")]
    assert report["flagged"] == 1
    assert report["geomean_ratio"] == pytest.approx((2.0 * 1.02) ** 0.5)
    assert report["old_params"]["engine_mode"] == "scalar"


def test_compare_payloads_flags_regressions():
    from repro.perf.compare import compare_payloads

    old = _payload([("nocache", "gcc", 100000.0, "scalar")])
    new = _payload([("nocache", "gcc", 80000.0, "scalar")])
    report = compare_payloads(old, new, noise=0.05)
    assert report["rows"][0]["flag"] == "slower"
    assert report["geomean_ratio"] == pytest.approx(0.8)


def test_compare_payloads_requires_overlap():
    from repro.perf.compare import compare_payloads

    with pytest.raises(ValueError, match="nothing to compare"):
        compare_payloads(_payload([("a", "x", 1.0, "scalar")]),
                         _payload([("b", "y", 1.0, "scalar")]))
    with pytest.raises(ValueError, match="noise"):
        compare_payloads(_payload([("a", "x", 1.0, "scalar")]),
                         _payload([("a", "x", 1.0, "scalar")]), noise=-0.1)


def test_cli_compare_reports_ratio(tmp_path, capsys):
    import json as _json

    old_path = tmp_path / "old.json"
    new_path = tmp_path / "new.json"
    old_path.write_text(_json.dumps(_payload(
        [("nocache", "gcc", 100000.0, "scalar")], engine_mode="scalar")))
    new_path.write_text(_json.dumps(_payload(
        [("nocache", "gcc", 250000.0, "batch")], engine_mode="batch")))
    rc = main(["--compare", str(old_path), str(new_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "2.50x" in out
    assert "faster" in out
    assert "[scalar -> batch]" in out
    assert "geomean ratio 2.50x" in out


def test_cli_compare_rejects_non_payloads(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{}")
    rc = main(["--compare", str(bogus), str(bogus)])
    assert rc == 2
    assert "error:" in capsys.readouterr().err


def test_cli_engine_flag_is_recorded(tmp_path):
    import json as _json

    out = tmp_path / "bench.json"
    rc = main([
        "--smoke", "--preset", "tiny", "--scale", "0.05", "--cores", "1",
        "--schemes", "nocache", "--workloads", "gcc",
        "--engine", "scalar", "--output", str(out), "--quiet",
    ])
    assert rc == 0
    payload = _json.loads(out.read_text())
    assert payload["params"]["engine_mode"] == "scalar"
    assert payload["cells"][0]["engine_mode"] == "scalar"
