"""Tests for the ``repro.perf`` benchmark harness."""

import json

import pytest

from repro.perf.cli import main
from repro.perf.harness import run_benchmark, run_cell


def test_run_cell_counts_all_records():
    cell = run_cell("nocache", "gcc", records_per_core=50, num_cores=2,
                    scale=0.05, repeats=1, preset="tiny")
    assert cell.records == 100
    assert cell.best_seconds > 0
    assert cell.records_per_sec == pytest.approx(cell.records / cell.best_seconds)
    assert cell.instructions > 0


def test_run_cell_rejects_bad_repeats():
    with pytest.raises(ValueError, match="repeats"):
        run_cell("nocache", "gcc", records_per_core=10, repeats=0, preset="tiny")
    with pytest.raises(ValueError, match="preset"):
        run_cell("nocache", "gcc", records_per_core=10, preset="bogus")


def test_run_benchmark_payload_schema():
    payload = run_benchmark(
        schemes=["nocache", "banshee"],
        workloads=["gcc"],
        records_per_core=50,
        num_cores=2,
        scale=0.05,
        repeats=1,
        preset="tiny",
    )
    assert payload["name"] == "hotpath"
    assert [cell["scheme"] for cell in payload["cells"]] == ["nocache", "banshee"]
    aggregate = payload["aggregate"]
    assert aggregate["total_records"] == 200
    assert aggregate["geomean_records_per_sec"] > 0
    assert aggregate["min_records_per_sec"] <= aggregate["geomean_records_per_sec"]
    # The payload must be JSON-serialisable as-is.
    json.dumps(payload)


def test_cli_smoke_writes_report(tmp_path, capsys):
    out = tmp_path / "bench.json"
    rc = main([
        "--smoke", "--preset", "tiny", "--scale", "0.05",
        "--schemes", "nocache", "--workloads", "gcc",
        "--output", str(out), "--quiet",
    ])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["params"]["repeats"] == 1
    assert payload["params"]["records_per_core"] <= 500
    assert len(payload["cells"]) == 1
    assert "geomean" in capsys.readouterr().out
