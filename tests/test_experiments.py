"""Tests for the experiment harness (runner, cache, figure functions, reports)."""

import pytest

from repro.experiments.defaults import bench_config, bench_records_per_core, scale_in_package
from repro.experiments.figures import (
    figure4_speedup,
    figure7_replacement_policies,
    figure9_sampling,
    table1_behavior,
    table6_associativity,
)
from repro.experiments.report import format_table, rows_from_dicts
from repro.experiments.runner import ResultCache, run_matrix, run_simulation
from repro.sim.config import SystemConfig

TINY_RUN = dict(records_per_core=1200, num_cores=2)


def tiny_cfg(scheme, **overrides):
    return SystemConfig.tiny(scheme=scheme).with_scheme(scheme, **overrides) if overrides else SystemConfig.tiny(scheme=scheme)


def test_run_simulation_requires_exactly_one_workload_argument():
    config = SystemConfig.tiny()
    with pytest.raises(ValueError):
        run_simulation(config, records_per_core=100)
    with pytest.raises(ValueError):
        run_simulation(config, workload_name="gcc", workload=object(), records_per_core=100)


def test_result_cache_hits_on_identical_runs():
    cache = ResultCache()
    config = SystemConfig.tiny()
    first = run_simulation(config, workload_name="gcc", records_per_core=500, scale=0.05, cache=cache)
    second = run_simulation(config, workload_name="gcc", records_per_core=500, scale=0.05, cache=cache)
    assert first is second
    assert cache.hits == 1 and len(cache) == 1


def test_run_matrix_produces_all_cells():
    cache = ResultCache()
    schemes = [("NoCache", SystemConfig.tiny("nocache")), ("Banshee", SystemConfig.tiny("banshee"))]
    results = run_matrix(schemes, ["gcc"], records_per_core=500, scale=0.05, cache=cache)
    assert set(results.keys()) == {("gcc", "NoCache"), ("gcc", "Banshee")}


def test_bench_config_and_records_helpers():
    config = bench_config("alloy", num_cores=2, alloy_replacement_probability=0.1)
    assert config.dram_cache.scheme == "alloy"
    assert config.num_cores == 2
    assert bench_records_per_core(0.5) >= 2000


def test_scale_in_package_multiplies_existing_scaling():
    config = bench_config("banshee", num_cores=2)
    scaled = scale_in_package(config, latency_scale=0.5, bandwidth_scale=2.0)
    assert scaled.in_package_dram.latency_scale == pytest.approx(config.in_package_dram.latency_scale * 0.5)
    assert scaled.in_package_dram.bandwidth_scale == pytest.approx(config.in_package_dram.bandwidth_scale * 2.0)


def test_format_table_alignment_and_rows():
    rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
    table = format_table(["a", "b"], rows_from_dicts(rows, ["a", "b"]), title="demo")
    lines = table.splitlines()
    assert lines[0] == "demo"
    assert "a" in lines[1] and "b" in lines[1]
    # title + header + separator + one line per row
    assert len(lines) == 5
    assert lines[-1].startswith("10")


def test_figure4_small_matrix():
    report = figure4_speedup(workloads=["gcc"], **TINY_RUN, schemes=[("Banshee", "banshee", {})])
    assert report["rows"][0]["workload"] == "gcc"
    assert "Banshee" in report["summary"]["geomean_speedup"]
    assert report["rows"][0]["speedup"] > 0


def test_figure7_policies_present():
    report = figure7_replacement_policies(workloads=["gcc"], **TINY_RUN)
    policies = [row["policy"] for row in report["rows"]]
    assert policies == ["Banshee LRU", "Banshee FBR no sample", "Banshee", "TDC"]


def test_figure9_counter_traffic_decreases_with_sampling():
    report = figure9_sampling(workloads=["gcc"], coefficients=(1.0, 0.01), **TINY_RUN)
    rows = {row["sampling_coefficient"]: row for row in report["rows"]}
    assert rows[1.0]["Counter"] >= rows[0.01]["Counter"]


def test_table6_reports_each_way_count():
    report = table6_associativity(workloads=["gcc"], ways=(1, 2), **TINY_RUN)
    assert [row["ways"] for row in report["rows"]] == [1, 2]
    for row in report["rows"]:
        assert 0.0 <= row["miss_rate"] <= 1.0


def test_table1_lists_all_schemes():
    report = table1_behavior(workload="gcc", **TINY_RUN)
    schemes = [row["scheme"] for row in report["rows"]]
    assert schemes == ["Unison", "Alloy", "TDC", "HMA", "Banshee"]
    banshee = report["rows"][-1]
    unison = report["rows"][0]
    # Banshee's common-path tag traffic must be below Unison's (Table 1).
    assert banshee["tag_bpi"] <= unison["tag_bpi"]
