"""Unit tests for repro.util.rng."""

import pytest

from repro.util.rng import DeterministicRng


def test_same_seed_same_stream():
    a = DeterministicRng(42)
    b = DeterministicRng(42)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_fork_streams_are_independent_and_deterministic():
    a = DeterministicRng(42).fork(1)
    b = DeterministicRng(42).fork(2)
    a2 = DeterministicRng(42).fork(1)
    assert a.random() == a2.random()
    assert a.random() != b.random()


def test_chance_extremes():
    rng = DeterministicRng(1)
    assert not rng.chance(0.0)
    assert rng.chance(1.0)


def test_randint_bounds():
    rng = DeterministicRng(3)
    values = [rng.randint(0, 5) for _ in range(200)]
    assert min(values) >= 0
    assert max(values) < 5


def test_choice_rejects_empty():
    rng = DeterministicRng(3)
    with pytest.raises(ValueError):
        rng.choice([])


def test_choice_returns_member():
    rng = DeterministicRng(3)
    options = ["a", "b", "c"]
    assert rng.choice(options) in options
