"""Unit tests for repro.util.bits."""

import pytest

from repro.util.bits import align_down, align_up, is_power_of_two, log2_exact


def test_is_power_of_two_accepts_powers():
    assert is_power_of_two(1)
    assert is_power_of_two(2)
    assert is_power_of_two(4096)
    assert is_power_of_two(1 << 40)


def test_is_power_of_two_rejects_non_powers():
    assert not is_power_of_two(0)
    assert not is_power_of_two(-4)
    assert not is_power_of_two(3)
    assert not is_power_of_two(4095)


def test_log2_exact_values():
    assert log2_exact(1) == 0
    assert log2_exact(64) == 6
    assert log2_exact(4096) == 12


def test_log2_exact_rejects_non_power():
    with pytest.raises(ValueError):
        log2_exact(96)


def test_align_down_and_up():
    assert align_down(4100, 4096) == 4096
    assert align_up(4100, 4096) == 8192
    assert align_down(4096, 4096) == 4096
    assert align_up(4096, 4096) == 4096


def test_align_rejects_bad_alignment():
    with pytest.raises(ValueError):
        align_down(100, 3)
    with pytest.raises(ValueError):
        align_up(100, 0)
