"""Unit tests for Banshee's tag buffer."""

import pytest

from repro.core.tag_buffer import TagBuffer, TagBufferFullError


def test_insert_and_lookup():
    buffer = TagBuffer(num_entries=64, num_ways=4)
    buffer.insert(page=10, cached=True, way=2, remap=True)
    entry = buffer.lookup(10)
    assert entry is not None
    assert entry.cached and entry.way == 2 and entry.remap
    assert buffer.lookup(11) is None


def test_update_in_place_preserves_remap():
    buffer = TagBuffer(num_entries=64, num_ways=4)
    buffer.insert(5, cached=True, way=1, remap=True)
    buffer.insert(5, cached=False, way=0, remap=False)
    entry = buffer.lookup(5)
    assert not entry.cached
    assert entry.remap, "a newer clean insert must not clear an unflushed remap"


def test_clean_entries_are_evictable_remap_entries_are_not():
    buffer = TagBuffer(num_entries=8, num_ways=2)  # 4 sets
    set_stride = buffer.num_sets
    # Fill one set with a clean entry and a remap entry.
    buffer.insert(0, cached=True, way=0, remap=False)
    buffer.insert(set_stride, cached=True, way=1, remap=True)
    # Inserting another remap entry evicts the clean one, not the remap one.
    buffer.insert(2 * set_stride, cached=True, way=2, remap=True)
    assert buffer.lookup(set_stride) is not None
    assert buffer.lookup(2 * set_stride) is not None
    assert buffer.lookup(0) is None


def test_full_set_of_remaps_raises():
    buffer = TagBuffer(num_entries=8, num_ways=2)
    stride = buffer.num_sets
    buffer.insert(0, True, 0, remap=True)
    buffer.insert(stride, True, 1, remap=True)
    with pytest.raises(TagBufferFullError):
        buffer.insert(2 * stride, True, 2, remap=True)
    # A clean insert into the same full set is silently dropped.
    buffer.insert(3 * stride, True, 3, remap=False)
    assert buffer.lookup(3 * stride) is None


def test_remap_entries_and_clear():
    buffer = TagBuffer(num_entries=64, num_ways=4)
    buffer.insert(1, True, 0, remap=True)
    buffer.insert(2, False, 0, remap=True)
    buffer.insert(3, True, 1, remap=False)
    updates = dict((page, (cached, way)) for page, cached, way in buffer.remap_entries())
    assert updates == {1: (True, 0), 2: (False, 0)}
    cleared = buffer.clear_remap_bits()
    assert cleared == 2
    assert buffer.remap_count == 0
    # Entries stay resident to serve dirty-eviction lookups.
    assert buffer.lookup(1) is not None


def test_remap_fraction():
    buffer = TagBuffer(num_entries=64, num_ways=8)
    for page in range(16):
        buffer.insert(page, True, 0, remap=True)
    assert buffer.remap_fraction == pytest.approx(16 / 64)


def test_validation():
    with pytest.raises(ValueError):
        TagBuffer(num_entries=10, num_ways=3)
    with pytest.raises(ValueError):
        TagBuffer(num_entries=0, num_ways=1)


def test_contains():
    buffer = TagBuffer(num_entries=64, num_ways=4)
    buffer.insert(42, True, 0, remap=False)
    assert 42 in buffer
    assert 43 not in buffer
