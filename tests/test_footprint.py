"""Unit tests for the footprint predictor used by Unison and TDC."""

import pytest

from repro.dramcache.footprint import FootprintPredictor


def test_cold_predictor_predicts_full_page():
    predictor = FootprintPredictor(page_size=4096, granularity_lines=4)
    assert predictor.predicted_fill_bytes() == 4096


def test_average_tracks_observed_footprints():
    predictor = FootprintPredictor(page_size=4096, granularity_lines=4)
    predictor.on_fill(1)
    for line in range(6):
        predictor.on_access(1, 1 * 4096 + line * 64)
    predictor.on_evict(1)
    # 6 touched lines round up to 8 at 4-line granularity -> 512 bytes.
    assert predictor.predicted_fill_bytes() == 8 * 64


def test_prediction_never_exceeds_page():
    predictor = FootprintPredictor(page_size=4096, granularity_lines=4)
    predictor.on_fill(2)
    for line in range(64):
        predictor.on_access(2, 2 * 4096 + line * 64)
    predictor.on_evict(2)
    assert predictor.predicted_fill_bytes() == 4096


def test_writeback_bytes_rounds_to_granularity():
    predictor = FootprintPredictor(page_size=4096, granularity_lines=4)
    predictor.on_fill(3)
    predictor.on_access(3, 3 * 4096)
    assert predictor.writeback_bytes(3) == 4 * 64


def test_untracked_page_access_is_ignored():
    predictor = FootprintPredictor(page_size=4096)
    predictor.on_access(99, 99 * 4096)
    assert predictor.touched_lines(99) == 0


def test_evict_returns_touched_lines():
    predictor = FootprintPredictor(page_size=4096)
    predictor.on_fill(5)
    predictor.on_access(5, 5 * 4096)
    predictor.on_access(5, 5 * 4096 + 64)
    assert predictor.on_evict(5) == 2


def test_validation():
    with pytest.raises(ValueError):
        FootprintPredictor(page_size=100)
    with pytest.raises(ValueError):
        FootprintPredictor(page_size=4096, granularity_lines=0)
