"""Property-based tests (hypothesis) for core data structures and invariants."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.sram_cache import SramCache
from repro.core.frequency import FrequencySetMetadata
from repro.core.tag_buffer import TagBuffer, TagBufferFullError
from repro.dram.channel import DramChannel
from repro.dram.timing import DramTiming
from repro.dramcache.footprint import FootprintPredictor
from repro.sim.config import CacheLevelConfig, DramTimingConfig
from repro.sim.stats import TrafficCategory, TrafficStats


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 20), st.booleans()), max_size=400))
def test_sram_cache_occupancy_and_counters(accesses):
    cache = SramCache("prop", CacheLevelConfig(size_bytes=4096, ways=4))
    for addr, is_write in accesses:
        cache.access(addr, is_write)
    assert cache.occupancy <= cache.capacity_lines
    assert cache.hits + cache.misses == len(accesses)
    # Every resident line must map to the set it is stored in.
    for line_addr in cache.resident_lines():
        assert cache.lookup(line_addr)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=512), st.booleans(), st.booleans()), max_size=300))
def test_tag_buffer_remap_entries_never_lost(operations):
    buffer = TagBuffer(num_entries=32, num_ways=4)
    expected_remaps = {}
    for page, cached, remap in operations:
        try:
            buffer.insert(page, cached, 0, remap)
        except TagBufferFullError:
            continue
        if remap:
            expected_remaps[page] = cached
        elif page in expected_remaps:
            # A clean insert over an existing remap keeps the remap bit but
            # may update the mapping value.
            expected_remaps[page] = cached
    recorded = {page: cached for page, cached, _way in buffer.remap_entries()}
    assert recorded == expected_remaps
    assert buffer.occupancy <= buffer.num_entries


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=500))
def test_frequency_counters_stay_in_range(pages):
    meta = FrequencySetMetadata(num_ways=4, num_candidates=5, counter_max=31)
    for page in pages:
        way = meta.find_cached(page)
        if way is not None:
            meta.increment(meta.cached[way])
        else:
            index = meta.find_candidate(page)
            if index is not None:
                meta.increment(meta.candidates[index])
            else:
                meta.install_candidate(page % 5, page, count=1)
    meta.check_invariants()
    for slot in meta.cached + meta.candidates:
        assert 0 <= slot.count <= 31


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=1 << 16), st.integers(min_value=1, max_value=4096), st.booleans()),
        max_size=200,
    )
)
def test_channel_time_never_goes_backwards(requests):
    channel = DramChannel(0, DramTiming(DramTimingConfig(), 2.7))
    now = 0
    previous_busy = 0
    for advance, num_bytes, background in requests:
        now += advance
        outcome = channel.access(now, num_bytes, background=background)
        assert outcome.latency >= 0
        assert outcome.transfer_cycles >= 1
        assert channel.busy_until >= 0
        assert channel.total_busy_cycles >= previous_busy
        previous_busy = channel.total_busy_cycles


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
def test_footprint_prediction_bounded_by_page(lines):
    predictor = FootprintPredictor(page_size=4096, granularity_lines=4)
    predictor.on_fill(0)
    for line in lines:
        predictor.on_access(0, line * 64)
    assert 64 <= predictor.writeback_bytes(0) <= 4096
    predictor.on_evict(0)
    assert 256 <= predictor.predicted_fill_bytes() <= 4096


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(list(TrafficCategory)), st.integers(min_value=0, max_value=8192)), max_size=300))
def test_traffic_totals_are_consistent(records):
    traffic = TrafficStats("prop")
    for category, num_bytes in records:
        traffic.record(category, num_bytes)
    assert traffic.total_bytes == sum(num_bytes for _category, num_bytes in records)
    assert traffic.total_bytes == sum(traffic.breakdown().values())


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1, max_size=300), st.integers(min_value=1, max_value=8))
def test_lru_cache_matches_reference_model(addresses, ways):
    """The SRAM cache's LRU behaviour must match a simple reference model."""
    config = CacheLevelConfig(size_bytes=ways * 64, ways=ways)  # a single set
    cache = SramCache("ref", config)
    reference = OrderedDict()
    for addr in addresses:
        line = addr // 64
        hit = cache.access(addr, False).hit
        ref_hit = line in reference
        assert hit == ref_hit
        if ref_hit:
            reference.move_to_end(line)
        else:
            if len(reference) >= ways:
                reference.popitem(last=False)
            reference[line] = True
