"""Integration tests: full system simulations on tiny configurations."""

import pytest

from repro.memctrl.controller import MemoryControllerSet
from repro.sim.config import SystemConfig
from repro.sim.engine import SimulationEngine
from repro.sim.system import System
from repro.workloads.registry import get_workload


def run(scheme, workload="pagerank", records=1500, warmup=0, cores=2, seed=1, **overrides):
    config = SystemConfig.tiny(scheme=scheme, num_cores=cores, seed=seed)
    if overrides:
        config = config.with_scheme(scheme, **overrides)
    workload_obj = get_workload(workload, cores, scale=0.05, seed=seed)
    system = System(config, workload_obj)
    engine = SimulationEngine(system)
    return engine.run(records, warmup_records_per_core=warmup), system


@pytest.mark.parametrize("scheme", ["nocache", "cacheonly", "alloy", "unison", "tdc", "hma", "banshee"])
def test_every_scheme_runs_end_to_end(scheme):
    results, _system = run(scheme)
    assert results.instructions > 0
    assert results.cycles > 0
    assert results.memory_accesses == 2 * 1500
    if scheme == "nocache":
        assert results.total_in_bytes_per_instruction == 0.0
    if scheme == "cacheonly":
        assert results.total_off_bytes_per_instruction == 0.0
        assert results.dram_cache_miss_rate == 0.0


def test_identical_instruction_counts_across_schemes():
    counts = set()
    for scheme in ("nocache", "banshee", "alloy"):
        results, _system = run(scheme, records=1000)
        counts.add(results.instructions)
    assert len(counts) == 1, "all schemes must execute identical traces"


def test_simulation_is_deterministic():
    a, _ = run("banshee", records=1000)
    b, _ = run("banshee", records=1000)
    assert a.cycles == b.cycles
    assert a.in_traffic_bytes == b.in_traffic_bytes
    assert a.off_traffic_bytes == b.off_traffic_bytes


def test_warmup_reduces_measured_instructions():
    full, _ = run("banshee", records=1500, warmup=0)
    measured, _ = run("banshee", records=1500, warmup=750)
    assert measured.instructions < full.instructions
    assert measured.cycles < full.cycles


def test_banshee_tag_buffer_consistency_invariant():
    _results, system = run("banshee", records=2500, workload="mcf")
    # Every demand access must have seen a consistent mapping (stale mappings
    # would mean the lazy-coherence invariant was violated).
    assert system.scheme.stats.get("mapping_stale") == 0
    # After finalize, no un-flushed remaps may remain.
    assert all(buffer.remap_count == 0 for buffer in system.scheme.tag_buffers)


def test_banshee_pte_updates_reach_page_table():
    results, system = run("banshee", records=2500, workload="mcf", sampling_coefficient=1.0)
    if results.scheme_stats.get("tag_buffer_flushes", 0) > 0:
        assert system.page_table.update_batches > 0
        assert any(tlb.invalidations > 0 for tlb in system.tlbs)


def test_banshee_residency_never_exceeds_capacity():
    _results, system = run("banshee", records=2500, workload="mcf", sampling_coefficient=1.0)
    partition = system.scheme.partition_for(4096)
    assert partition.occupancy() <= partition.capacity_pages


def test_dram_cache_schemes_reduce_off_package_traffic_vs_nocache():
    baseline, _ = run("nocache", records=2500, workload="gcc")
    cached, _ = run("cacheonly", records=2500, workload="gcc")
    assert cached.total_off_bytes_per_instruction < baseline.total_off_bytes_per_instruction


def test_memory_controller_routing_is_page_granular():
    config = SystemConfig.tiny()
    system = System(config, get_workload("gcc", config.num_cores, scale=0.05))
    controllers = system.controllers
    assert isinstance(controllers, MemoryControllerSet)
    assert controllers.controller_for(0, 4096) == controllers.controller_for(4095, 4096)
    assert controllers.controller_for(0, 4096) != controllers.controller_for(4096, 4096)


def test_engine_validates_arguments():
    config = SystemConfig.tiny()
    system = System(config, get_workload("gcc", config.num_cores, scale=0.05))
    engine = SimulationEngine(system)
    with pytest.raises(ValueError):
        engine.run(0)
    with pytest.raises(ValueError):
        engine.run(10, warmup_records_per_core=20)


def test_hma_periodic_remap_stalls_cores():
    results, system = run("hma", records=3000, workload="gcc", hma_interval_ms=0.005)
    if results.scheme_stats.get("remap_intervals", 0) > 0 and results.scheme_stats.get("pages_migrated", 0) > 0:
        assert results.os_stall_cycles > 0
