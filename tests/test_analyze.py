"""Tests for repro.analyze: each rule on crafted good/bad fixtures, the
suppression and baseline semantics, the CLI contract, and a self-check that
the shipped source tree is clean against the committed baseline."""

import dataclasses
import json
import textwrap
from pathlib import Path

import pytest

import repro.analyze
from repro.analyze import DEFAULT_CONFIG, run_analysis
from repro.analyze.baseline import apply_baseline, load_baseline, write_baseline
from repro.analyze.cli import main

REPO_ROOT = Path(repro.analyze.__file__).resolve().parents[3]


def analyze(tmp_path, source, rules, config=None, filename="fixture.py"):
    path = tmp_path / filename
    path.write_text(textwrap.dedent(source))
    return run_analysis([path], rules=rules, config=config)


# --------------------------------------------------------------------- hotpath-alloc


def test_hotpath_alloc_fires_on_allocating_hot_function(tmp_path):
    findings = analyze(
        tmp_path,
        """
        def process(record):  # repro: hotpath
            return [record.addr]
        """,
        rules=["hotpath-alloc"],
    )
    assert [f.rule for f in findings] == ["hotpath-alloc"]
    assert "list display" in findings[0].message
    assert findings[0].symbol == "fixture.process"


def test_hotpath_alloc_clean_on_mutating_hot_function(tmp_path):
    findings = analyze(
        tmp_path,
        """
        def process(state, record):  # repro: hotpath
            state.hits += 1
            state.latency = record.latency * 2
            return state.latency
        """,
        rules=["hotpath-alloc"],
    )
    assert findings == []


def test_hotpath_alloc_follows_call_graph(tmp_path):
    findings = analyze(
        tmp_path,
        """
        def helper(record):
            return {"addr": record.addr}

        def process(record):  # repro: hotpath
            return helper(record)
        """,
        rules=["hotpath-alloc"],
    )
    assert len(findings) == 1
    assert findings[0].symbol == "fixture.helper"
    assert "dict display" in findings[0].message


def test_hotpath_alloc_marker_scopes_to_loop_body(tmp_path):
    findings = analyze(
        tmp_path,
        """
        def run(items):
            setup = [1, 2, 3]
            total = 0
            for item in items:  # repro: hotpath
                junk = [item]
                total += item
            return total
        """,
        rules=["hotpath-alloc"],
    )
    # The prologue list is cold; only the loop-body allocation fires.
    assert len(findings) == 1
    assert "junk" not in findings[0].message  # message names the construct
    assert findings[0].line == 6


def test_hotpath_alloc_exempts_raise_paths(tmp_path):
    findings = analyze(
        tmp_path,
        """
        def process(record):  # repro: hotpath
            if record.addr < 0:
                raise ValueError(f"negative address {record.addr}")
            return record.addr
        """,
        rules=["hotpath-alloc"],
    )
    assert findings == []


def test_hotpath_alloc_flags_class_construction(tmp_path):
    findings = analyze(
        tmp_path,
        """
        class Outcome:
            __slots__ = ("addr",)

            def __init__(self, addr):
                self.addr = addr

        def process(record):  # repro: hotpath
            return Outcome(record.addr)
        """,
        rules=["hotpath-alloc"],
    )
    assert len(findings) == 1
    assert "constructs Outcome" in findings[0].message


# ---------------------------------------------------------------------- hotpath-attr


def test_hotpath_attr_flags_attribute_created_outside_init(tmp_path):
    findings = analyze(
        tmp_path,
        """
        class Counter:
            def __init__(self):
                self.count = 0

            def bump(self):  # repro: hotpath
                self.count += 1
                self.extra = 1
        """,
        rules=["hotpath-attr"],
    )
    assert [f.rule for f in findings] == ["hotpath-attr"]
    assert "self.extra" in findings[0].message


def test_hotpath_attr_clean_when_attributes_predeclared(tmp_path):
    findings = analyze(
        tmp_path,
        """
        class Counter:
            def __init__(self):
                self.count = 0
                self.extra = 0

            def bump(self):  # repro: hotpath
                self.count += 1
                self.extra = 1
        """,
        rules=["hotpath-attr"],
    )
    assert findings == []


# --------------------------------------------------------------------- hotpath-slots


def test_hotpath_slots_flags_slotless_hot_class(tmp_path):
    findings = analyze(
        tmp_path,
        """
        class Rec:
            def __init__(self, addr):
                self.addr = addr

        def process(addr):  # repro: hotpath
            return Rec(addr)
        """,
        rules=["hotpath-slots"],
    )
    assert [f.rule for f in findings] == ["hotpath-slots"]
    assert "Rec" in findings[0].message


def test_hotpath_slots_clean_with_slots_declared(tmp_path):
    findings = analyze(
        tmp_path,
        """
        class Rec:
            __slots__ = ("addr",)

            def __init__(self, addr):
                self.addr = addr

        def process(addr):  # repro: hotpath
            return Rec(addr)
        """,
        rules=["hotpath-slots"],
    )
    assert findings == []


# ---------------------------------------------------------------------- determinism

#: Scope the determinism rule at the fixture's bare-stem module name.
_SIM_CONFIG = dataclasses.replace(DEFAULT_CONFIG, determinism_packages=("simfix",))


def test_determinism_flags_banned_constructs(tmp_path):
    findings = analyze(
        tmp_path,
        """
        import glob
        import random
        import time

        import numpy as np

        def wall():
            return time.time()

        def draw():
            return random.random()

        def unseeded():
            return np.random.default_rng()

        def legacy():
            return np.random.rand()

        def hash_order(values):
            for item in set(values):
                yield item

        def listing(pattern):
            return glob.glob(pattern)
        """,
        rules=["determinism"],
        config=_SIM_CONFIG,
        filename="simfix.py",
    )
    messages = " ".join(f.message for f in findings)
    assert len(findings) == 6
    assert all(f.rule == "determinism" for f in findings)
    assert "wall clock" in messages
    assert "process-global stdlib RNG" in messages
    assert "entropy-seeded" in messages
    assert "legacy global RNG" in messages
    assert "hash order" in messages
    assert "unspecified order" in messages


def test_determinism_clean_on_seeded_and_sorted(tmp_path):
    findings = analyze(
        tmp_path,
        """
        import glob

        import numpy as np

        def seeded(seed):
            return np.random.default_rng(seed)

        def listing(pattern):
            return sorted(glob.glob(pattern))

        def ordered(values):
            for item in sorted(set(values)):
                yield item
        """,
        rules=["determinism"],
        config=_SIM_CONFIG,
        filename="simfix.py",
    )
    assert findings == []


def test_determinism_out_of_scope_module_is_exempt(tmp_path):
    findings = analyze(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()
        """,
        rules=["determinism"],
        config=_SIM_CONFIG,
        filename="obsfix.py",
    )
    assert findings == []


# ------------------------------------------------------------------- serde-symmetry


def test_serde_symmetry_flags_asymmetric_pairs(tmp_path):
    findings = analyze(
        tmp_path,
        """
        class Snapshot:
            def to_dict(self):
                return {"hits": self.hits, "misses": self.misses}

            @classmethod
            def from_dict(cls, data):
                obj = cls()
                obj.hits = data["hits"]
                obj.total = data["total"]
                return obj
        """,
        rules=["serde-symmetry"],
    )
    messages = sorted(f.message for f in findings)
    assert len(findings) == 2
    assert "writes key 'misses'" in messages[1]
    assert "consumes key 'total'" in messages[0]


def test_serde_symmetry_clean_on_matched_pair(tmp_path):
    findings = analyze(
        tmp_path,
        """
        class Snapshot:
            def to_dict(self):
                return {"hits": self.hits, "misses": self.misses}

            @classmethod
            def from_dict(cls, data):
                obj = cls()
                obj.hits = data["hits"]
                obj.misses = data["misses"]
                return obj
        """,
        rules=["serde-symmetry"],
    )
    assert findings == []


# --------------------------------------------------------------------- event-schema


def test_event_schema_flags_undeclared_event_name(tmp_path):
    findings = analyze(
        tmp_path,
        """
        EVENT_TYPES = frozenset({"run_start", "run_end"})

        def announce(log):
            log.emit("run_start", workload="gcc")
            log.emit("run_strat", workload="gcc")
        """,
        rules=["event-schema"],
    )
    assert len(findings) == 1
    assert "run_strat" in findings[0].message


# ------------------------------------------------------------------- variant-fields


def test_variant_fields_flags_unknown_override(tmp_path):
    (tmp_path / "configdef.py").write_text(
        textwrap.dedent(
            """
            class DramCacheConfig:
                page_size: int = 4096
                ways: int = 8
            """
        )
    )
    (tmp_path / "variants.py").write_text(
        textwrap.dedent(
            """
            def _builtin(name, base, axis, description, **overrides):
                pass

            class SchemeVariant:
                def __init__(self, name, overrides):
                    pass

            _builtin(name="small", base="banshee", axis="cache", description="d", ways=4)
            _builtin(name="typo", base="banshee", axis="cache", description="d", waysz=4)
            SchemeVariant(name="big", overrides={"page_size": 8192})
            SchemeVariant(name="typo2", overrides={"pagesize": 8192})
            """
        )
    )
    findings = run_analysis([tmp_path], rules=["variant-fields"])
    messages = sorted(f.message for f in findings)
    assert len(findings) == 2
    assert "'pagesize'" in messages[0]
    assert "'waysz'" in messages[1]


# ----------------------------------------------------------------------- suppression


@pytest.mark.parametrize(
    "allow",
    [
        "# repro: allow[hotpath-alloc]",  # exact rule
        "# repro: allow[hotpath]",        # prefix covers hotpath-*
        "# repro: allow[*]",              # wildcard
    ],
)
def test_inline_allow_suppresses_on_same_line(tmp_path, allow):
    findings = analyze(
        tmp_path,
        f"""
        def process(record):  # repro: hotpath
            return [record.addr]  {allow}
        """,
        rules=["hotpath-alloc"],
    )
    assert findings == []


def test_inline_allow_suppresses_from_line_above(tmp_path):
    findings = analyze(
        tmp_path,
        """
        def process(record):  # repro: hotpath
            # repro: allow[hotpath-alloc]
            return [record.addr]
        """,
        rules=["hotpath-alloc"],
    )
    assert findings == []


def test_inline_allow_for_other_rule_does_not_suppress(tmp_path):
    findings = analyze(
        tmp_path,
        """
        def process(record):  # repro: hotpath
            return [record.addr]  # repro: allow[determinism]
        """,
        rules=["hotpath-alloc"],
    )
    assert len(findings) == 1


# -------------------------------------------------------------------------- baseline


def test_baseline_grandfathers_then_reports_stale(tmp_path):
    fixture = tmp_path / "fixture.py"
    fixture.write_text(
        textwrap.dedent(
            """
            def process(record):  # repro: hotpath
                return [record.addr]
            """
        )
    )
    findings = run_analysis([fixture], rules=["hotpath-alloc"])
    assert len(findings) == 1

    baseline_path = tmp_path / "baseline.json"
    assert write_baseline(baseline_path, findings) == 1
    baseline = load_baseline(baseline_path)

    # Unchanged code: the finding is grandfathered, the gate sees nothing new.
    new, grandfathered, stale = apply_baseline(findings, baseline)
    assert new == [] and len(grandfathered) == 1 and stale == []

    # Fingerprints ignore location: edits above the finding keep it matched.
    fixture.write_text("import os\n\n\n" + fixture.read_text())
    moved = run_analysis([fixture], rules=["hotpath-alloc"])
    new, grandfathered, stale = apply_baseline(moved, baseline)
    assert new == [] and len(grandfathered) == 1

    # Fixed code: the entry goes stale (reported, not failing).
    fixture.write_text(
        textwrap.dedent(
            """
            def process(record):  # repro: hotpath
                return record.addr
            """
        )
    )
    new, grandfathered, stale = apply_baseline(
        run_analysis([fixture], rules=["hotpath-alloc"]), baseline
    )
    assert new == [] and grandfathered == [] and len(stale) == 1


def test_load_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == {}


def test_load_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError, match="version"):
        load_baseline(path)


# ------------------------------------------------------------------------------- CLI


def test_cli_exit_codes_and_json_output(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def process(record):  # repro: hotpath\n    return [record.addr]\n")
    good = tmp_path / "good.py"
    good.write_text("def process(record):  # repro: hotpath\n    return record.addr\n")

    assert main([str(good), "--no-baseline"]) == 0
    capsys.readouterr()

    assert main([str(bad), "--no-baseline", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["new"] == 1
    finding = payload["findings"][0]
    assert finding["rule"] == "hotpath-alloc"
    assert finding["symbol"] == "bad.process"
    assert finding["fingerprint"]

    assert main([str(bad), "--rule", "no-such-rule"]) == 2
    assert "unknown rules" in capsys.readouterr().err


def test_cli_write_baseline_then_gate_passes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def process(record):  # repro: hotpath\n    return [record.addr]\n")
    baseline = tmp_path / "baseline.json"

    assert main([str(bad), "--baseline", str(baseline), "--write-baseline"]) == 0
    assert main([str(bad), "--baseline", str(baseline)]) == 0
    # --no-baseline re-reports the grandfathered finding.
    assert main([str(bad), "--no-baseline"]) == 1
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "determinism",
        "event-schema",
        "hotpath-alloc",
        "hotpath-attr",
        "hotpath-slots",
        "serde-symmetry",
        "variant-fields",
    ):
        assert rule in out


# ------------------------------------------------------------------------ self-check


def test_shipped_tree_is_clean_against_committed_baseline(monkeypatch, capsys):
    """The gate CI runs must pass on the tree as committed."""
    monkeypatch.chdir(REPO_ROOT)
    assert main(["src/repro"]) == 0
    assert "0 findings" in capsys.readouterr().out
