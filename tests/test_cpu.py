"""Unit tests for the core timing model and trace types."""

import pytest

from repro.cpu.core import CoreModel
from repro.cpu.trace import TraceRecord, TraceStream, summarize
from repro.sim.config import CoreConfig


def test_compute_advances_by_issue_width():
    core = CoreModel(0, CoreConfig(issue_width=4))
    core.advance_compute(40)
    assert core.clock == pytest.approx(10.0)
    assert core.stats.instructions == 40


def test_memory_levels_have_increasing_cost():
    config = CoreConfig()
    costs = {}
    for level in ("l1", "l2", "l3"):
        core = CoreModel(0, config)
        core.advance_memory(level)
        costs[level] = core.clock
    assert costs["l1"] < costs["l2"] < costs["l3"]


def test_llc_miss_latency_divided_by_mlp():
    config = CoreConfig(mlp=4.0)
    core = CoreModel(0, config, mlp=4.0)
    core.advance_memory("memory", dram_latency=400)
    assert core.clock == pytest.approx(config.l3_hit_latency + 100)


def test_unknown_level_rejected():
    core = CoreModel(0, CoreConfig())
    with pytest.raises(ValueError):
        core.advance_memory("l7")


def test_pending_stalls_applied_once():
    core = CoreModel(0, CoreConfig())
    core.add_stall(500)
    assert core.clock == 0
    core.apply_pending_stalls()
    assert core.clock == 500
    core.apply_pending_stalls()
    assert core.clock == 500
    assert core.stats.os_stall_cycles == 500


def test_ipc():
    core = CoreModel(0, CoreConfig(issue_width=4))
    core.advance_compute(400)
    assert core.ipc == pytest.approx(4.0)


def test_trace_stream_stats():
    records = [TraceRecord(5, 0, False), TraceRecord(3, 4096, True), TraceRecord(2, 64, False)]
    stream = TraceStream(iter(records), page_size=4096)
    consumed = list(stream)
    assert len(consumed) == 3
    assert stream.stats.instructions == 10
    assert stream.stats.writes == 1
    assert stream.stats.unique_pages == 2
    assert stream.stats.write_fraction == pytest.approx(1 / 3)
    assert stream.stats.accesses_per_kilo_instruction == pytest.approx(300.0)


def test_summarize_helper():
    stats = summarize([TraceRecord(1, 0, False)] * 10)
    assert stats.records == 10
    assert stats.unique_pages == 1
