"""Unit tests for large-page partition planning and routing."""

import pytest

from repro.core.banshee import BansheeCache
from repro.core.large_pages import plan_partitions
from repro.dram.device import DramDevice
from repro.memctrl.request import MappingInfo, MemRequest
from repro.sim.config import MB, DramCacheConfig, SystemConfig
from repro.util.rng import DeterministicRng


def test_plan_all_small_pages():
    config = DramCacheConfig(large_page_fraction=0.0)
    plans = plan_partitions(config, 64 * MB)
    assert len(plans) == 1
    assert plans[0].page_size == 4096
    assert plans[0].capacity_bytes == 64 * MB


def test_plan_all_large_pages():
    config = DramCacheConfig(large_page_fraction=1.0)
    plans = plan_partitions(config, 64 * MB)
    large = [plan for plan in plans if plan.page_size == 2 * MB]
    assert large and large[0].num_pages == 32
    assert large[0].sampling_coefficient == pytest.approx(0.001)


def test_plan_split_rounds_to_whole_large_pages():
    config = DramCacheConfig(large_page_fraction=0.5)
    plans = plan_partitions(config, 64 * MB)
    total = sum(plan.capacity_bytes for plan in plans)
    assert total == 64 * MB
    large = [plan for plan in plans if plan.page_size == 2 * MB][0]
    assert large.capacity_bytes % (2 * MB) == 0


def test_plan_rejects_zero_capacity():
    with pytest.raises(ValueError):
        plan_partitions(DramCacheConfig(), 0)


def test_large_page_threshold_scales_with_page_size():
    config = DramCacheConfig()
    small = config.effective_threshold(4096, 0.1)
    large = config.effective_threshold(2 * MB, 0.001)
    assert large > small


def test_banshee_routes_large_requests_to_large_partition():
    config = SystemConfig.tiny(scheme="banshee")
    config = config.with_scheme("banshee", large_page_fraction=1.0, large_page_size=64 * 1024)
    in_dram = DramDevice(config.in_package_dram, config.core.freq_ghz)
    off_dram = DramDevice(config.off_package_dram, config.core.freq_ghz)
    scheme = BansheeCache(config, in_dram, off_dram, rng=DeterministicRng(1))
    large_partition = scheme.partition_for(64 * 1024)
    assert large_partition.page_size == 64 * 1024
    request = MemRequest(addr=0, is_write=False, core_id=0, mapping=MappingInfo(), page_size=64 * 1024)
    result = scheme.access(0, request, 0)
    assert result.dram_cache_hit is False
