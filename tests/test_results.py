"""Unit tests for SimulationResults and the memory-controller request types."""

import pytest

from repro.memctrl.request import AccessResult, MappingInfo, MemRequest
from repro.sim.results import SimulationResults, geometric_mean


def make_results(scheme="banshee", cycles=1000.0, instructions=10_000, **kwargs):
    defaults = dict(
        workload="pagerank",
        scheme=scheme,
        num_cores=2,
        instructions=instructions,
        memory_accesses=2000,
        cycles=cycles,
        dram_cache_hits=300,
        dram_cache_misses=100,
        in_traffic_bytes={"HitData": 64_000, "Counter": 3200},
        off_traffic_bytes={"MissData": 6400},
    )
    defaults.update(kwargs)
    return SimulationResults(**defaults)


def test_derived_metrics():
    results = make_results()
    assert results.ipc == pytest.approx(10.0)
    assert results.dram_cache_miss_rate == pytest.approx(0.25)
    assert results.mpki == pytest.approx(10.0)
    assert results.in_bytes_per_instruction["HitData"] == pytest.approx(6.4)
    assert results.total_in_bytes_per_instruction == pytest.approx(6.72)
    assert results.total_off_bytes_per_instruction == pytest.approx(0.64)


def test_speedup_over():
    fast = make_results(cycles=500.0)
    slow = make_results(scheme="nocache", cycles=1000.0)
    assert fast.speedup_over(slow) == pytest.approx(2.0)


def test_speedup_requires_same_workload():
    a = make_results()
    b = make_results(workload="mcf") if False else SimulationResults(
        workload="mcf", scheme="nocache", num_cores=2, instructions=1, memory_accesses=1, cycles=1.0
    )
    with pytest.raises(ValueError):
        a.speedup_over(b)


def test_summary_keys():
    summary = make_results().summary()
    for key in ("workload", "scheme", "ipc", "mpki", "in_bpi", "off_bpi"):
        assert key in summary


def test_zero_instruction_guards():
    empty = SimulationResults(
        workload="x", scheme="y", num_cores=1, instructions=0, memory_accesses=0, cycles=0.0
    )
    assert empty.ipc == 0.0
    assert empty.mpki == 0.0
    assert empty.total_in_bytes_per_instruction == 0.0


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([0.0, 2.0]) == pytest.approx(2.0)


def test_mem_request_properties():
    request = MemRequest(addr=4096 * 3 + 128, is_write=True, core_id=1, mapping=MappingInfo(True, 2))
    assert request.page == 3
    assert request.line == (4096 * 3 + 128) // 64
    assert request.mapping.as_tuple() == (True, 2)


def test_mem_request_validation():
    with pytest.raises(ValueError):
        MemRequest(addr=-1, is_write=False, core_id=0)
    with pytest.raises(ValueError):
        AccessResult(latency=-5)
