"""Unit tests for the L1/L2/L3 cache hierarchy."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.sim.config import SystemConfig


@pytest.fixture
def hierarchy():
    return CacheHierarchy(SystemConfig.tiny(num_cores=2))


def test_first_access_misses_everywhere(hierarchy):
    outcome = hierarchy.access(0, 0x1000, False)
    assert outcome.level == "memory"
    assert outcome.llc_miss


def test_second_access_hits_l1(hierarchy):
    hierarchy.access(0, 0x1000, False)
    outcome = hierarchy.access(0, 0x1000, False)
    assert outcome.level == "l1"
    assert not outcome.llc_miss


def test_shared_llc_serves_other_core(hierarchy):
    hierarchy.access(0, 0x1000, False)
    outcome = hierarchy.access(1, 0x1000, False)
    # Core 1 misses its private L1/L2 but hits the shared L3.
    assert outcome.level == "l3"
    assert not outcome.llc_miss


def test_dirty_data_eventually_produces_writebacks(hierarchy):
    writebacks = []
    for i in range(20_000):
        outcome = hierarchy.access(0, (i * 64) % (1 << 22), True)
        writebacks.extend(outcome.writebacks)
    assert writebacks, "a write-heavy streaming pattern must produce LLC writebacks"
    assert all(eviction.dirty for eviction in writebacks)


def test_core_id_validated(hierarchy):
    with pytest.raises(ValueError):
        hierarchy.access(5, 0x0, False)


def test_flush_page_scrubs_all_levels(hierarchy):
    hierarchy.access(0, 0x3000, True)
    dirty = hierarchy.flush_page(0x3000, 4096)
    assert dirty
    outcome = hierarchy.access(0, 0x3000, False)
    assert outcome.level == "memory"


def test_stats_keys(hierarchy):
    hierarchy.access(0, 0x0, False)
    stats = hierarchy.stats()
    for key in ("l1_hits", "l1_misses", "l2_misses", "l3_misses", "l3_dirty_evictions"):
        assert key in stats
