"""Unit tests for Banshee's per-set frequency metadata."""

import pytest

from repro.core.frequency import INVALID_PAGE, FrequencySetMetadata


@pytest.fixture
def meta():
    return FrequencySetMetadata(num_ways=4, num_candidates=5, counter_max=31)


def test_find_cached_and_candidate(meta):
    meta.fill_way(2, page=77, count=3, dirty=False)
    meta.install_candidate(1, page=88, count=1)
    assert meta.find_cached(77) == 2
    assert meta.find_cached(88) is None
    assert meta.find_candidate(88) == 1
    assert meta.find_candidate(77) is None


def test_min_cached_counts_invalid_as_zero(meta):
    meta.fill_way(0, page=1, count=10, dirty=False)
    way, count = meta.min_cached()
    assert count == 0 and way != 0


def test_min_cached_full_set(meta):
    for way in range(4):
        meta.fill_way(way, page=way, count=way + 5, dirty=False)
    way, count = meta.min_cached()
    assert way == 0 and count == 5


def test_increment_saturation_halves_all(meta):
    meta.fill_way(0, page=1, count=30, dirty=False)
    meta.fill_way(1, page=2, count=20, dirty=False)
    halved = meta.increment(meta.cached[0])
    assert halved
    assert meta.cached[0].count == 15
    assert meta.cached[1].count == 10


def test_promote_swaps_candidate_and_victim(meta):
    meta.fill_way(3, page=50, count=2, dirty=True)
    meta.install_candidate(0, page=60, count=7)
    old_page, old_count, old_dirty = meta.promote(candidate_index=0, way=3)
    assert (old_page, old_count, old_dirty) == (50, 2, True)
    assert meta.cached[3].page == 60
    assert meta.cached[3].count == 7
    # The former resident becomes a candidate and keeps its counter.
    assert meta.find_candidate(50) == 0
    assert meta.candidates[0].count == 2


def test_promote_into_empty_way(meta):
    meta.install_candidate(2, page=9, count=4)
    old_page, _count, _dirty = meta.promote(candidate_index=2, way=1)
    assert old_page == INVALID_PAGE
    assert meta.cached[1].page == 9
    assert not meta.candidates[2].valid


def test_free_way(meta):
    assert meta.free_way() == 0
    for way in range(4):
        meta.fill_way(way, page=way, count=1, dirty=False)
    assert meta.free_way() is None


def test_check_invariants_pass(meta):
    meta.fill_way(0, page=1, count=3, dirty=False)
    meta.install_candidate(0, page=2, count=1)
    meta.check_invariants()


def test_storage_fits_32_bytes():
    meta = FrequencySetMetadata(num_ways=4, num_candidates=5, counter_max=31)
    # Section 5.1: 4 cached (27 bits) + 5 candidates (25 bits) fit in 32 bytes.
    assert meta.storage_bits <= 32 * 8


def test_validation():
    with pytest.raises(ValueError):
        FrequencySetMetadata(0, 5, 31)
    with pytest.raises(ValueError):
        FrequencySetMetadata(4, -1, 31)
    with pytest.raises(ValueError):
        FrequencySetMetadata(4, 5, 0)
