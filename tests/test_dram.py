"""Unit tests for the DRAM substrate (timing, channel, device)."""

import pytest

from repro.dram.channel import DramChannel
from repro.dram.device import DramDevice
from repro.dram.timing import DramTiming
from repro.sim.config import DramConfig, DramTimingConfig
from repro.sim.stats import TrafficCategory


def make_timing(bandwidth_scale=1.0, latency_scale=1.0):
    return DramTiming(DramTimingConfig(), 2.7, latency_scale=latency_scale, bandwidth_scale=bandwidth_scale)


def test_transfer_rounds_to_minimum_granularity():
    timing = make_timing()
    # A 64 B line plus a tag read of 8 B is charged as 96 B on the wire,
    # i.e. the 32 B minimum transfer makes 72 B cost the same as 96 B.
    assert timing.transfer_cycles(72) == timing.transfer_cycles(96)
    assert timing.transfer_cycles(64) < timing.transfer_cycles(96)
    assert timing.transfer_cycles(0) == 0


def test_transfer_scales_with_bytes():
    timing = make_timing()
    assert timing.transfer_cycles(4096) > 40 * timing.transfer_cycles(64)


def test_latency_scale_reduces_device_latency():
    fast = make_timing(latency_scale=0.5)
    slow = make_timing(latency_scale=1.0)
    assert fast.row_miss_latency_cycles < slow.row_miss_latency_cycles


def test_bandwidth_scale_changes_transfer_time():
    narrow = make_timing(bandwidth_scale=0.5)
    wide = make_timing(bandwidth_scale=1.0)
    assert narrow.transfer_cycles(4096) > wide.transfer_cycles(4096)


def test_channel_queueing_delay_accumulates():
    channel = DramChannel(0, make_timing())
    first = channel.access(0, 4096)
    second = channel.access(0, 64)
    assert first.queue_delay == 0
    assert second.queue_delay > 0
    assert channel.total_requests == 2


def test_channel_idle_requests_have_no_queue_delay():
    channel = DramChannel(0, make_timing())
    first = channel.access(0, 64)
    later = channel.access(first.completion_time + 10_000, 64)
    assert later.queue_delay == 0


def test_channel_background_traffic_is_buffered():
    channel = DramChannel(0, make_timing(), background_buffer_cycles=100_000)
    channel.access(0, 4096, background=True)
    demand = channel.access(0, 64)
    # The buffered page move does not block the demand read.
    assert demand.queue_delay == 0


def test_channel_background_overflow_applies_backpressure():
    channel = DramChannel(0, make_timing(), background_buffer_cycles=10)
    channel.access(0, 1 << 16, background=True)
    demand = channel.access(0, 64)
    assert demand.queue_delay > 0


def test_channel_background_drains_in_idle_gaps():
    channel = DramChannel(0, make_timing(), background_buffer_cycles=1 << 30)
    channel.access(0, 4096, background=True)
    backlog = channel.background_backlog_cycles
    assert backlog > 0
    channel.access(backlog + 10_000, 64)
    assert channel.background_backlog_cycles == 0


def test_channel_rejects_negative_time():
    channel = DramChannel(0, make_timing())
    with pytest.raises(ValueError):
        channel.access(-1, 64)


def test_device_routes_by_page_and_records_traffic():
    config = DramConfig(name="in-package", capacity_bytes=1 << 20, num_channels=4)
    device = DramDevice(config, 2.7, page_size=4096)
    result_a = device.access(0, 0, 64, TrafficCategory.HIT_DATA)
    result_b = device.access(0, 4096, 64, TrafficCategory.HIT_DATA)
    assert result_a.channel_id != result_b.channel_id
    assert device.traffic.bytes_for(TrafficCategory.HIT_DATA) == 128


def test_device_record_only_has_no_timing_effect():
    config = DramConfig(name="off", capacity_bytes=1 << 20, num_channels=1)
    device = DramDevice(config, 2.7)
    device.record_only(4096, TrafficCategory.REPLACEMENT)
    assert device.traffic.bytes_for(TrafficCategory.REPLACEMENT) == 4096
    assert device.channels[0].total_requests == 0


def test_device_reset_clears_state():
    config = DramConfig(name="off", capacity_bytes=1 << 20, num_channels=1)
    device = DramDevice(config, 2.7)
    device.access(0, 0, 64, TrafficCategory.HIT_DATA)
    device.reset()
    assert device.traffic.total_bytes == 0
    assert device.channels[0].busy_until == 0


def test_device_utilization_bounded():
    config = DramConfig(name="off", capacity_bytes=1 << 20, num_channels=1)
    device = DramDevice(config, 2.7)
    for i in range(10):
        device.access(i, 0, 64, TrafficCategory.HIT_DATA)
    assert 0.0 <= device.utilization(10_000) <= 1.0
