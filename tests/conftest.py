"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dram.device import DramDevice
from repro.sim.config import SystemConfig
from repro.util.rng import DeterministicRng


@pytest.fixture
def tiny_config():
    """A tiny system configuration (Banshee scheme by default)."""
    return SystemConfig.tiny()


@pytest.fixture
def scheme_env():
    """Build (config, in_dram, off_dram, rng) for DRAM-cache scheme unit tests."""

    def build(scheme: str = "banshee", **dram_cache_overrides):
        config = SystemConfig.tiny(scheme=scheme)
        if dram_cache_overrides:
            config = config.with_scheme(scheme, **dram_cache_overrides)
        in_dram = DramDevice(config.in_package_dram, config.core.freq_ghz)
        off_dram = DramDevice(config.off_package_dram, config.core.freq_ghz)
        return config, in_dram, off_dram, DeterministicRng(7)

    return build
