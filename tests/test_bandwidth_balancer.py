"""Unit tests for the BATMAN-style bandwidth balancer."""

from repro.core.bandwidth_balancer import BandwidthBalancer
from repro.dram.device import DramDevice
from repro.sim.config import DramConfig
from repro.sim.stats import TrafficCategory


def make_devices():
    in_dram = DramDevice(DramConfig(name="in", capacity_bytes=1 << 20, num_channels=2), 2.7)
    off_dram = DramDevice(DramConfig(name="off", capacity_bytes=1 << 30, num_channels=1), 2.7)
    return in_dram, off_dram


def test_no_redirection_when_balanced():
    in_dram, off_dram = make_devices()
    balancer = BandwidthBalancer(in_dram, off_dram, target_in_fraction=0.8, window_bytes=1024)
    for _ in range(20):
        in_dram.record_only(64, TrafficCategory.HIT_DATA)
        off_dram.record_only(64, TrafficCategory.HIT_DATA)
    assert not balancer.should_redirect(0.0)
    assert balancer.redirect_probability == 0.0


def test_redirects_when_in_package_dominates():
    in_dram, off_dram = make_devices()
    balancer = BandwidthBalancer(in_dram, off_dram, target_in_fraction=0.8, window_bytes=1024)
    for _ in range(100):
        in_dram.record_only(64, TrafficCategory.HIT_DATA)
    assert balancer.should_redirect(0.0)
    assert balancer.redirect_probability > 0.0
    assert balancer.redirected >= 1


def test_probability_bounded():
    in_dram, off_dram = make_devices()
    balancer = BandwidthBalancer(in_dram, off_dram, target_in_fraction=0.5, window_bytes=64)
    for _ in range(1000):
        in_dram.record_only(64, TrafficCategory.HIT_DATA)
        balancer.should_redirect(0.99)
    assert 0.0 <= balancer.redirect_probability <= 0.5
