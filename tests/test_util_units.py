"""Unit tests for repro.util.units."""

import pytest

from repro.util.units import (
    GB,
    KB,
    MB,
    bytes_per_cycle,
    cycles_from_ms,
    cycles_from_ns,
    cycles_from_us,
)


def test_size_constants():
    assert KB == 1024
    assert MB == 1024 * KB
    assert GB == 1024 * MB


def test_cycles_from_ns():
    assert cycles_from_ns(10, 2.7) == 27
    assert cycles_from_ns(0, 2.7) == 0


def test_cycles_from_us_and_ms():
    assert cycles_from_us(20, 2.7) == 54_000
    assert cycles_from_ms(1, 1.0) == 1_000_000


def test_cycles_rejects_bad_frequency():
    with pytest.raises(ValueError):
        cycles_from_ns(10, 0)


def test_bytes_per_cycle():
    assert bytes_per_cycle(21.6, 2.7) == pytest.approx(8.0)
    with pytest.raises(ValueError):
        bytes_per_cycle(10, 0)
