"""Tests for the supervised executor, fault injection and crash recovery.

The scenarios here are the ISSUE's robustness contract: deterministic
fault plans (:mod:`repro.faults`) kill, hang and silence workers at exact
points, and the supervisor must retry with backoff, quarantine repeat
offenders, degrade concurrency, and — via mid-cell auto-snapshots —
produce results bit-identical to an uninterrupted run.
"""

import io
import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path

import pytest

from repro import faults
from repro.campaign import (
    CampaignSpec,
    ResultStore,
    SerialExecutor,
    SupervisedExecutor,
    SupervisorConfig,
    SweepGrid,
    run_campaign,
)
from repro.campaign.cli import _print_live
from repro.campaign.export import result_rows
from repro.campaign.supervisor import (
    install_signal_handlers,
    restore_signal_handlers,
)
from repro.faults import FaultInjected, FaultInjector, FaultPlan, FaultSpec
from repro.obs.events import ObsSink
from repro.obs.heartbeat import HeartbeatWriter, pid_alive, read_heartbeats, sweep_dead

RUN = dict(records_per_core=600, num_cores=2, preset="tiny")

#: Snappy supervisor for tests: near-instant backoff, fast polling.
FAST = dict(backoff_base=0.01, backoff_cap=0.05, poll_interval=0.01)


def tiny_spec(name="t", schemes=("banshee",), workloads=("gcc",), seeds=(1,), **kwargs):
    params = dict(RUN)
    params.update(kwargs)
    return CampaignSpec(
        name=name,
        grids=[SweepGrid(schemes=list(schemes), workloads=list(workloads), seeds=list(seeds))],
        **params,
    )


@pytest.fixture(autouse=True)
def clean_faults():
    """No fault plan (or claim state) leaks between tests or into workers."""
    faults.install(None)
    faults.reset()
    yield
    faults.install(None)
    faults.reset()


def read_event_counts(obs):
    lines = Path(obs.events_path).read_text().splitlines()
    return Counter(json.loads(line)["event"] for line in lines)


def read_event_records(obs, event):
    lines = Path(obs.events_path).read_text().splitlines()
    return [json.loads(line) for line in lines if json.loads(line)["event"] == event]


def identity(outcome):
    payload = outcome.result.to_dict()
    payload.pop("wall_time_seconds", None)
    return payload


# ----------------------------------------------------------------- fault plans


def test_fault_plan_parse_and_round_trip():
    plan = FaultPlan.parse("kill@cell=3;hang@records=10k;truncate-store@put=2;"
                           "kill@cell=0:records=600:times=2")
    assert len(plan) == 4
    assert plan.specs[0].kind == "kill" and plan.specs[0].cell == 3
    assert plan.specs[1].records == 10_000 and plan.specs[1].site == "records"
    assert plan.specs[2].put == 2 and plan.specs[2].site == "store"
    assert plan.specs[3].times == 2 and plan.specs[3].site == "records"
    assert FaultPlan.parse(str(plan)).specs[3].times == 2
    assert str(FaultPlan.parse(str(plan))) == str(plan)


def test_fault_plan_rejects_garbage():
    with pytest.raises(ValueError, match="kind"):
        FaultPlan.parse("explode@cell=1")
    with pytest.raises(ValueError, match="trigger"):
        FaultPlan.parse("kill@times=2")
    with pytest.raises(ValueError, match="field"):
        FaultPlan.parse("kill@banana=3")
    with pytest.raises(ValueError, match="empty"):
        FaultPlan.parse(" ; ")
    with pytest.raises(ValueError):
        FaultSpec("kill", cell=1, times=0)


def test_fault_record_triggers_filter_by_cell():
    plan = FaultPlan.parse("kill@cell=1:records=400;hang@records=200;kill@cell=2:records=100")
    assert plan.record_triggers(1) == [200, 400]
    assert plan.record_triggers(0) == [200]
    assert plan.record_triggers(None) == [200]


def test_fault_injector_claims_once_locally():
    injector = FaultInjector(FaultPlan.parse("error@cell=0"))
    with pytest.raises(FaultInjected):
        injector.fire("cell", cell=0)
    injector.fire("cell", cell=0)  # claimed: second reach is a no-op
    injector.fire("cell", cell=1)  # different coordinate never matches


def test_fault_injector_claims_once_across_state_dir(tmp_path):
    plan = FaultPlan.parse("error@cell=0:times=2")
    first = FaultInjector(plan, state_dir=str(tmp_path))
    second = FaultInjector(plan, state_dir=str(tmp_path))
    fired = 0
    for injector in (first, second, first, second):
        try:
            injector.fire("cell", cell=0)
        except FaultInjected:
            fired += 1
    assert fired == 2  # times=2, shared globally via O_EXCL markers


def test_drop_heartbeat_fault_silences_writer(tmp_path):
    writer = HeartbeatWriter(tmp_path, "w0")
    writer.beat(state="running")
    assert writer.path.exists()
    before = writer.path.read_text()
    faults.install("drop-heartbeat@cell=0")
    faults.fire("cell", cell=0)
    assert faults.heartbeat_dropped()
    time.sleep(0.01)
    writer.beat(state="running", cell="later")
    assert writer.path.read_text() == before  # frozen, not advanced


# ----------------------------------------------------------------- supervisor


def test_supervised_matches_serial_bit_identical(tmp_path):
    cells = tiny_spec(schemes=["banshee", "alloy"]).cells()
    serial = SerialExecutor().run(cells)
    obs = ObsSink.for_directory(tmp_path / "obs")
    supervised = SupervisedExecutor(
        workers=2, config=SupervisorConfig(snapshot_every=200, **FAST)
    ).run(cells, obs=obs, snapshot_dir=str(tmp_path / "snaps"))
    assert [o.key for o in supervised] == [o.key for o in serial]
    for a, b in zip(serial, supervised):
        assert b.ok and identity(a) == identity(b)
    counts = read_event_counts(obs)
    assert counts["lease_granted"] == 2 and counts["cell_finish"] == 2
    # Clean completion leaves no ghost workers and no spent snapshots.
    assert read_heartbeats(obs.heartbeat_dir) == []
    assert list((tmp_path / "snaps").glob("*.json")) == []


def test_killed_worker_is_retried_and_succeeds(tmp_path):
    cells = tiny_spec().cells()
    faults.install("kill@cell=0", state_dir=str(tmp_path / "faults"))
    obs = ObsSink.for_directory(tmp_path / "obs")
    out = SupervisedExecutor(workers=1, config=SupervisorConfig(**FAST)).run(cells, obs=obs)
    assert out[0].ok and out[0].attempt == 2
    counts = read_event_counts(obs)
    assert counts["lease_revoked"] == 1 and counts["cell_retry"] == 1
    assert counts["cell_quarantined"] == 0
    revoked = read_event_records(obs, "lease_revoked")[0]
    assert "worker-died" in revoked["reason"]
    # The result is still bit-identical to an undisturbed serial run.
    faults.install(None)
    faults.reset()
    assert identity(out[0]) == identity(SerialExecutor().run(cells)[0])


def test_repeated_kills_quarantine_cell_and_degrade_pool(tmp_path):
    cells = tiny_spec(schemes=["banshee", "alloy"]).cells()
    faults.install("kill@cell=0:times=3", state_dir=str(tmp_path / "faults"))
    obs = ObsSink.for_directory(tmp_path / "obs")
    out = SupervisedExecutor(
        workers=2, config=SupervisorConfig(max_attempts=3, **FAST)
    ).run(cells, obs=obs)
    assert len(out) == 2
    poisoned = [o for o in out if not o.ok]
    assert len(poisoned) == 1 and poisoned[0].quarantined
    assert "poisoned" in poisoned[0].error and "3 failed attempt" in poisoned[0].error
    assert [o for o in out if o.ok]  # the healthy cell still completed
    counts = read_event_counts(obs)
    assert counts["lease_revoked"] == 3 and counts["cell_quarantined"] == 1
    assert counts["cell_retry"] == 2  # attempts 2 and 3; the 3rd failure quarantines
    # Graceful degradation: each involuntary death shrinks the worker target.
    revocations = read_event_records(obs, "lease_revoked")
    assert [r["workers"] for r in revocations] == [1, 1, 1]
    retries = read_event_records(obs, "cell_retry")
    # Capped exponential backoff: delay doubles between retries.
    delays = [r["backoff_seconds"] for r in retries]
    assert delays == sorted(delays) and delays[0] > 0


def test_hung_worker_revoked_by_cell_timeout(tmp_path):
    cells = tiny_spec().cells()
    faults.install("hang@cell=0", state_dir=str(tmp_path / "faults"))
    obs = ObsSink.for_directory(tmp_path / "obs")
    out = SupervisedExecutor(
        workers=1, config=SupervisorConfig(cell_timeout=0.5, **FAST)
    ).run(cells, obs=obs)
    assert out[0].ok and out[0].attempt == 2
    revoked = read_event_records(obs, "lease_revoked")
    assert len(revoked) == 1 and revoked[0]["reason"] == "timeout"


def test_wedged_worker_revoked_by_stale_heartbeat(tmp_path):
    # hang@records wedges the engine mid-cell: the process stays alive but
    # progress-based heartbeats stop advancing, so the lease goes stale.
    cells = tiny_spec().cells()
    faults.install("hang@records=200", state_dir=str(tmp_path / "faults"))
    obs = ObsSink.for_directory(tmp_path / "obs")
    out = SupervisedExecutor(
        workers=1,
        config=SupervisorConfig(stale_after=0.5, cell_timeout=None, **FAST),
    ).run(cells, obs=obs)
    assert out[0].ok and out[0].attempt == 2
    revoked = read_event_records(obs, "lease_revoked")
    assert len(revoked) == 1 and revoked[0]["reason"] == "stale-heartbeat"


def test_injected_error_is_cell_error_not_retry(tmp_path):
    # Python exceptions stay per-cell error outcomes (the pre-existing
    # contract); only involuntary lease revocations burn retry budget.
    cells = tiny_spec().cells()
    faults.install("error@cell=0", state_dir=str(tmp_path / "faults"))
    obs = ObsSink.for_directory(tmp_path / "obs")
    out = SupervisedExecutor(workers=1, config=SupervisorConfig(**FAST)).run(cells, obs=obs)
    assert not out[0].ok and not out[0].quarantined
    assert "FaultInjected" in out[0].error
    counts = read_event_counts(obs)
    assert counts["cell_error"] == 1 and counts["lease_revoked"] == 0


# ------------------------------------------------------- snapshots and resume


def test_retry_resumes_from_mid_cell_snapshot(tmp_path):
    cells = tiny_spec().cells()
    faults.install("kill@records=400", state_dir=str(tmp_path / "faults"))
    obs = ObsSink.for_directory(tmp_path / "obs")
    out = SupervisedExecutor(
        workers=1, config=SupervisorConfig(snapshot_every=100, **FAST)
    ).run(cells, obs=obs, snapshot_dir=str(tmp_path / "snaps"))
    assert out[0].ok and out[0].attempt == 2
    counts = read_event_counts(obs)
    assert counts["snapshot_restored"] == 1  # attempt 2 resumed, not restarted
    faults.install(None)
    faults.reset()
    assert identity(out[0]) == identity(SerialExecutor().run(cells)[0])


@pytest.mark.parametrize("engine_mode", ["scalar", "batch", "numpy"])
def test_rerun_resumes_killed_campaign_bit_identical(tmp_path, monkeypatch, engine_mode):
    """The ISSUE's acceptance scenario: a campaign whose cell is SIGKILLed
    mid-run (every attempt, so run #1 quarantines it) is re-run and must
    resume from the last auto-snapshot, completing with exported results
    bit-identical to a never-interrupted campaign — in every engine mode."""
    monkeypatch.setenv("REPRO_ENGINE_MODE", engine_mode)
    spec = tiny_spec(schemes=["banshee", "alloy"])

    # Reference: the same campaign, never interrupted.
    clean_store = ResultStore(tmp_path / "clean")
    run_campaign(spec, store=clean_store, workers=2,
                 supervisor=SupervisorConfig(**FAST), snapshot_every=100)

    # Run #1: the first cell is killed on every attempt and quarantined.
    store = ResultStore(tmp_path / "store")
    obs = ObsSink.for_directory(tmp_path / "store" / "obs")
    faults.install("kill@cell=0:records=400:times=3", state_dir=str(tmp_path / "faults"))
    first = run_campaign(spec, store=store, workers=2, obs=obs,
                         supervisor=SupervisorConfig(max_attempts=3, **FAST),
                         snapshot_every=100)
    faults.install(None)
    faults.reset()
    assert len(first.errors) == 1 and first.errors[0].quarantined
    record = store.get_record(first.errors[0].key)
    assert record["poisoned"] is True
    snapshots = list((tmp_path / "store" / "obs" / "autosnapshots").glob("*.json"))
    assert len(snapshots) == 1  # the quarantined cell's resume point survives
    restored_before = read_event_counts(obs)["snapshot_restored"]

    # Run #2 (fresh process state in spirit): resumes mid-cell and completes.
    reopened = ResultStore(tmp_path / "store")
    second = run_campaign(spec, store=reopened, workers=2, obs=obs,
                          supervisor=SupervisorConfig(**FAST), snapshot_every=100)
    assert not second.errors
    assert read_event_counts(obs)["snapshot_restored"] == restored_before + 1
    assert list((tmp_path / "store" / "obs" / "autosnapshots").glob("*.json")) == []

    def comparable(store_obj):
        rows = {}
        for row in result_rows(store_obj):
            row.pop("wall_time_seconds", None)  # measures the host, not the sim
            rows[row["key"]] = row
        return rows

    assert comparable(ResultStore(tmp_path / "store")) == comparable(clean_store)


# ----------------------------------------------------------- store robustness


def test_truncated_store_line_warns_and_is_tolerated(tmp_path):
    store = ResultStore(tmp_path / "store")
    spec = tiny_spec()
    run_campaign(spec, store=store)
    with store.path.open("a", encoding="utf-8") as handle:
        handle.write('{"key": "k2", "result": {"half')  # hand-truncated append
    with pytest.warns(RuntimeWarning, match="unparseable"):
        reopened = ResultStore(tmp_path / "store")
    assert reopened.corrupt_lines == 1 and len(reopened) == 1
    assert reopened.status()["corrupt_lines"] == 1


def test_truncate_store_fault_crashes_then_rerun_recovers(tmp_path):
    """End to end through the CLI: a crash mid-append (injected) kills the
    driver, the reload warns and tolerates the half line, and a plain
    re-run completes the campaign."""
    store_dir = tmp_path / "store"
    base = [sys.executable, "-m", "repro.campaign", "run", "--store", str(store_dir),
            "--schemes", "banshee", "alloy", "--workloads", "gcc", "--seeds", "1",
            "--records", "600", "--cores", "2", "--preset", "tiny"]
    env = dict(os.environ, PYTHONPATH="src")
    crashed = subprocess.run(base + ["--inject", "truncate-store@put=1"],
                             capture_output=True, text=True, env=env, cwd="/root/repo",
                             timeout=300)
    assert crashed.returncode == 1  # the injected crash, not a clean exit
    raw = (store_dir / "results.jsonl").read_text()
    assert raw and not raw.endswith("\n")  # half a line, no terminator
    with pytest.warns(RuntimeWarning, match="unparseable"):
        reopened = ResultStore(store_dir)
    assert len(reopened) == 0 and reopened.corrupt_lines == 1

    rerun = subprocess.run(base, capture_output=True, text=True, env=env,
                           cwd="/root/repo", timeout=300)
    assert rerun.returncode == 0, rerun.stdout + rerun.stderr
    with pytest.warns(RuntimeWarning, match="unparseable"):
        final = ResultStore(store_dir)  # the repaired half line still warns
    assert len(final) == 2 and final.corrupt_lines == 1


def test_poisoned_error_records_counted_in_status(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.put_error("k1", "boom", meta={"scheme": "banshee", "workload": "gcc"})
    store.put_error("k2", "poisoned: gave up", meta={"scheme": "alloy", "workload": "gcc"},
                    poisoned=True)
    info = ResultStore(tmp_path / "store").status()
    assert info["errors"] == 2 and info["poisoned"] == 1


# --------------------------------------------------------- interrupts/signals


def test_sigterm_maps_to_keyboard_interrupt():
    previous = install_signal_handlers()
    try:
        with pytest.raises(KeyboardInterrupt):
            os.kill(os.getpid(), signal.SIGTERM)
            time.sleep(0.5)  # the delivery interrupts the sleep
    finally:
        restore_signal_handlers(previous)


def test_serial_interrupt_reports_partial_campaign(tmp_path):
    spec = tiny_spec(schemes=["banshee", "alloy"])
    store = ResultStore(tmp_path / "store")
    obs = ObsSink.for_directory(tmp_path / "store" / "obs")

    def interrupt_after_first(done, total, outcome):
        raise KeyboardInterrupt()

    report = run_campaign(spec, store=store, progress=interrupt_after_first, obs=obs)
    assert report.interrupted and len(report.outcomes) == 1
    ends = read_event_records(obs, "campaign_end")
    assert ends and ends[-1]["status"] == "interrupted"
    # The completed cell persisted; re-running finishes the rest only.
    resumed = run_campaign(spec, store=ResultStore(tmp_path / "store"))
    assert not resumed.interrupted
    assert resumed.counts()["from_store"] == 1 and resumed.counts()["simulated"] == 1


def test_cli_sigint_exits_cleanly_with_interrupted_status(tmp_path):
    """SIGINT mid-campaign: completed outcomes are flushed, campaign_end says
    interrupted, the exit code is 130, and there is no traceback."""
    store_dir = tmp_path / "store"
    cmd = [sys.executable, "-m", "repro.campaign", "run", "--store", str(store_dir),
           "--schemes", "banshee", "--workloads", "gcc", "--seeds", "1", "2",
           "--records", "600", "--cores", "2", "--preset", "tiny",
           "--inject", "hang@cell=1"]  # cell 0 completes, cell 1 wedges forever
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                            text=True, env=env, cwd="/root/repo")
    events_path = store_dir / "obs" / "events.jsonl"
    deadline = time.time() + 240
    while time.time() < deadline:
        if events_path.exists() and "cell_finish" in events_path.read_text():
            break
        time.sleep(0.05)
    else:
        proc.kill()
        pytest.fail("first cell never finished")
    time.sleep(0.3)  # let the run settle into the injected hang
    proc.send_signal(signal.SIGINT)
    stdout, stderr = proc.communicate(timeout=60)
    assert proc.returncode == 130, stdout + stderr
    assert "Traceback" not in stderr, stderr
    assert "interrupted" in stdout
    events = events_path.read_text().splitlines()
    ends = [json.loads(l) for l in events if json.loads(l)["event"] == "campaign_end"]
    assert ends and ends[-1]["status"] == "interrupted"
    assert len(ResultStore(store_dir)) == 1  # the finished cell was persisted
    assert read_heartbeats(store_dir / "obs" / "heartbeats") == []


# --------------------------------------------------------- heartbeat lifecycle


def test_heartbeat_files_removed_on_clean_exit(tmp_path):
    spec = tiny_spec(schemes=["banshee", "alloy"])
    store = ResultStore(tmp_path / "store")
    obs = ObsSink.for_directory(tmp_path / "store" / "obs")
    run_campaign(spec, store=store, workers=2, obs=obs,
                 supervisor=SupervisorConfig(**FAST))
    assert read_heartbeats(obs.heartbeat_dir) == []
    run_campaign(tiny_spec(name="serial"), store=store, obs=obs)
    assert read_heartbeats(obs.heartbeat_dir) == []


def _exit_quickly():
    return None


def test_pid_alive_and_sweep_dead(tmp_path):
    assert pid_alive(os.getpid())
    assert not pid_alive(None) and not pid_alive("nope") and not pid_alive(-4)
    process = multiprocessing.get_context("spawn").Process(target=_exit_quickly)
    process.start()
    dead_pid = process.pid
    process.join()
    alive = HeartbeatWriter(tmp_path, "alive")
    alive.beat()
    ghost_path = tmp_path / "ghost.hb.json"
    ghost_path.write_text(json.dumps({"worker": "ghost", "pid": dead_pid,
                                      "state": "running", "updated_ts": time.time()}))
    assert sweep_dead(tmp_path) == 1
    assert not ghost_path.exists() and alive.path.exists()


def test_status_live_drops_dead_pid_heartbeats(tmp_path):
    obs_dir = tmp_path / "obs"
    hb_dir = obs_dir / "heartbeats"
    hb_dir.mkdir(parents=True)
    process = multiprocessing.get_context("spawn").Process(target=_exit_quickly)
    process.start()
    dead_pid = process.pid
    process.join()
    now = time.time()
    (hb_dir / "ghost.hb.json").write_text(json.dumps(
        {"worker": "ghost", "pid": dead_pid, "state": "running", "cell": "x",
         "updated_ts": now, "started_ts": now, "cells_done": 0}))
    (hb_dir / "live.hb.json").write_text(json.dumps(
        {"worker": "live", "pid": os.getpid(), "state": "running", "cell": "y",
         "updated_ts": now, "started_ts": now, "cells_done": 1}))
    buffer = io.StringIO()
    _print_live(obs_dir, buffer)
    text = buffer.getvalue()
    assert "live" in text and "ghost" not in text
