"""Setuptools entry point.

The project is configured through pyproject.toml; this file exists so that
legacy editable installs (``pip install -e .``) work on environments whose
setuptools/pip are too old for PEP 660 editable wheels.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Banshee: Bandwidth-Efficient DRAM Caching Via "
        "Software/Hardware Cooperation (MICRO 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
