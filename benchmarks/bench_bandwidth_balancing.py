"""Section 5.4.2: BATMAN-style bandwidth balancing on Alloy and Banshee."""

from conftest import run_and_report

from repro.experiments.figures import extension_bandwidth_balance


def test_bandwidth_balancing(benchmark):
    result = run_and_report(benchmark, extension_bandwidth_balance, "Section 5.4.2: bandwidth balancing")
    rows = {row["scheme"]: row for row in result["rows"]}
    # The paper: the optimisation helps Alloy more than Banshee (Banshee
    # already consumes less total bandwidth), and never hurts catastrophically.
    assert rows["Alloy"]["avg_gain_pct"] >= rows["Banshee"]["avg_gain_pct"] - 5.0
    assert rows["Banshee"]["avg_gain_pct"] > -10.0
