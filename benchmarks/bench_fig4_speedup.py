"""Figure 4: speedup normalised to NoCache (plus MPKI) for all 16 workloads."""

from conftest import run_and_report

from repro.experiments.figures import figure4_speedup


def test_figure4_speedup(benchmark):
    result = run_and_report(benchmark, figure4_speedup, "Figure 4: speedup over NoCache / MPKI")
    geomean = result["summary"]["geomean_speedup"]
    # Shape checks: every scheme produced a geometric-mean speedup, and the
    # schemes the paper ranks highest are present.
    assert set(geomean) == {"Unison", "TDC", "Alloy 1", "Alloy 0.1", "Banshee", "CacheOnly"}
    assert all(value > 0 for value in geomean.values())
