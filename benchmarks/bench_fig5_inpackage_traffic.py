"""Figure 5: in-package DRAM traffic breakdown (bytes per instruction)."""

from conftest import run_and_report

from repro.experiments.figures import figure5_in_package_traffic


def test_figure5_in_package_traffic(benchmark):
    result = run_and_report(benchmark, figure5_in_package_traffic, "Figure 5: in-package DRAM traffic (bytes/instr)")
    averages = result["summary"]["average_total_bpi"]
    # Banshee's headline claim: lowest in-package traffic of all cache schemes.
    assert averages["Banshee"] <= min(value for label, value in averages.items() if label != "Banshee")
