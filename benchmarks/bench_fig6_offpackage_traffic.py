"""Figure 6: off-package DRAM traffic (bytes per instruction)."""

from conftest import run_and_report

from repro.experiments.figures import figure6_off_package_traffic


def test_figure6_off_package_traffic(benchmark):
    result = run_and_report(benchmark, figure6_off_package_traffic, "Figure 6: off-package DRAM traffic (bytes/instr)")
    averages = result["summary"]["average_off_bpi"]
    # Banshee must not pay for its in-package efficiency with extra
    # off-package traffic (the paper reports it is slightly *lower* than the
    # best Alloy configuration and far lower than Unison/TDC).
    assert averages["Banshee"] < averages["Unison"]
    assert averages["Banshee"] < averages["TDC"]
