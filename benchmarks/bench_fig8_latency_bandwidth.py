"""Figure 8: sweep of in-package DRAM latency and bandwidth."""

from conftest import run_and_report

from repro.experiments.figures import figure8_latency_bandwidth


def test_figure8_latency_bandwidth(benchmark):
    result = run_and_report(benchmark, figure8_latency_bandwidth, "Figure 8: DRAM cache latency / bandwidth sweep")
    rows = result["rows"]
    banshee_bw = {row["point"]: row["norm_speedup"] for row in rows if row["sweep"] == "bandwidth" and row["scheme"] == "Banshee"}
    # More in-package bandwidth must not hurt materially (the paper:
    # performance is more sensitive to bandwidth than to latency).  A small
    # tolerance absorbs noise at very short trace lengths.
    assert banshee_bw["8X"] >= banshee_bw["2X"] - 0.1
