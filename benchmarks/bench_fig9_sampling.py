"""Figure 9: sampling-coefficient sweep (miss rate and traffic breakdown)."""

from conftest import run_and_report

from repro.experiments.figures import figure9_sampling


def test_figure9_sampling(benchmark):
    result = run_and_report(benchmark, figure9_sampling, "Figure 9: sampling coefficient sweep")
    rows = {row["sampling_coefficient"]: row for row in result["rows"]}
    # Counter (metadata) traffic must fall as the sampling coefficient falls;
    # the miss rate should rise only modestly (paper: "only by a small
    # amount").  At very short trace lengths a lower coefficient also slows
    # cache warm-up, so the tolerance is generous; it tightens naturally as
    # REPRO_BENCH_RECORDS grows.
    assert rows[0.01]["Counter"] <= rows[1.0]["Counter"]
    assert rows[0.01]["miss_rate"] <= rows[1.0]["miss_rate"] + 0.45
