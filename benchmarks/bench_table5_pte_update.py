"""Table 5: page-table update cost sensitivity."""

from conftest import run_and_report

from repro.experiments.figures import table5_pte_update_cost


def test_table5_pte_update_cost(benchmark):
    result = run_and_report(benchmark, table5_pte_update_cost, "Table 5: PTE update cost sweep")
    rows = {row["update_cost_us"]: row for row in result["rows"]}
    # The overhead must stay small and grow (sub-linearly) with the cost.
    assert rows[10.0]["avg_perf_loss_pct"] <= rows[40.0]["avg_perf_loss_pct"] + 0.5
    assert rows[40.0]["avg_perf_loss_pct"] < 20.0
