"""Section 5.4.1: large (2 MB) page support on the graph workloads."""

from conftest import run_and_report

from repro.experiments.figures import extension_large_pages


def test_large_pages(benchmark):
    result = run_and_report(benchmark, extension_large_pages, "Section 5.4.1: 2 MB pages vs 4 KB pages")
    # The paper reports a modest average gain (+3.6%).  At the scaled trace
    # lengths of this harness the 2 MB partition warms up very slowly (its
    # sampling coefficient is 0.001), so the reproduction only checks that the
    # experiment runs end to end and stays within a wide band; see
    # EXPERIMENTS.md for the discussion.
    assert result["summary"]["average_gain_pct"] > -60.0
