"""Shared helpers for the benchmark (figure/table reproduction) suite.

Each benchmark module reproduces one table or figure of the paper: it runs
the required simulations (through the process-wide result cache, so figures
that share a matrix do not re-simulate), prints the reproduced rows as an
ASCII table, and registers the wall-clock cost with pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only -s

Environment knobs: ``REPRO_BENCH_RECORDS`` (trace records per core, default
30000) and ``REPRO_BENCH_CORES`` (simulated cores, default 4).
"""

from __future__ import annotations

from repro.experiments.report import format_table, rows_from_dicts


def run_and_report(benchmark, figure_fn, title, **kwargs):
    """Run a figure-reproduction function once under pytest-benchmark and print it."""
    result = benchmark.pedantic(lambda: figure_fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0)
    table = format_table(result["headers"], rows_from_dicts(result["rows"], result["headers"]), title=title)
    print()
    print(table)
    if result.get("summary"):
        print(f"summary: {result['summary']}")
    return result
