"""Table 6: DRAM-cache miss rate vs associativity."""

from conftest import run_and_report

from repro.experiments.figures import table6_associativity


def test_table6_associativity(benchmark):
    result = run_and_report(benchmark, table6_associativity, "Table 6: associativity sweep")
    rates = {row["ways"]: row["miss_rate"] for row in result["rows"]}
    # Higher associativity must not make the miss rate meaningfully worse,
    # with quickly diminishing returns beyond 4 ways (the paper's design point).
    assert rates[8] <= rates[1] + 0.02
    assert abs(rates[8] - rates[4]) < 0.05
