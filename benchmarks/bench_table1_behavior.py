"""Table 1: measured per-scheme hit/replacement behaviour."""

from conftest import run_and_report

from repro.experiments.figures import table1_behavior


def test_table1_behavior(benchmark):
    result = run_and_report(benchmark, table1_behavior, "Table 1: per-scheme behaviour (measured)")
    rows = {row["scheme"]: row for row in result["rows"]}
    # Banshee/TDC hits move ~64 B; Alloy ~96 B; Unison >= 128 B (Table 1).
    assert rows["Banshee"]["hit_traffic_bytes"] < rows["Alloy"]["hit_traffic_bytes"] + 16
    assert rows["Unison"]["hit_traffic_bytes"] > rows["TDC"]["hit_traffic_bytes"]
    # HMA has no common-path tag traffic at all.
    assert rows["HMA"]["tag_bpi"] == 0.0
