"""Figure 7: replacement-policy ablation (LRU / FBR-no-sampling / Banshee / TDC)."""

from conftest import run_and_report

from repro.experiments.figures import figure7_replacement_policies


def test_figure7_replacement_policies(benchmark):
    result = run_and_report(benchmark, figure7_replacement_policies, "Figure 7: replacement policy ablation")
    rows = {row["policy"]: row for row in result["rows"]}
    # Sampling must cut the DRAM-cache (in-package) traffic of FBR, and the
    # LRU-on-every-miss ablation must be the most traffic-hungry Banshee variant.
    assert rows["Banshee"]["in_package_bpi"] <= rows["Banshee FBR no sample"]["in_package_bpi"]
    assert rows["Banshee LRU"]["in_package_bpi"] >= rows["Banshee"]["in_package_bpi"]
