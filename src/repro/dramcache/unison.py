"""Unison Cache baseline (Jevdjic et al., MICRO 2014).

Unison Cache is a set-associative, page-granularity DRAM cache that keeps
tags and LRU metadata in the in-package DRAM.  Following the paper's
methodology (Section 5.1.1) we model:

* perfect way prediction — a hit costs one combined data+tag read (96 B on
  the wire) plus a tag/LRU update write (32 B), i.e. "at least 128 B" as in
  Table 1, with single-access latency;
* LRU replacement *on every miss*;
* a perfect footprint predictor (see :mod:`repro.dramcache.footprint`)
  managed at 4-line granularity, so fills move only the page's predicted
  footprint rather than the whole 4 KB.

Misses pay the speculative tag+data read in the DRAM cache (96 B, the way
prediction still has to be verified) plus the off-package demand fetch, for
roughly 2x latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.replacement import LruPolicy
from repro.dram.device import DramDevice
from repro.dramcache.base import TAG_ACCESS_BYTES, DramCacheScheme, OsServices
from repro.dramcache.footprint import FootprintPredictor
from repro.memctrl.request import AccessResult, MemRequest
from repro.sim.config import SystemConfig
from repro.sim.stats import TrafficCategory
from repro.util.rng import DeterministicRng


class _PageEntry:
    """One resident page frame in the Unison cache."""

    __slots__ = ("page", "dirty")

    def __init__(self, page: int) -> None:
        self.page = page
        self.dirty = False


class UnisonCache(DramCacheScheme):
    """Set-associative page-granularity DRAM cache with in-DRAM tags and LRU."""

    name = "unison"

    def __init__(
        self,
        config: SystemConfig,
        in_dram: DramDevice,
        off_dram: DramDevice,
        rng: Optional[DeterministicRng] = None,
        os_services: Optional[OsServices] = None,
    ) -> None:
        super().__init__(config, in_dram, off_dram, rng=rng, os_services=os_services)
        self.ways = config.dram_cache.ways
        total_pages = config.in_package_dram.capacity_bytes // self.page_size
        self.num_sets = max(1, total_pages // self.ways)
        self._sets: List[List[Optional[_PageEntry]]] = [[None] * self.ways for _ in range(self.num_sets)]
        self._where: Dict[int, tuple] = {}
        self._lru = LruPolicy(self.num_sets, self.ways)
        self.footprint = FootprintPredictor(
            self.page_size, granularity_lines=config.dram_cache.footprint_granularity_lines
        )

    # ------------------------------------------------------------------ helpers

    def _set_of(self, page: int) -> int:
        return page % self.num_sets

    def is_resident(self, page: int) -> bool:
        return page in self._where

    # ------------------------------------------------------------------ access

    def access(self, now: int, request: MemRequest, mc_id: int) -> AccessResult:
        page = request.addr // self.page_size
        if request.is_writeback:
            return self._writeback(now, request, page)

        location = self._where.get(page)
        if location is not None:
            return self._hit(now, request, page, location)
        return self._miss(now, request, page)

    def _hit(self, now: int, request: MemRequest, page: int, location: tuple) -> AccessResult:
        set_index, way = location
        # Data + tag read in one access (perfect way prediction), LRU update write.
        latency = self.read_in(now, request.addr, self.line_size, TrafficCategory.HIT_DATA)
        self.background_in(now, request.addr, TAG_ACCESS_BYTES, TrafficCategory.TAG)
        self.background_in(now, request.addr, TAG_ACCESS_BYTES, TrafficCategory.TAG)
        self._lru.on_access(set_index, way)
        entry = self._sets[set_index][way]
        if request.is_write and entry is not None:
            entry.dirty = True
        self.footprint.on_access(page, request.addr)
        self.record_hit(True)
        return AccessResult(latency=latency, dram_cache_hit=True, served_by="in-package")

    def _miss(self, now: int, request: MemRequest, page: int) -> AccessResult:
        # Speculative tag + data read in the DRAM cache, then the real fetch.
        spec_latency = self.read_in(now, request.addr, self.line_size, TrafficCategory.MISS_DATA)
        self.background_in(now, request.addr, TAG_ACCESS_BYTES, TrafficCategory.TAG)
        off_latency = self.read_off(now + spec_latency, request.addr, self.line_size, TrafficCategory.MISS_DATA)
        latency = spec_latency + off_latency
        self.record_hit(False)
        self._replace(now + latency, request, page)
        return AccessResult(latency=latency, dram_cache_hit=False, served_by="off-package")

    def _replace(self, now: int, request: MemRequest, page: int) -> None:
        """Replacement happens on every miss (Table 1)."""
        set_index = self._set_of(page)
        ways_valid = [entry is not None for entry in self._sets[set_index]]
        victim_way = self._lru.victim(set_index, ways_valid)
        victim = self._sets[set_index][victim_way]
        if victim is not None:
            self._evict(now, victim)
        entry = _PageEntry(page)
        entry.dirty = request.is_write
        self._sets[set_index][victim_way] = entry
        self._where[page] = (set_index, victim_way)
        self._lru.on_fill(set_index, victim_way)
        self.footprint.on_fill(page)
        self.footprint.on_access(page, request.addr)

        # Fill traffic: predicted footprint read from off-package and written
        # into the DRAM cache, plus the tag update.
        fill_bytes = self.footprint.predicted_fill_bytes()
        page_addr = page * self.page_size
        self.background_off(now, page_addr, fill_bytes, TrafficCategory.REPLACEMENT)
        self.background_in(now, page_addr, fill_bytes, TrafficCategory.REPLACEMENT)
        self.background_in(now, page_addr, TAG_ACCESS_BYTES, TrafficCategory.REPLACEMENT)
        self.stats.inc("page_fills")
        self.stats.inc("fill_bytes", fill_bytes)

    def _evict(self, now: int, victim: _PageEntry) -> None:
        victim_addr = victim.page * self.page_size
        if victim.dirty:
            dirty_bytes = self.footprint.writeback_bytes(victim.page)
            self.background_in(now, victim_addr, dirty_bytes, TrafficCategory.REPLACEMENT)
            self.background_off(now, victim_addr, dirty_bytes, TrafficCategory.WRITEBACK)
            self.stats.inc("dirty_page_evictions")
        self.footprint.on_evict(victim.page)
        self._where.pop(victim.page, None)
        self.stats.inc("page_evictions")

    def _writeback(self, now: int, request: MemRequest, page: int) -> AccessResult:
        # Writebacks must probe the in-DRAM tags to find the page.
        self.background_in(now, request.addr, TAG_ACCESS_BYTES, TrafficCategory.TAG)
        location = self._where.get(page)
        if location is not None:
            set_index, way = location
            entry = self._sets[set_index][way]
            if entry is not None:
                entry.dirty = True
            self.background_in(now, request.addr, self.line_size, TrafficCategory.WRITEBACK)
            self.footprint.on_access(page, request.addr)
            return AccessResult(latency=0, dram_cache_hit=True, served_by="in-package")
        self.background_off(now, request.addr, self.line_size, TrafficCategory.WRITEBACK)
        return AccessResult(latency=0, dram_cache_hit=False, served_by="off-package")
