"""Unison Cache baseline (Jevdjic et al., MICRO 2014).

Unison Cache is a set-associative, page-granularity DRAM cache that keeps
tags and LRU metadata in the in-package DRAM.  Following the paper's
methodology (Section 5.1.1) we model:

* perfect way prediction — a hit costs one combined data+tag read (96 B on
  the wire) plus a tag/LRU update write (32 B), i.e. "at least 128 B" as in
  Table 1, with single-access latency;
* LRU replacement *on every miss*;
* a perfect footprint predictor (see :mod:`repro.dramcache.footprint`)
  managed at 4-line granularity, so fills move only the page's predicted
  footprint rather than the whole 4 KB.

Misses pay the speculative tag+data read in the DRAM cache (96 B, the way
prediction still has to be verified) plus the off-package demand fetch, for
roughly 2x latency.

Mechanically the scheme is a composition of a
:class:`~repro.dramcache.components.stores.SetAssociativePageStore` (residency
+ LRU), a :class:`~repro.dramcache.components.traffic.TagProbe` (in-DRAM tag
reads/updates) and :class:`~repro.dramcache.components.traffic.TransferFlows`
(footprint-sized fills and dirty-page evictions).
"""

from __future__ import annotations

from typing import Optional

from repro.cache.replacement import LruPolicy
from repro.dram.device import DramDevice
from repro.dramcache.base import DramCacheScheme, OsServices
from repro.dramcache.components.stores import SetAssociativePageStore
from repro.dramcache.components.traffic import TagProbe, TransferFlows
from repro.dramcache.footprint import FootprintPredictor
from repro.memctrl.request import AccessResult, MemRequest
from repro.sim.config import SystemConfig
from repro.sim.stats import TrafficCategory
from repro.util.rng import DeterministicRng


class UnisonCache(DramCacheScheme):
    """Set-associative page-granularity DRAM cache with in-DRAM tags and LRU."""

    name = "unison"

    def __init__(
        self,
        config: SystemConfig,
        in_dram: DramDevice,
        off_dram: DramDevice,
        rng: Optional[DeterministicRng] = None,
        os_services: Optional[OsServices] = None,
    ) -> None:
        super().__init__(config, in_dram, off_dram, rng=rng, os_services=os_services)
        self.ways = config.dram_cache.ways
        total_pages = config.in_package_dram.capacity_bytes // self.page_size
        self.num_sets = max(1, total_pages // self.ways)
        self.store = SetAssociativePageStore(
            self.num_sets, self.ways, LruPolicy(self.num_sets, self.ways)
        )
        self.probe = TagProbe(self)
        self.flows = TransferFlows(self)
        self.footprint = FootprintPredictor(
            self.page_size, granularity_lines=config.dram_cache.footprint_granularity_lines
        )

    # ------------------------------------------------------------------ helpers

    def is_resident(self, page: int) -> bool:
        return self.store.is_resident(page)

    # ------------------------------------------------------------------ access

    def access(self, now: int, request: MemRequest, mc_id: int) -> AccessResult:
        page = request.addr // self.page_size
        if request.is_writeback:
            return self._writeback(now, request, page)

        location = self.store.lookup(page)
        if location is not None:
            return self._hit(now, request, page, location)
        return self._miss(now, request, page)

    def _hit(self, now: int, request: MemRequest, page: int, location: tuple) -> AccessResult:
        set_index, way = location
        # Data + tag read in one access (perfect way prediction), LRU update write.
        latency = self.probe.hit_read(now, request.addr, tag_accesses=2)
        self.store.touch(set_index, way)
        if request.is_write:
            self.store.mark_dirty(set_index, way)
        self.footprint.on_access(page, request.addr)
        self.record_hit(True)
        return self._result_of(latency, True, "in-package")

    def _miss(self, now: int, request: MemRequest, page: int) -> AccessResult:
        # Speculative tag + data read in the DRAM cache, then the real fetch.
        spec_latency = self.probe.speculative_read(now, request.addr)
        off_latency = self.read_off(now + spec_latency, request.addr, self.line_size, TrafficCategory.MISS_DATA)
        latency = spec_latency + off_latency
        self.record_hit(False)
        self._replace(now + latency, request, page)
        return self._result_of(latency, False, "off-package")

    def _replace(self, now: int, request: MemRequest, page: int) -> None:
        """Replacement happens on every miss (Table 1)."""
        store = self.store
        set_index = store.set_of(page)
        victim_way = store.victim_way(set_index)
        victim = store.evict(set_index, victim_way)
        if victim is not None:
            self._evict(now, victim.page, victim.dirty)
        store.install(set_index, victim_way, page, request.is_write)
        self.footprint.on_fill(page)
        self.footprint.on_access(page, request.addr)

        # Fill traffic: predicted footprint read from off-package and written
        # into the DRAM cache, plus the tag update.
        fill_bytes = self.footprint.predicted_fill_bytes()
        page_addr = page * self.page_size
        self.flows.fill_from_off(now, page_addr, fill_bytes)
        self.flows.fill_metadata(now, page_addr)
        self.stats.inc("page_fills")
        self.stats.inc("fill_bytes", fill_bytes)

    def _evict(self, now: int, victim_page: int, victim_dirty: bool) -> None:
        if victim_dirty:
            dirty_bytes = self.footprint.writeback_bytes(victim_page)
            self.flows.evict_dirty_to_off(now, victim_page * self.page_size, dirty_bytes)
            self.stats.inc("dirty_page_evictions")
        self.footprint.on_evict(victim_page)
        self.stats.inc("page_evictions")

    def _writeback(self, now: int, request: MemRequest, page: int) -> AccessResult:
        # Writebacks must probe the in-DRAM tags to find the page.
        self.probe.probe(now, request.addr)
        location = self.store.lookup(page)
        if location is not None:
            set_index, way = location
            self.store.mark_dirty(set_index, way)
            self.flows.writeback_to_cache(now, request.addr)
            self.footprint.on_access(page, request.addr)
            return self._result_of(0, True, "in-package")
        self.flows.writeback_to_off(now, request.addr)
        return self._result_of(0, False, "off-package")
