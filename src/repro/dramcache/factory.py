"""Factory for DRAM-cache schemes and their declared variants.

Keeps the mapping from configuration names ("banshee", "alloy", ...) to
classes in one place so the simulator, the experiment harness and the
examples never hard-code scheme construction.  Variant names
("banshee-tb4k", "unison-2kpage", ...) resolve through
:mod:`repro.dramcache.variants`: the variant's ``DramCacheConfig`` overrides
are applied before the base class is constructed, so one scheme class
serves every declared point of its sensitivity axes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.dram.device import DramDevice
from repro.dramcache.alloy import AlloyCache
from repro.dramcache.base import DramCacheScheme, OsServices
from repro.dramcache.cache_only import CacheOnly
from repro.dramcache.hma import HmaCache
from repro.dramcache.no_cache import NoCache
from repro.dramcache.tdc import TaglessDramCache
from repro.dramcache.unison import UnisonCache
from repro.dramcache.variants import available_scheme_names, resolve_scheme
from repro.sim.config import SystemConfig
from repro.util.rng import DeterministicRng


def _registry() -> Dict[str, Type[DramCacheScheme]]:
    # Imported lazily to avoid a circular import: repro.core.banshee depends
    # on repro.dramcache.base, which lives in this package.
    from repro.core.banshee import BansheeCache

    return {
        "nocache": NoCache,
        "cacheonly": CacheOnly,
        "alloy": AlloyCache,
        "unison": UnisonCache,
        "tdc": TaglessDramCache,
        "hma": HmaCache,
        "banshee": BansheeCache,
    }


def available_schemes() -> List[str]:
    """Names of everything the factory can build: base schemes and variants."""
    return available_scheme_names()


def create_scheme(
    config: SystemConfig,
    in_dram: DramDevice,
    off_dram: DramDevice,
    rng: Optional[DeterministicRng] = None,
    os_services: Optional[OsServices] = None,
) -> DramCacheScheme:
    """Build the scheme (or variant) named by ``config.dram_cache.scheme``.

    A variant's overrides were already folded into the configuration when it
    was constructed (``DramCacheConfig.__post_init__``), so the whole system
    — workloads, page tables, cell keys — simulated with the same values the
    scheme sees; this factory only has to pick the base class.  The
    constructed scheme reports the variant name (``scheme.name``) so
    campaign tables and results stay self-describing.
    """
    requested = config.dram_cache.scheme
    registry = _registry()
    if requested in registry:
        base = requested
    elif config.dram_cache.base_scheme in registry:
        # Variant (possibly registered in another process; the config
        # carries its resolution — see DramCacheConfig.base_scheme).
        base = config.dram_cache.base_scheme
    else:
        # Unresolvable: raise the registry's ValueError listing the names.
        base, _overrides = resolve_scheme(requested)
    scheme = registry[base](config, in_dram, off_dram, rng=rng, os_services=os_services)
    if requested != base:
        scheme.name = requested
        scheme.stats.name = requested
    return scheme
