"""Factory for DRAM-cache schemes.

Keeps the mapping from configuration names ("banshee", "alloy", ...) to
classes in one place so the simulator, the experiment harness and the
examples never hard-code scheme construction.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.dram.device import DramDevice
from repro.dramcache.alloy import AlloyCache
from repro.dramcache.base import DramCacheScheme, OsServices
from repro.dramcache.cache_only import CacheOnly
from repro.dramcache.hma import HmaCache
from repro.dramcache.no_cache import NoCache
from repro.dramcache.tdc import TaglessDramCache
from repro.dramcache.unison import UnisonCache
from repro.sim.config import SystemConfig
from repro.util.rng import DeterministicRng


def _registry() -> Dict[str, Type[DramCacheScheme]]:
    # Imported lazily to avoid a circular import: repro.core.banshee depends
    # on repro.dramcache.base, which lives in this package.
    from repro.core.banshee import BansheeCache

    return {
        "nocache": NoCache,
        "cacheonly": CacheOnly,
        "alloy": AlloyCache,
        "unison": UnisonCache,
        "tdc": TaglessDramCache,
        "hma": HmaCache,
        "banshee": BansheeCache,
    }


def available_schemes() -> list:
    """Names of all schemes the factory can build."""
    return sorted(_registry().keys())


def create_scheme(
    config: SystemConfig,
    in_dram: DramDevice,
    off_dram: DramDevice,
    rng: Optional[DeterministicRng] = None,
    os_services: Optional[OsServices] = None,
) -> DramCacheScheme:
    """Build the scheme named by ``config.dram_cache.scheme``."""
    registry = _registry()
    name = config.dram_cache.scheme
    if name not in registry:
        raise ValueError(f"unknown DRAM cache scheme {name!r}; available: {sorted(registry)}")
    return registry[name](config, in_dram, off_dram, rng=rng, os_services=os_services)
