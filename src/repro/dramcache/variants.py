"""Declarative scheme variants: a name plus configuration overrides.

The paper's evaluation is not just five schemes on Figure 4 — Sections 5–6
sweep design parameters (tag-buffer size, FBR sampling coefficient,
associativity, page sizes, replacement policies) over the same baselines.
A :class:`SchemeVariant` makes one such sensitivity point a *named
configuration*, resolvable anywhere a scheme name is accepted
(``SystemConfig``, ``create_scheme``, campaign specs, the perf harness),
with zero new scheme code:

>>> resolve_scheme("banshee-tb4k")
('banshee', {'tag_buffer_entries': 4096})

Resolution happens in :func:`repro.dramcache.factory.create_scheme`: the
variant's overrides are applied onto the configuration's ``dram_cache``
before the base scheme class is constructed (variant overrides therefore win
over field-level overrides for the same key; everything else passes
through).  Each variant's ``axis`` names the design dimension it perturbs,
which is how the sensitivity sweeps in ``repro.experiments.defaults`` group
them.

New variants can be registered at runtime with :func:`register_variant` —
the intended extension point for new scenarios (see ROADMAP.md).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

#: Names of the concrete scheme implementations the factory can build.
BASE_SCHEMES: Tuple[str, ...] = (
    "nocache",
    "cacheonly",
    "alloy",
    "unison",
    "tdc",
    "hma",
    "banshee",
)

#: Design axes used to group variants in sweeps and documentation.
VARIANT_AXES: Tuple[str, ...] = (
    "tag-buffer",
    "sampling",
    "associativity",
    "page-size",
    "replacement",
    "fill-policy",
    "bandwidth",
    "interval",
)


@dataclass(frozen=True)
class SchemeVariant:
    """A named point in the design space: base scheme + config overrides."""

    name: str
    base: str
    overrides: Mapping[str, object] = field(default_factory=dict)
    axis: str = "replacement"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or any(ch.isspace() for ch in self.name):
            raise ValueError(f"variant name must be a non-empty token, got {self.name!r}")
        if self.base not in BASE_SCHEMES:
            raise ValueError(f"variant base must be one of {BASE_SCHEMES}, got {self.base!r}")
        if self.axis not in VARIANT_AXES:
            raise ValueError(f"variant axis must be one of {VARIANT_AXES}, got {self.axis!r}")
        if "scheme" in self.overrides:
            raise ValueError("variant overrides must not contain 'scheme' (set 'base' instead)")
        bad = set(self.overrides) - _dram_cache_fields()
        if bad:
            raise ValueError(
                f"variant {self.name!r} overrides unknown DramCacheConfig fields: {sorted(bad)}"
            )
        # Freeze the mapping so a registered variant cannot drift.
        object.__setattr__(self, "overrides", dict(self.overrides))


def _dram_cache_fields() -> set:
    # Imported here: repro.sim.config consults this registry from
    # DramCacheConfig.__post_init__, so a module-level import would be a
    # circular dependency.
    from repro.sim.config import DramCacheConfig

    return {f.name for f in dataclasses.fields(DramCacheConfig)}


_VARIANTS: Dict[str, SchemeVariant] = {}


def register_variant(variant: SchemeVariant, replace: bool = False) -> SchemeVariant:
    """Add ``variant`` to the registry; returns it for chaining.

    Registration is the extension point for new scenarios: declare the
    configuration delta, and the campaign/perf/figure machinery can run it
    by name.  Names must not shadow a base scheme, and re-registering an
    existing name requires ``replace=True``.
    """
    if variant.name in BASE_SCHEMES:
        raise ValueError(f"variant name {variant.name!r} shadows a base scheme")
    if variant.name in _VARIANTS and not replace:
        raise ValueError(f"variant {variant.name!r} already registered (pass replace=True)")
    _VARIANTS[variant.name] = variant
    return variant


def unregister_variant(name: str) -> None:
    """Remove a runtime-registered variant (used by tests)."""
    _VARIANTS.pop(name, None)


def get_variant(name: str) -> Optional[SchemeVariant]:
    """The registered variant called ``name``, if any."""
    return _VARIANTS.get(name)


def all_variants() -> Dict[str, SchemeVariant]:
    """Snapshot of the variant registry (name → variant)."""
    return dict(_VARIANTS)


def available_scheme_names() -> List[str]:
    """Every name ``resolve_scheme`` accepts: base schemes plus variants."""
    return sorted(BASE_SCHEMES) + sorted(_VARIANTS)


def is_known_scheme(name: str) -> bool:
    """True when ``name`` is a base scheme or a registered variant."""
    return name in BASE_SCHEMES or name in _VARIANTS


def resolve_scheme(name: str) -> Tuple[str, Dict[str, object]]:
    """Resolve ``name`` to ``(base_scheme, dram_cache_overrides)``.

    Base scheme names resolve to themselves with no overrides.  Unknown
    names raise a ``ValueError`` that lists every available name, so callers
    (CLIs in particular) fail loudly and helpfully up front.
    """
    if name in BASE_SCHEMES:
        return name, {}
    variant = _VARIANTS.get(name)
    if variant is not None:
        return variant.base, dict(variant.overrides)
    raise ValueError(
        f"unknown DRAM cache scheme or variant {name!r}; "
        f"available: {', '.join(available_scheme_names())}"
    )


def describe_variants() -> str:
    """One line per variant (grouped by axis) for CLI ``--help`` epilogs."""
    lines = []
    for axis in VARIANT_AXES:
        members = [v for v in _VARIANTS.values() if v.axis == axis]
        if not members:
            continue
        lines.append(f"{axis}:")
        for variant in sorted(members, key=lambda v: v.name):
            deltas = ", ".join(f"{k}={v}" for k, v in sorted(variant.overrides.items()))
            text = f"  {variant.name:<20s} {variant.base} with {deltas}"
            if variant.description:
                text += f" — {variant.description}"
            lines.append(text)
    return "\n".join(lines)


def _builtin(name: str, base: str, axis: str, description: str, **overrides) -> None:
    register_variant(
        SchemeVariant(name=name, base=base, overrides=overrides, axis=axis, description=description)
    )


# --------------------------------------------------------------------------- built-ins
# The named points of the paper's sensitivity studies (Sections 5-6).  Sizes
# and coefficients are chosen to bracket each default the way the paper's
# sweeps do; absolute magnitudes track the scaled-down presets.

# Tag-buffer size (Section 5.3 / Figure sweep on tag-buffer entries).
_builtin("banshee-tb128", "banshee", "tag-buffer",
         "Banshee with a small 128-entry tag buffer", tag_buffer_entries=128)
_builtin("banshee-tb4k", "banshee", "tag-buffer",
         "Banshee with a large 4096-entry tag buffer", tag_buffer_entries=4096)

# FBR sampling coefficient (Section 4.2.1 / Figure 9).
_builtin("banshee-sample01", "banshee", "sampling",
         "Banshee sampling 1% of accesses at full miss rate", sampling_coefficient=0.01)
_builtin("banshee-sample32", "banshee", "sampling",
         "Banshee sampling 32% of accesses at full miss rate", sampling_coefficient=0.32)
_builtin("banshee-nosample", "banshee", "sampling",
         "Banshee ablation: counters updated on every access (CHOP-like)",
         banshee_policy="fbr-nosample")

# DRAM-cache associativity / placement (Table 6).
_builtin("banshee-2way", "banshee", "associativity",
         "Banshee with 2-way set-associative placement", ways=2)
_builtin("banshee-8way", "banshee", "associativity",
         "Banshee with 8-way set-associative placement", ways=8)
_builtin("unison-2way", "unison", "associativity",
         "Unison Cache with 2-way sets", ways=2)

# Page size (Section 5.4.1 / Table 5 direction, scaled down).
_builtin("banshee-2kpage", "banshee", "page-size",
         "Banshee managing 2 KB pages", page_size=2048)
_builtin("unison-2kpage", "unison", "page-size",
         "Unison Cache managing 2 KB pages", page_size=2048)
_builtin("unison-8kpage", "unison", "page-size",
         "Unison Cache managing 8 KB pages", page_size=8192)

# Replacement policy ablations (Figure 7).
_builtin("banshee-lru", "banshee", "replacement",
         "Banshee ablation: page-granularity LRU, replace on every miss",
         banshee_policy="lru")

# Stochastic fill probability (Alloy/BEAR, Section 5.1.1).
_builtin("alloy-p10", "alloy", "fill-policy",
         "Alloy 0.1: stochastic fills with probability 0.1",
         alloy_replacement_probability=0.1)

# Bandwidth balancing (Section 5.4.2, BATMAN-style).
_builtin("banshee-batman", "banshee", "bandwidth",
         "Banshee with the bandwidth balancer enabled", bandwidth_balance=True)

# Software remap interval (HMA hot-page migration cadence).
_builtin("hma-10ms", "hma", "interval",
         "HMA remapping every 10 ms instead of 100 ms", hma_interval_ms=10.0)
