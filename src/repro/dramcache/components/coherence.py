"""Lazy PTE/TLB mapping coherence through per-controller tag buffers.

Banshee tracks DRAM-cache contents in the page tables; remapping a page
therefore means updating PTEs and shooting down TLBs.  Doing that per
replacement would be ruinous, so remaps accumulate in small per-memory-
controller tag buffers and are applied in batches by a software routine
(Sections 3.1–3.4).  :class:`TagBufferCoherence` packages that machinery —
the buffers, the update batcher and the flush policy — behind four
operations: ``lookup``, ``note_clean``, ``record_remap`` and ``flush``.

Schemes that keep their mapping in the PTEs (Banshee today; any future
PTE-tracked variant) compose this instead of hand-wiring buffers, batcher
and thresholds.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.pte_extension import PteUpdateBatcher
from repro.core.tag_buffer import TagBuffer, TagBufferEntry, TagBufferFullError
from repro.dramcache.base import OsServices
from repro.sim.stats import StatsSet


class TagBufferCoherence:
    """Per-MC tag buffers with batched, thresholded PTE update flushes."""

    __slots__ = ("tag_buffers", "pte_updater", "flush_threshold", "stats")

    def __init__(
        self,
        num_controllers: int,
        entries: int,
        ways: int,
        flush_threshold: float,
        os_services: OsServices,
        stats: StatsSet,
    ) -> None:
        self.tag_buffers: List[TagBuffer] = [
            TagBuffer(entries, ways) for _ in range(num_controllers)
        ]
        self.pte_updater = PteUpdateBatcher(self.tag_buffers, os_services)
        self.flush_threshold = flush_threshold
        self.stats = stats

    # ------------------------------------------------------------------ wiring

    def set_os_services(self, os_services: OsServices) -> None:
        """Install the system's OS-callback implementation."""
        self.pte_updater.set_os_services(os_services)

    def controller_of(self, page: int) -> int:
        """The memory controller (and therefore tag buffer) owning ``page``."""
        return page % len(self.tag_buffers)

    # ------------------------------------------------------------------ lookups

    def lookup(self, mc_id: int, page: int) -> Optional[TagBufferEntry]:
        """The mapping entry controller ``mc_id`` holds for ``page``, if any."""
        return self.tag_buffers[mc_id].lookup(page)

    def note_clean(self, mc_id: int, page: int, cached: bool, way: int) -> None:
        """Cache a clean (remap=0) mapping so later writebacks skip the tag probe.

        Clean entries are droppable, so a full buffer silently skips the
        insert instead of forcing a flush (Section 3.3).
        """
        try:
            self.tag_buffers[mc_id].insert(page, cached, way, remap=False)
        except TagBufferFullError:  # pragma: no cover - clean inserts never raise
            pass

    # ------------------------------------------------------------------ remaps

    def record_remap(self, mc_id: int, page: int, cached: bool, way: int, core_id: int) -> None:
        """Record a mapping change; flush when the buffer demands it.

        A full buffer forces an immediate flush (the insert must land);
        otherwise a flush fires once remap entries exceed the occupancy
        threshold (Section 3.4).
        """
        buffer = self.tag_buffers[mc_id]
        try:
            buffer.insert(page, cached, way, remap=True)
        except TagBufferFullError:
            self.flush(core_id)
            buffer.insert(page, cached, way, remap=True)
        if self.pte_updater.needs_flush(self.flush_threshold):
            self.flush(core_id)

    def flush(self, core_id: int) -> None:
        """Apply every pending remap as one batched software PTE update."""
        applied = self.pte_updater.flush(core_id)
        self.stats.inc("tag_buffer_flushes")
        self.stats.inc("pte_updates", applied)

    def finalize(self, core_id: int = 0) -> None:
        """Flush outstanding remaps so PTE state is consistent at end of run."""
        if self.pte_updater.collect_updates():
            self.flush(core_id)
