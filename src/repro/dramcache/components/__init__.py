"""Composable mechanisms shared by the DRAM-cache schemes.

Every scheme in :mod:`repro.dramcache` (and :mod:`repro.core.banshee`) is a
composition of a small number of recurring mechanisms:

* a **residency store** tracking which lines/pages are in the in-package
  DRAM and which of them are dirty (:mod:`.stores`);
* **probe traffic charging** for tags and per-set metadata kept in the
  in-package DRAM (:mod:`.traffic`);
* **fill / evict / writeback flows** that move data between the two DRAM
  devices with the correct byte counts and traffic categories
  (:mod:`.traffic`);
* a **replacement policy** deciding what to insert and what to evict
  (:mod:`.replacement`, plus :mod:`repro.cache.replacement` for LRU/FIFO);
* **mapping coherence** for the PTE/TLB-tracked schemes
  (:mod:`.coherence`).

The components operate against a *port* — any object exposing the
:class:`repro.dramcache.base.DramCacheScheme` traffic surface (``read_in``,
``read_off``, ``background_in``, ``background_off``, ``line_size``,
``stats``, ``in_dram``, ``off_dram``).  In practice the port is the scheme
itself, so a scheme composes components by passing ``self`` at construction
time.  Components bind the port's hoisted device-access methods once, so the
composition adds no attribute-chain walking to the per-access hot path.
"""

from repro.dramcache.components.coherence import TagBufferCoherence
from repro.dramcache.components.replacement import AdaptiveSampler, SampledFrequencyPolicy
from repro.dramcache.components.stores import (
    DirectMappedLineStore,
    FifoPageStore,
    PageDirectory,
    ResidentPageSet,
    SetAssociativePageStore,
)
from repro.dramcache.components.traffic import (
    METADATA_ACCESS_BYTES,
    MetadataChannel,
    TagProbe,
    TransferFlows,
)

__all__ = [
    "AdaptiveSampler",
    "DirectMappedLineStore",
    "FifoPageStore",
    "METADATA_ACCESS_BYTES",
    "MetadataChannel",
    "PageDirectory",
    "ResidentPageSet",
    "SampledFrequencyPolicy",
    "SetAssociativePageStore",
    "TagBufferCoherence",
    "TagProbe",
    "TransferFlows",
]
