"""Residency stores: who is in the in-package DRAM, and who is dirty.

Each class models one organisation of the DRAM cache's data array:

* :class:`DirectMappedLineStore` — direct-mapped, line granularity (Alloy);
* :class:`SetAssociativePageStore` — set-associative, page granularity,
  with a pluggable per-set replacement policy (Unison);
* :class:`FifoPageStore` — fully-associative, page granularity, FIFO
  eviction order (TDC);
* :class:`PageDirectory` — page → way mapping mirrored in the PTEs
  (Banshee partitions; the "store" is really the page table's view);
* :class:`ResidentPageSet` — an unordered resident set whose contents are
  re-chosen wholesale at remap intervals (HMA).

Stores only track state — they never touch the DRAM devices.  Charging the
traffic that state transitions imply is the scheme's job, via
:class:`repro.dramcache.components.traffic.TransferFlows`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

from repro.cache.replacement import ReplacementPolicy


class DirectMappedLineStore:
    """Direct-mapped, line-granularity residency (one tag per frame)."""

    __slots__ = ("num_frames", "tags", "dirty_frames")

    def __init__(self, num_frames: int) -> None:
        if num_frames <= 0:
            raise ValueError("in-package DRAM too small for even one line")
        self.num_frames = num_frames
        self.tags: Dict[int, int] = {}
        self.dirty_frames: Set[int] = set()

    def frame_of(self, line: int) -> int:
        """Frame that ``line`` maps to."""
        return line % self.num_frames

    def is_resident(self, line: int) -> bool:
        """True when ``line`` currently occupies its frame."""
        return self.tags.get(line % self.num_frames) == line

    def hit(self, frame: int, line: int) -> bool:
        """Residency check with the frame precomputed (the demand hot path)."""
        return self.tags.get(frame) == line

    def is_dirty(self, frame: int) -> bool:
        """True when the line in ``frame`` has been modified."""
        return frame in self.dirty_frames

    def mark_dirty(self, frame: int) -> None:
        """Record a write to the line resident in ``frame``."""
        self.dirty_frames.add(frame)

    def install(self, frame: int, line: int, dirty: bool) -> Tuple[Optional[int], bool]:
        """Install ``line`` into ``frame``; returns ``(victim_line, victim_dirty)``.

        ``victim_line`` is ``None`` when the frame was empty.  The victim's
        dirty state is consumed here (the frame's dirty bit now describes the
        new occupant).
        """
        victim = self.tags.get(frame)
        victim_dirty = victim is not None and frame in self.dirty_frames
        self.dirty_frames.discard(frame)
        self.tags[frame] = line
        if dirty:
            self.dirty_frames.add(frame)
        # One result tuple per fill (misses only, further gated by Alloy's
        # stochastic fill probability).  # repro: allow[hotpath-alloc]
        return victim, victim_dirty


class _StoredPage:
    """One resident page frame of a set-associative store."""

    __slots__ = ("page", "dirty")

    def __init__(self, page: int) -> None:
        self.page = page
        self.dirty = False


class SetAssociativePageStore:
    """Set-associative page residency with a pluggable replacement policy."""

    __slots__ = ("num_sets", "ways", "policy", "_sets", "_where", "_valid_scratch")

    def __init__(self, num_sets: int, ways: int, policy: ReplacementPolicy) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        self.num_sets = num_sets
        self.ways = ways
        self.policy = policy
        self._sets: List[List[Optional[_StoredPage]]] = [[None] * ways for _ in range(num_sets)]
        self._where: Dict[int, Tuple[int, int]] = {}
        # Reused validity vector for victim_way (runs on every miss).
        self._valid_scratch: List[bool] = [False] * ways

    def set_of(self, page: int) -> int:
        """Set index that ``page`` maps to."""
        return page % self.num_sets

    def lookup(self, page: int) -> Optional[Tuple[int, int]]:
        """``(set_index, way)`` of ``page``, or ``None`` when absent."""
        return self._where.get(page)

    def is_resident(self, page: int) -> bool:
        """True when ``page`` is currently cached."""
        return page in self._where

    def touch(self, set_index: int, way: int) -> None:
        """Record a hit for the replacement policy."""
        self.policy.on_access(set_index, way)

    def mark_dirty(self, set_index: int, way: int) -> None:
        """Record a write to the page in ``(set_index, way)``."""
        entry = self._sets[set_index][way]
        if entry is not None:
            entry.dirty = True

    def victim_way(self, set_index: int) -> int:
        """Way the policy wants to evict from ``set_index`` (invalid ways first)."""
        ways_valid = self._valid_scratch
        row = self._sets[set_index]
        for way in range(self.ways):
            ways_valid[way] = row[way] is not None
        return self.policy.victim(set_index, ways_valid)

    def evict(self, set_index: int, way: int) -> Optional[_StoredPage]:
        """Remove and return the occupant of ``(set_index, way)``."""
        entry = self._sets[set_index][way]
        if entry is not None:
            self._sets[set_index][way] = None
            self._where.pop(entry.page, None)
        return entry

    def install(self, set_index: int, way: int, page: int, dirty: bool) -> _StoredPage:
        """Place ``page`` into ``(set_index, way)`` (the way must be free)."""
        # Both the frame record and its location tuple are retained until the
        # page is evicted, so neither can be pooled; installs happen per miss,
        # not per record.
        entry = _StoredPage(page)  # repro: allow[hotpath-alloc]
        entry.dirty = dirty
        self._sets[set_index][way] = entry
        self._where[page] = (set_index, way)  # repro: allow[hotpath-alloc]
        self.policy.on_fill(set_index, way)
        return entry


class FifoPageStore:
    """Fully-associative page residency in FIFO insertion order."""

    __slots__ = ("capacity_pages", "entries")

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages <= 0:
            raise ValueError("in-package DRAM too small for a single page")
        self.capacity_pages = capacity_pages
        # OrderedDict doubles as the FIFO queue: insertion order is eviction
        # order.  The value is the page's dirty bit.
        self.entries: "OrderedDict[int, bool]" = OrderedDict()

    def is_resident(self, page: int) -> bool:
        """True when ``page`` is currently cached."""
        return page in self.entries

    def mark_dirty(self, page: int) -> None:
        """Record a write to resident ``page`` (no-op ordering-wise: FIFO)."""
        self.entries[page] = True

    def pop_victim_if_full(self) -> Optional[Tuple[int, bool]]:
        """Evict the oldest page when at capacity; returns ``(page, dirty)``."""
        if len(self.entries) >= self.capacity_pages:
            return self.entries.popitem(last=False)
        return None

    def insert(self, page: int, dirty: bool) -> None:
        """Append ``page`` to the FIFO (caller must have made room)."""
        self.entries[page] = dirty


class PageDirectory:
    """Page → way mapping plus dirty tracking (the PTE view of the cache)."""

    __slots__ = ("pages", "dirty")

    def __init__(self) -> None:
        self.pages: Dict[int, int] = {}
        self.dirty: Set[int] = set()

    def is_resident(self, page: int) -> bool:
        """True when ``page`` is currently cached."""
        return page in self.pages

    def way_of(self, page: int) -> int:
        """Way where ``page`` resides (page must be resident)."""
        return self.pages[page]

    def mark_dirty(self, page: int) -> None:
        """Record that the resident copy of ``page`` has been modified."""
        if page in self.pages:
            self.dirty.add(page)

    def fill(self, page: int, way: int, dirty: bool) -> None:
        """Record ``page`` as resident in ``way``."""
        self.pages[page] = way
        if dirty:
            self.dirty.add(page)

    def evict(self, page: int) -> bool:
        """Drop ``page``; returns whether its copy was dirty."""
        was_dirty = page in self.dirty
        self.dirty.discard(page)
        self.pages.pop(page, None)
        return was_dirty

    def occupancy(self) -> int:
        """Number of resident pages."""
        return len(self.pages)


class ResidentPageSet:
    """Unordered resident set whose membership is re-chosen at remap time."""

    __slots__ = ("pages", "dirty")

    def __init__(self) -> None:
        self.pages: Set[int] = set()
        self.dirty: Set[int] = set()

    def is_resident(self, page: int) -> bool:
        """True when ``page`` is currently in the in-package DRAM."""
        return page in self.pages

    def mark_dirty(self, page: int) -> None:
        """Record a write to resident ``page``."""
        self.dirty.add(page)

    def retarget(self, target: Set[int]) -> Tuple[Set[int], Set[int]]:
        """Replace the resident set with ``target``; returns (incoming, outgoing).

        Dirty bookkeeping for outgoing pages is the caller's responsibility
        (it must charge the writeback traffic before discarding the bit).
        """
        incoming = target - self.pages
        outgoing = self.pages - target
        self.pages = target
        return incoming, outgoing
