"""Probe and data-movement traffic charging.

Table 1 of the paper is, at heart, a catalogue of which DRAM accesses each
scheme performs per hit, miss, fill and eviction.  These components express
those accesses once, with the correct byte counts and
:class:`~repro.sim.stats.TrafficCategory` labels, so schemes compose flows
instead of re-implementing ``background_in``/``background_off`` sequences:

* :class:`TagProbe` — tag reads/updates for schemes that keep tags in the
  in-package DRAM (Alloy's TAD layout, Unison's in-DRAM tags, Banshee's
  writeback probe);
* :class:`MetadataChannel` — the 32 B per-set metadata record that Banshee's
  frequency counters (and the LRU-ablation recency bits) live in;
* :class:`TransferFlows` — fill, dirty-evict, writeback and migration data
  movement between the two DRAM devices.

All latency-bearing accesses go through the port's hoisted device-access
methods (bound once at construction), so composing these adds a single extra
call per operation over the hand-inlined originals.
"""

from __future__ import annotations

from repro.dramcache.base import TAG_ACCESS_BYTES
from repro.sim.stats import TrafficCategory

#: Bytes of one per-set metadata record (Section 5.1: ~32 bytes per set).
METADATA_ACCESS_BYTES = 32

_HIT = TrafficCategory.HIT_DATA
_MISS = TrafficCategory.MISS_DATA
_TAG = TrafficCategory.TAG
_COUNTER = TrafficCategory.COUNTER
_REPL = TrafficCategory.REPLACEMENT
_WB = TrafficCategory.WRITEBACK


class TagProbe:
    """Tag traffic for schemes whose tags live in the in-package DRAM."""

    __slots__ = ("tag_bytes", "line_size", "_in_access")

    def __init__(self, port, tag_bytes: int = TAG_ACCESS_BYTES) -> None:
        self.tag_bytes = tag_bytes
        self.line_size = port.line_size
        self._in_access = port._in_access

    def probe(self, now: int, addr: int) -> None:
        """One background tag read/update (32 B, off the critical path)."""
        self._in_access(now, addr, self.tag_bytes, _TAG, background=True)

    def hit_read(self, now: int, addr: int, tag_accesses: int = 1) -> int:
        """Combined data+tag read on a hit; returns the critical-path latency.

        The data read carries the latency; ``tag_accesses`` background tag
        transfers ride along (1 for Alloy's TAD read, 2 for Unison's tag
        read + LRU update write).
        """
        latency = self._in_access(now, addr, self.line_size, _HIT)
        for _ in range(tag_accesses):
            self._in_access(now, addr, self.tag_bytes, _TAG, background=True)
        return latency

    def speculative_read(self, now: int, addr: int) -> int:
        """Wasted tag+data read on a miss (way prediction must be verified)."""
        latency = self._in_access(now, addr, self.line_size, _MISS)
        self._in_access(now, addr, self.tag_bytes, _TAG, background=True)
        return latency


class MetadataChannel:
    """The 32 B per-set metadata record in the in-package DRAM (Banshee)."""

    __slots__ = ("access_bytes", "_in_access", "_stats_inc")

    def __init__(self, port, access_bytes: int = METADATA_ACCESS_BYTES) -> None:
        self.access_bytes = access_bytes
        self._in_access = port._in_access
        self._stats_inc = port.stats.inc

    def read(self, now: int, addr: int) -> None:
        """Load the set's metadata record (counted as a counter read)."""
        self._in_access(now, addr, self.access_bytes, _COUNTER, background=True)
        self._stats_inc("counter_reads")

    def write(self, now: int, addr: int) -> None:
        """Store the set's metadata record (counted as a counter write)."""
        self._in_access(now, addr, self.access_bytes, _COUNTER, background=True)
        self._stats_inc("counter_writes")

    def touch(self, now: int, addr: int) -> None:
        """One uncounted metadata transfer (the LRU ablation's recency bits)."""
        self._in_access(now, addr, self.access_bytes, _COUNTER, background=True)


class TransferFlows:
    """Fill / evict / writeback / migration data movement."""

    __slots__ = ("line_size", "_in_access", "_off_access", "_in_dram", "_off_dram")

    def __init__(self, port) -> None:
        self.line_size = port.line_size
        self._in_access = port._in_access
        self._off_access = port._off_access
        self._in_dram = port.in_dram
        self._off_dram = port.off_dram

    # ------------------------------------------------------------------ fills

    def fill_from_off(self, now: int, addr: int, num_bytes: int) -> None:
        """Move ``num_bytes`` from off-package DRAM into the cache (a fill)."""
        self._off_access(now, addr, num_bytes, _REPL, background=True)
        self._in_access(now, addr, num_bytes, _REPL, background=True)

    def fill_in_only(self, now: int, addr: int, num_bytes: int) -> None:
        """Write ``num_bytes`` into the cache (data already fetched on demand)."""
        self._in_access(now, addr, num_bytes, _REPL, background=True)

    def fill_metadata(self, now: int, addr: int, num_bytes: int = TAG_ACCESS_BYTES) -> None:
        """Tag/metadata update that accompanies a fill (replacement traffic)."""
        self._in_access(now, addr, num_bytes, _REPL, background=True)

    # ------------------------------------------------------------------ evictions

    def evict_dirty_to_off(self, now: int, addr: int, num_bytes: int) -> None:
        """Read a dirty victim out of the cache and write it off-package."""
        self._in_access(now, addr, num_bytes, _REPL, background=True)
        self._off_access(now, addr, num_bytes, _WB, background=True)

    # ------------------------------------------------------------------ LLC writebacks

    def writeback_to_cache(self, now: int, addr: int) -> None:
        """An LLC dirty eviction lands in the DRAM cache."""
        self._in_access(now, addr, self.line_size, _WB, background=True)

    def writeback_to_off(self, now: int, addr: int) -> None:
        """An LLC dirty eviction bypasses the cache to off-package DRAM."""
        self._off_access(now, addr, self.line_size, _WB, background=True)

    # ------------------------------------------------------------------ OS-driven migration

    def migrate_in_record_only(self, num_bytes: int) -> None:
        """Account an off→in page migration without timing it (HMA remap)."""
        self._off_dram.record_only(num_bytes, _REPL)
        self._in_dram.record_only(num_bytes, _REPL)

    def migrate_out_record_only(self, num_bytes: int) -> None:
        """Account an in→off dirty-page migration without timing it."""
        self._in_dram.record_only(num_bytes, _REPL)
        self._off_dram.record_only(num_bytes, _WB)
