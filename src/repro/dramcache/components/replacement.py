"""Frequency-based replacement with sampled counter updates (Algorithm 1).

Banshee's replacement policy is split into two composable parts:

* :class:`AdaptiveSampler` — the decision of *whether* to run the policy at
  all for a given access: sample rate = recent miss rate × sampling
  coefficient (Section 4.2.1), so a cache that is already working well stops
  paying metadata traffic;
* :class:`SampledFrequencyPolicy` — the decision of *what* to do once
  sampled: bump the page's frequency counter, start tracking it as a
  candidate, or (when a candidate's counter exceeds the coldest cached
  page's counter by the replacement threshold) order a replacement.

The policy operates purely on :class:`~repro.core.frequency.FrequencySetMetadata`
state and the deterministic RNG — it decides, the scheme executes (traffic
charging, residency updates, PTE remaps).  This keeps the RNG draw order
identical to the original monolithic implementation, which the hot-path
goldens pin.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.frequency import FrequencySetMetadata
from repro.sim.stats import MissRateWindow, StatsSet
from repro.util.rng import DeterministicRng


class AdaptiveSampler:
    """Miss-rate-proportional sampling of replacement-policy updates."""

    __slots__ = ("miss_window", "coefficient", "always", "_chance")

    def __init__(
        self,
        miss_window: MissRateWindow,
        coefficient: float,
        rng: DeterministicRng,
        always: bool = False,
    ) -> None:
        self.miss_window = miss_window
        self.coefficient = coefficient
        self.always = always
        self._chance = rng.chance

    def record(self, hit: bool) -> None:
        """Feed one demand access into the miss-rate estimator."""
        self.miss_window.record(hit)

    def should_update(self) -> bool:
        """Draw the sampling decision for the current access.

        Always consumes exactly one RNG draw (even in the ``fbr-nosample``
        ablation, where the rate is 1.0) so that ablation runs stay on the
        same random sequence as the sampled policy.
        """
        if self.always:
            return self._chance(1.0)
        return self._chance(self.miss_window.rate * self.coefficient)


class SampledFrequencyPolicy:
    """The per-set counter update and replacement decision of Algorithm 1."""

    __slots__ = ("metadata", "threshold", "stats", "_rng")

    def __init__(
        self,
        metadata: List[FrequencySetMetadata],
        threshold: int,
        rng: DeterministicRng,
        stats: StatsSet,
    ) -> None:
        self.metadata = metadata
        self.threshold = threshold
        self.stats = stats
        self._rng = rng

    def update(self, set_index: int, page: int) -> Optional[Tuple[int, int]]:
        """Run one sampled counter update for ``page``.

        Returns ``(candidate_index, victim_way)`` when the policy orders a
        replacement (the candidate's counter beat the coldest cached page by
        more than the threshold), else ``None``.
        """
        meta = self.metadata[set_index]
        cached_way = meta.find_cached(page)
        candidate_index = meta.find_candidate(page)

        if cached_way is not None:
            meta.increment(meta.cached[cached_way])
        elif candidate_index is not None:
            slot = meta.candidates[candidate_index]
            meta.increment(slot)
            min_way, min_count = meta.min_cached()
            if slot.count > min_count + self.threshold:
                # One decision tuple per ordered replacement (threshold-gated,
                # rare by design).  # repro: allow[hotpath-alloc]
                return (candidate_index, min_way)
        else:
            self._track_new_candidate(meta, page)
        return None

    def _track_new_candidate(self, meta: FrequencySetMetadata, page: int) -> None:
        """Lines 17-23 of Algorithm 1: probabilistically start tracking ``page``."""
        if not meta.candidates:
            return
        index = self._rng.randint(0, len(meta.candidates))
        victim = meta.candidates[index]
        probability = 1.0 if not victim.valid or victim.count == 0 else 1.0 / victim.count
        if self._rng.chance(probability):
            meta.install_candidate(index, page, count=1)
            self.stats.inc("candidate_installs")
