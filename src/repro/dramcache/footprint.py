"""Footprint prediction for page-granularity DRAM caches.

Unison Cache and TDC fetch a whole page on every DRAM-cache miss, which
wastes bandwidth when only a few lines of the page are touched before
eviction ("over-fetching").  The footprint cache idea (Jevdjic et al.,
Jang et al.) predicts which lines of a page will be used and fetches only
those.  The paper models a *perfect* footprint predictor for Unison and TDC:
it profiles the average number of blocks touched per page fill and charges
that amount of replacement traffic, managed at 4-line granularity.

:class:`FootprintPredictor` reproduces that methodology online: it tracks
which lines of each resident page are actually touched, and the footprint
charged for a fill is the running average of the touched-line counts observed
at evictions (rounded up to the footprint granularity).  With enough
evictions this converges to exactly the per-workload average the paper uses.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.sim.config import CACHELINE_SIZE


class FootprintPredictor:
    """Tracks per-page touched lines and predicts fill footprints."""

    def __init__(self, page_size: int, granularity_lines: int = 4) -> None:
        if page_size <= 0 or page_size % CACHELINE_SIZE != 0:
            raise ValueError("page_size must be a positive multiple of the cacheline size")
        if granularity_lines <= 0:
            raise ValueError("granularity_lines must be positive")
        self.page_size = page_size
        self.lines_per_page = page_size // CACHELINE_SIZE
        self.granularity_lines = granularity_lines
        self._touched: Dict[int, Set[int]] = {}
        self._observed_fills = 0
        self._observed_lines = 0

    # ------------------------------------------------------------------ tracking

    def on_fill(self, page: int) -> None:
        """A page was filled into the DRAM cache; start tracking its footprint."""
        # The tracking set is retained for the page's whole residency (one
        # per fill, not per record).  # repro: allow[hotpath-alloc]
        self._touched[page] = set()

    def on_access(self, page: int, addr: int) -> None:
        """A resident page was accessed at ``addr``."""
        touched = self._touched.get(page)
        if touched is not None:
            touched.add((addr % self.page_size) // CACHELINE_SIZE)

    def on_evict(self, page: int) -> int:
        """A page was evicted; fold its observed footprint into the average.

        Returns the number of lines that were actually touched during this
        residency (useful for dirty-writeback sizing).
        """
        touched = self._touched.pop(page, None)
        lines = len(touched) if touched else 0
        self._observed_fills += 1
        self._observed_lines += max(1, lines)
        return max(1, lines)

    def touched_lines(self, page: int) -> int:
        """Lines touched so far during the current residency of ``page``."""
        touched = self._touched.get(page)
        return len(touched) if touched else 0

    # ------------------------------------------------------------------ prediction

    @property
    def average_footprint_lines(self) -> float:
        """Average observed footprint, in lines, rounded up to the granularity."""
        if self._observed_fills == 0:
            # Before any eviction has been observed, be conservative and
            # predict the full page (this is what a cold predictor would do).
            return float(self.lines_per_page)
        avg = self._observed_lines / self._observed_fills
        granule = self.granularity_lines
        rounded = ((int(avg) + granule - 1) // granule) * granule
        return float(min(self.lines_per_page, max(granule, rounded)))

    def predicted_fill_bytes(self) -> int:
        """Bytes of data a fill is charged under perfect footprint prediction."""
        return int(self.average_footprint_lines) * CACHELINE_SIZE

    def writeback_bytes(self, page: int) -> int:
        """Bytes written back when evicting a dirty page (its touched lines)."""
        lines = max(1, self.touched_lines(page))
        granule = self.granularity_lines
        rounded = ((lines + granule - 1) // granule) * granule
        return min(self.lines_per_page, rounded) * CACHELINE_SIZE
