"""Heterogeneous Memory Architecture (HMA) baseline (Meswani et al., HPCA 2015).

HMA manages the in-package DRAM entirely in software: periodically (every
100 ms to 1 s) the OS ranks all pages by access count, moves the hottest ones
into the in-package DRAM and the cold ones out, updates every PTE, flushes
all TLBs (coherence) and scrubs the remapped pages from the on-chip caches
(address consistency).  Between intervals the mapping is fixed, so the common
path has no tag or metadata traffic at all — but the scheme cannot adapt to
fine-grained temporal locality and every remap interval freezes the system.

HMA is part of the design-space discussion (Table 1) rather than the main
evaluation figures; it is implemented here for completeness and used by the
Table 1 behaviour benchmark and the examples.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Set

from repro.dram.device import DramDevice
from repro.dramcache.base import DramCacheScheme, OsServices
from repro.memctrl.request import AccessResult, MemRequest
from repro.sim.config import SystemConfig
from repro.sim.stats import TrafficCategory
from repro.util.rng import DeterministicRng
from repro.util.units import cycles_from_ms, cycles_from_us


class HmaCache(DramCacheScheme):
    """Software-managed, interval-based hot-page migration."""

    name = "hma"

    def __init__(
        self,
        config: SystemConfig,
        in_dram: DramDevice,
        off_dram: DramDevice,
        rng: Optional[DeterministicRng] = None,
        os_services: Optional[OsServices] = None,
    ) -> None:
        super().__init__(config, in_dram, off_dram, rng=rng, os_services=os_services)
        self.capacity_pages = config.in_package_dram.capacity_bytes // self.page_size
        self.interval_cycles = cycles_from_ms(config.dram_cache.hma_interval_ms, config.core.freq_ghz)
        self.remap_cost_cycles = cycles_from_us(config.dram_cache.hma_remap_cost_us, config.core.freq_ghz)
        self._resident: Set[int] = set()
        self._dirty: Set[int] = set()
        self._epoch_counts: Dict[int, int] = defaultdict(int)
        self._next_remap = self.interval_cycles

    def is_resident(self, page: int) -> bool:
        return page in self._resident

    # ------------------------------------------------------------------ access

    def access(self, now: int, request: MemRequest, mc_id: int) -> AccessResult:
        self.notify_cycle(now)
        page = request.addr // self.page_size
        if request.is_writeback:
            if page in self._resident:
                self._dirty.add(page)
                self.background_in(now, request.addr, self.line_size, TrafficCategory.WRITEBACK)
                return AccessResult(latency=0, dram_cache_hit=True, served_by="in-package")
            self.background_off(now, request.addr, self.line_size, TrafficCategory.WRITEBACK)
            return AccessResult(latency=0, dram_cache_hit=False, served_by="off-package")

        self._epoch_counts[page] += 1
        if page in self._resident:
            latency = self.read_in(now, request.addr, self.line_size, TrafficCategory.HIT_DATA)
            if request.is_write:
                self._dirty.add(page)
            self.record_hit(True)
            return AccessResult(latency=latency, dram_cache_hit=True, served_by="in-package")

        latency = self.read_off(now, request.addr, self.line_size, TrafficCategory.HIT_DATA)
        self.record_hit(False)
        return AccessResult(latency=latency, dram_cache_hit=False, served_by="off-package")

    # ------------------------------------------------------------------ periodic remap

    def notify_cycle(self, now: int) -> None:
        """Run the OS hot-page migration once per interval."""
        if now < self._next_remap:
            return
        self._next_remap = now + self.interval_cycles
        self._remap(now)

    def _remap(self, now: int) -> None:
        ranked = sorted(self._epoch_counts.items(), key=lambda item: item[1], reverse=True)
        target = {page for page, _count in ranked[: self.capacity_pages]}
        incoming = target - self._resident
        outgoing = self._resident - target

        for page in outgoing:
            page_addr = page * self.page_size
            if page in self._dirty:
                self.in_dram.record_only(self.page_size, TrafficCategory.REPLACEMENT)
                self.off_dram.record_only(self.page_size, TrafficCategory.WRITEBACK)
            self._dirty.discard(page)
            # Address consistency: the remapped page must be scrubbed from the
            # on-chip caches because HMA changes physical addresses.
            self.os.flush_page_from_caches(page_addr, self.page_size)
        for page in incoming:
            self.off_dram.record_only(self.page_size, TrafficCategory.REPLACEMENT)
            self.in_dram.record_only(self.page_size, TrafficCategory.REPLACEMENT)

        self._resident = target
        self._epoch_counts = defaultdict(int)
        self.stats.inc("remap_intervals")
        self.stats.inc("pages_migrated", len(incoming) + len(outgoing))
        # The OS routine stops every program while pages are moved.
        if incoming or outgoing:
            self.os.stall_all_cores(self.remap_cost_cycles)
