"""Heterogeneous Memory Architecture (HMA) baseline (Meswani et al., HPCA 2015).

HMA manages the in-package DRAM entirely in software: periodically (every
100 ms to 1 s) the OS ranks all pages by access count, moves the hottest ones
into the in-package DRAM and the cold ones out, updates every PTE, flushes
all TLBs (coherence) and scrubs the remapped pages from the on-chip caches
(address consistency).  Between intervals the mapping is fixed, so the common
path has no tag or metadata traffic at all — but the scheme cannot adapt to
fine-grained temporal locality and every remap interval freezes the system.

HMA is part of the design-space discussion (Table 1) rather than the main
evaluation figures; it is implemented here for completeness and used by the
Table 1 behaviour benchmark and the examples.

Mechanically the scheme is a composition of a
:class:`~repro.dramcache.components.stores.ResidentPageSet` (wholesale
membership swaps at remap time) and
:class:`~repro.dramcache.components.traffic.TransferFlows` (untimed migration
accounting — remap traffic is charged while every core is stalled).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from repro.dram.device import DramDevice
from repro.dramcache.base import DramCacheScheme, OsServices
from repro.dramcache.components.stores import ResidentPageSet
from repro.dramcache.components.traffic import TransferFlows
from repro.memctrl.request import AccessResult, MemRequest
from repro.sim.config import SystemConfig
from repro.sim.stats import TrafficCategory
from repro.util.rng import DeterministicRng
from repro.util.units import cycles_from_ms, cycles_from_us


class HmaCache(DramCacheScheme):
    """Software-managed, interval-based hot-page migration."""

    name = "hma"

    def __init__(
        self,
        config: SystemConfig,
        in_dram: DramDevice,
        off_dram: DramDevice,
        rng: Optional[DeterministicRng] = None,
        os_services: Optional[OsServices] = None,
    ) -> None:
        super().__init__(config, in_dram, off_dram, rng=rng, os_services=os_services)
        self.capacity_pages = config.in_package_dram.capacity_bytes // self.page_size
        self.interval_cycles = cycles_from_ms(config.dram_cache.hma_interval_ms, config.core.freq_ghz)
        self.remap_cost_cycles = cycles_from_us(config.dram_cache.hma_remap_cost_us, config.core.freq_ghz)
        self.store = ResidentPageSet()
        self.flows = TransferFlows(self)
        self._epoch_counts: Dict[int, int] = defaultdict(int)
        self._next_remap = self.interval_cycles

    @property
    def _resident(self):
        """The resident page set (exposed for tests and diagnostics)."""
        return self.store.pages

    def is_resident(self, page: int) -> bool:
        return self.store.is_resident(page)

    # ------------------------------------------------------------------ access

    def access(self, now: int, request: MemRequest, mc_id: int) -> AccessResult:
        self.notify_cycle(now)
        page = request.addr // self.page_size
        if request.is_writeback:
            if self.store.is_resident(page):
                self.store.mark_dirty(page)
                self.flows.writeback_to_cache(now, request.addr)
                return self._result_of(0, True, "in-package")
            self.flows.writeback_to_off(now, request.addr)
            return self._result_of(0, False, "off-package")

        self._epoch_counts[page] += 1
        if self.store.is_resident(page):
            latency = self.read_in(now, request.addr, self.line_size, TrafficCategory.HIT_DATA)
            if request.is_write:
                self.store.mark_dirty(page)
            self.record_hit(True)
            return self._result_of(latency, True, "in-package")

        latency = self.read_off(now, request.addr, self.line_size, TrafficCategory.HIT_DATA)
        self.record_hit(False)
        return self._result_of(latency, False, "off-package")

    # ------------------------------------------------------------------ periodic remap

    def notify_cycle(self, now: int) -> None:
        """Run the OS hot-page migration once per interval."""
        if now < self._next_remap:
            return
        self._next_remap = now + self.interval_cycles
        self._remap(now)

    def _remap(self, now: int) -> None:
        ranked = sorted(self._epoch_counts.items(), key=lambda item: item[1], reverse=True)
        target = {page for page, _count in ranked[: self.capacity_pages]}
        incoming, outgoing = self.store.retarget(target)

        for page in outgoing:
            if page in self.store.dirty:
                self.flows.migrate_out_record_only(self.page_size)
            self.store.dirty.discard(page)
            # Address consistency: the remapped page must be scrubbed from the
            # on-chip caches because HMA changes physical addresses.
            self.os.flush_page_from_caches(page * self.page_size, self.page_size)
        for _page in incoming:
            self.flows.migrate_in_record_only(self.page_size)

        self._epoch_counts = defaultdict(int)
        self.stats.inc("remap_intervals")
        self.stats.inc("pages_migrated", len(incoming) + len(outgoing))
        # The OS routine stops every program while pages are moved.
        if incoming or outgoing:
            self.os.stall_all_cores(self.remap_cost_cycles)
