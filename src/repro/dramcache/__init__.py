"""DRAM-cache schemes: the paper's baselines plus the scheme factory.

Banshee itself (the paper's contribution) lives in :mod:`repro.core`; the
factory here knows how to build it so that the simulator can instantiate any
scheme by name.  Parameterised *variants* of the schemes — named points of
the paper's sensitivity studies, declared as configuration overrides in
:mod:`repro.dramcache.variants` — resolve through the same factory, and the
shared mechanisms the schemes are composed from live in
:mod:`repro.dramcache.components`.
"""

from repro.dramcache.alloy import AlloyCache
from repro.dramcache.base import DramCacheScheme, OsServices
from repro.dramcache.cache_only import CacheOnly
from repro.dramcache.factory import available_schemes, create_scheme
from repro.dramcache.footprint import FootprintPredictor
from repro.dramcache.hma import HmaCache
from repro.dramcache.no_cache import NoCache
from repro.dramcache.tdc import TaglessDramCache
from repro.dramcache.unison import UnisonCache
from repro.dramcache.variants import (
    SchemeVariant,
    all_variants,
    available_scheme_names,
    register_variant,
    resolve_scheme,
)

__all__ = [
    "AlloyCache",
    "DramCacheScheme",
    "OsServices",
    "CacheOnly",
    "SchemeVariant",
    "all_variants",
    "available_scheme_names",
    "available_schemes",
    "create_scheme",
    "register_variant",
    "resolve_scheme",
    "FootprintPredictor",
    "HmaCache",
    "NoCache",
    "TaglessDramCache",
    "UnisonCache",
]
