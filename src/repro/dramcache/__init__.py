"""DRAM-cache schemes: the paper's baselines plus the scheme factory.

Banshee itself (the paper's contribution) lives in :mod:`repro.core`; the
factory here knows how to build it so that the simulator can instantiate any
scheme by name.
"""

from repro.dramcache.alloy import AlloyCache
from repro.dramcache.base import DramCacheScheme, OsServices
from repro.dramcache.cache_only import CacheOnly
from repro.dramcache.factory import create_scheme
from repro.dramcache.footprint import FootprintPredictor
from repro.dramcache.hma import HmaCache
from repro.dramcache.no_cache import NoCache
from repro.dramcache.tdc import TaglessDramCache
from repro.dramcache.unison import UnisonCache

__all__ = [
    "AlloyCache",
    "DramCacheScheme",
    "OsServices",
    "CacheOnly",
    "create_scheme",
    "FootprintPredictor",
    "HmaCache",
    "NoCache",
    "TaglessDramCache",
    "UnisonCache",
]
