"""Tagless DRAM Cache (TDC) baseline (Lee et al., ISCA 2015), idealised.

TDC tracks DRAM-cache contents through the page tables and TLBs (like
Banshee), so there is no tag traffic at all: a hit moves exactly the 64 B
demand line, a miss fetches it from off-package DRAM, both with ~1x latency.
The cache is fully associative with FIFO replacement, and replacement happens
on every miss.

Following Section 5.1.1 we model the *idealised* TDC: its hardware TLB
coherence mechanism is free, the address-consistency problem is ignored, and
it gets the same perfect footprint predictor as Unison Cache.  Even this
idealisation loses to Banshee because it still pays full replacement traffic
on every miss and FIFO can evict hot pages.

Mechanically the scheme is a composition of a
:class:`~repro.dramcache.components.stores.FifoPageStore` (residency in FIFO
order) and :class:`~repro.dramcache.components.traffic.TransferFlows`
(footprint-sized fills and dirty-page evictions) — no probe component, which
*is* the point of the design.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.device import DramDevice
from repro.dramcache.base import DramCacheScheme, OsServices
from repro.dramcache.components.stores import FifoPageStore
from repro.dramcache.components.traffic import TransferFlows
from repro.dramcache.footprint import FootprintPredictor
from repro.memctrl.request import AccessResult, MemRequest
from repro.sim.config import SystemConfig
from repro.sim.stats import TrafficCategory
from repro.util.rng import DeterministicRng


class TaglessDramCache(DramCacheScheme):
    """Fully-associative, FIFO, PTE/TLB-mapped page-granularity DRAM cache."""

    name = "tdc"

    def __init__(
        self,
        config: SystemConfig,
        in_dram: DramDevice,
        off_dram: DramDevice,
        rng: Optional[DeterministicRng] = None,
        os_services: Optional[OsServices] = None,
    ) -> None:
        super().__init__(config, in_dram, off_dram, rng=rng, os_services=os_services)
        self.store = FifoPageStore(config.in_package_dram.capacity_bytes // self.page_size)
        self.capacity_pages = self.store.capacity_pages
        self.flows = TransferFlows(self)
        self.footprint = FootprintPredictor(
            self.page_size, granularity_lines=config.dram_cache.footprint_granularity_lines
        )

    @property
    def _resident(self):
        """The FIFO residency map (exposed for tests and diagnostics)."""
        return self.store.entries

    def is_resident(self, page: int) -> bool:
        return self.store.is_resident(page)

    # ------------------------------------------------------------------ access

    def access(self, now: int, request: MemRequest, mc_id: int) -> AccessResult:
        page = request.addr // self.page_size
        if request.is_writeback:
            return self._writeback(now, request, page)

        if self.store.is_resident(page):
            latency = self.read_in(now, request.addr, self.line_size, TrafficCategory.HIT_DATA)
            if request.is_write:
                self.store.mark_dirty(page)
            self.footprint.on_access(page, request.addr)
            self.record_hit(True)
            return self._result_of(latency, True, "in-package")

        # Miss: the mapping was already known from the TLB, so the demand line
        # comes straight from off-package DRAM with no DRAM-cache probe.
        latency = self.read_off(now, request.addr, self.line_size, TrafficCategory.MISS_DATA)
        self.record_hit(False)
        self._fill(now + latency, request, page)
        return self._result_of(latency, False, "off-package")

    def _fill(self, now: int, request: MemRequest, page: int) -> None:
        """Replacement on every miss with FIFO eviction."""
        victim = self.store.pop_victim_if_full()
        if victim is not None:
            victim_page, victim_dirty = victim
            if victim_dirty:
                dirty_bytes = self.footprint.writeback_bytes(victim_page)
                self.flows.evict_dirty_to_off(now, victim_page * self.page_size, dirty_bytes)
                self.stats.inc("dirty_page_evictions")
            self.footprint.on_evict(victim_page)
            self.stats.inc("page_evictions")

        self.store.insert(page, request.is_write)
        self.footprint.on_fill(page)
        self.footprint.on_access(page, request.addr)
        fill_bytes = self.footprint.predicted_fill_bytes()
        self.flows.fill_from_off(now, page * self.page_size, fill_bytes)
        self.stats.inc("page_fills")
        self.stats.inc("fill_bytes", fill_bytes)

    def _writeback(self, now: int, request: MemRequest, page: int) -> AccessResult:
        # The mapping is known from the PTE/TLB extension, so no tag probe.
        if self.store.is_resident(page):
            self.store.mark_dirty(page)
            self.flows.writeback_to_cache(now, request.addr)
            self.footprint.on_access(page, request.addr)
            return self._result_of(0, True, "in-package")
        self.flows.writeback_to_off(now, request.addr)
        return self._result_of(0, False, "off-package")
