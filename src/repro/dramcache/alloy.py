"""Alloy Cache baseline (Qureshi & Loh, MICRO 2012) with BEAR optimisations.

Alloy Cache is a direct-mapped, cacheline-granularity DRAM cache that stores
each line's tag adjacent to its data ("TAD"), so a hit reads tag+data in a
single DRAM access — 96 bytes on an HBM-style link with a 32 B minimum
transfer (Table 1).  On a miss the speculative tag+data read is wasted and
the demand line is fetched from off-package DRAM.

The BEAR additions modelled here, following Section 5.1.1 of the Banshee
paper:

* *stochastic cache fills* — a missing line is inserted only with probability
  ``alloy_replacement_probability`` (1.0 for "Alloy 1", 0.1 for "Alloy 0.1");
* *bandwidth-efficient writeback probe* — an LLC dirty eviction first probes
  only the tag (32 B) and writes the 64 B line to the DRAM cache only when it
  is present, otherwise the line goes straight to off-package DRAM.

The paper disables the original Alloy optimisation of issuing the in- and
off-package accesses in parallel on a miss (it hurts when off-package
bandwidth is scarce); we follow that and serialise them.

Mechanically the scheme is a composition of a
:class:`~repro.dramcache.components.stores.DirectMappedLineStore` (residency),
a :class:`~repro.dramcache.components.traffic.TagProbe` (TAD reads and the
BEAR writeback probe) and :class:`~repro.dramcache.components.traffic.TransferFlows`
(fills and dirty-victim writebacks).
"""

from __future__ import annotations

from typing import Optional

from repro.dram.device import DramDevice
from repro.dramcache.base import DramCacheScheme, OsServices
from repro.dramcache.components.stores import DirectMappedLineStore
from repro.dramcache.components.traffic import TagProbe, TransferFlows
from repro.memctrl.request import AccessResult, MemRequest
from repro.sim.config import SystemConfig
from repro.sim.stats import TrafficCategory
from repro.util.rng import DeterministicRng


class AlloyCache(DramCacheScheme):
    """Direct-mapped, line-granularity DRAM cache with stochastic fills."""

    name = "alloy"

    def __init__(
        self,
        config: SystemConfig,
        in_dram: DramDevice,
        off_dram: DramDevice,
        rng: Optional[DeterministicRng] = None,
        os_services: Optional[OsServices] = None,
    ) -> None:
        super().__init__(config, in_dram, off_dram, rng=rng, os_services=os_services)
        # One tag+data frame per cacheline of in-package capacity.  The TAD
        # layout stores 8 B of tag next to each 64 B line; we keep the
        # conventional simplification of ignoring the resulting ~11% capacity
        # loss (it is identical for Alloy 1 and Alloy 0.1).
        self.store = DirectMappedLineStore(config.in_package_dram.capacity_bytes // self.line_size)
        self.num_frames = self.store.num_frames
        self.fill_probability = config.dram_cache.alloy_replacement_probability
        self.probe = TagProbe(self)
        self.flows = TransferFlows(self)
        self.balancer = None
        if config.dram_cache.bandwidth_balance:
            from repro.core.bandwidth_balancer import BandwidthBalancer

            self.balancer = BandwidthBalancer(
                in_dram, off_dram, target_in_fraction=config.dram_cache.bandwidth_balance_target
            )

    # ------------------------------------------------------------------ internals

    def is_resident(self, page: int) -> bool:
        """Residency of the *line-sized* block whose number is ``page``."""
        return self.store.is_resident(page)

    # ------------------------------------------------------------------ access

    def access(self, now: int, request: MemRequest, mc_id: int) -> AccessResult:
        line = request.line
        line_addr = line * self.line_size
        if request.is_writeback:
            return self._writeback(now, line, line_addr)

        store = self.store
        frame = store.frame_of(line)
        resident = store.hit(frame, line)

        if resident:
            served_by = "in-package"
            if (
                self.balancer is not None
                and not request.is_write
                and not store.is_dirty(frame)
                and self.balancer.should_redirect(self.rng.random())
            ):
                # Bandwidth balancing (Section 5.4.2): serve this clean hit
                # from off-package DRAM to relieve the in-package channels.
                latency = self.read_off(now, line_addr, self.line_size, TrafficCategory.HIT_DATA)
                served_by = "off-package"
            else:
                # One TAD read returns tag + data: 96 B on the wire.
                latency = self.probe.hit_read(now, line_addr)
            if request.is_write:
                store.mark_dirty(frame)
            self.record_hit(True)
            return self._result_of(latency, True, served_by)

        # Miss: the speculative TAD read is wasted, then fetch from off-package.
        spec_latency = self.probe.speculative_read(now, line_addr)
        off_latency = self.read_off(now + spec_latency, line_addr, self.line_size, TrafficCategory.MISS_DATA)
        latency = spec_latency + off_latency
        self.record_hit(False)

        if self.rng.chance(self.fill_probability):
            self._fill(now + latency, frame, line, line_addr, request.is_write)
        return self._result_of(latency, False, "off-package")

    def _fill(self, now: int, frame: int, line: int, line_addr: int, dirty: bool) -> None:
        victim, victim_dirty = self.store.install(frame, line, dirty)
        if victim_dirty:
            # The evicted line is dirty: it must be written to off-package DRAM.
            self.flows.evict_dirty_to_off(now, victim * self.line_size, self.line_size)
            self.stats.inc("dirty_victim_writebacks")
        # Fill writes the 64 B line and its tag into the TAD frame.
        self.flows.fill_in_only(now, line_addr, self.line_size)
        self.flows.fill_metadata(now, line_addr)
        self.stats.inc("fills")

    def _writeback(self, now: int, line: int, line_addr: int) -> AccessResult:
        # BEAR writeback probe: read only the tag first.
        self.probe.probe(now, line_addr)
        if self.store.is_resident(line):
            self.flows.writeback_to_cache(now, line_addr)
            self.store.mark_dirty(self.store.frame_of(line))
            self.stats.inc("writeback_hits")
            return self._result_of(0, True, "in-package")
        self.flows.writeback_to_off(now, line_addr)
        self.stats.inc("writeback_misses")
        return self._result_of(0, False, "off-package")
