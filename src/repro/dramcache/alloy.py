"""Alloy Cache baseline (Qureshi & Loh, MICRO 2012) with BEAR optimisations.

Alloy Cache is a direct-mapped, cacheline-granularity DRAM cache that stores
each line's tag adjacent to its data ("TAD"), so a hit reads tag+data in a
single DRAM access — 96 bytes on an HBM-style link with a 32 B minimum
transfer (Table 1).  On a miss the speculative tag+data read is wasted and
the demand line is fetched from off-package DRAM.

The BEAR additions modelled here, following Section 5.1.1 of the Banshee
paper:

* *stochastic cache fills* — a missing line is inserted only with probability
  ``alloy_replacement_probability`` (1.0 for "Alloy 1", 0.1 for "Alloy 0.1");
* *bandwidth-efficient writeback probe* — an LLC dirty eviction first probes
  only the tag (32 B) and writes the 64 B line to the DRAM cache only when it
  is present, otherwise the line goes straight to off-package DRAM.

The paper disables the original Alloy optimisation of issuing the in- and
off-package accesses in parallel on a miss (it hurts when off-package
bandwidth is scarce); we follow that and serialise them.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.device import DramDevice
from repro.dramcache.base import TAG_ACCESS_BYTES, DramCacheScheme, OsServices
from repro.memctrl.request import AccessResult, MemRequest
from repro.sim.config import SystemConfig
from repro.sim.stats import TrafficCategory
from repro.util.rng import DeterministicRng


class AlloyCache(DramCacheScheme):
    """Direct-mapped, line-granularity DRAM cache with stochastic fills."""

    name = "alloy"

    def __init__(
        self,
        config: SystemConfig,
        in_dram: DramDevice,
        off_dram: DramDevice,
        rng: Optional[DeterministicRng] = None,
        os_services: Optional[OsServices] = None,
    ) -> None:
        super().__init__(config, in_dram, off_dram, rng=rng, os_services=os_services)
        # One tag+data frame per cacheline of in-package capacity.  The TAD
        # layout stores 8 B of tag next to each 64 B line; we keep the
        # conventional simplification of ignoring the resulting ~11% capacity
        # loss (it is identical for Alloy 1 and Alloy 0.1).
        self.num_frames = config.in_package_dram.capacity_bytes // self.line_size
        if self.num_frames <= 0:
            raise ValueError("in-package DRAM too small for even one line")
        self.fill_probability = config.dram_cache.alloy_replacement_probability
        self._tags = {}
        self._dirty = set()
        self.balancer = None
        if config.dram_cache.bandwidth_balance:
            from repro.core.bandwidth_balancer import BandwidthBalancer

            self.balancer = BandwidthBalancer(
                in_dram, off_dram, target_in_fraction=config.dram_cache.bandwidth_balance_target
            )

    # ------------------------------------------------------------------ internals

    def _frame_of(self, line: int) -> int:
        return line % self.num_frames

    def is_resident(self, page: int) -> bool:
        """Residency of the *line-sized* block whose number is ``page``."""
        frame = self._frame_of(page)
        return self._tags.get(frame) == page

    def _line_resident(self, line: int) -> bool:
        return self._tags.get(self._frame_of(line)) == line

    # ------------------------------------------------------------------ access

    def access(self, now: int, request: MemRequest, mc_id: int) -> AccessResult:
        line = request.line
        line_addr = line * self.line_size
        if request.is_writeback:
            return self._writeback(now, line, line_addr)

        frame = self._frame_of(line)
        resident = self._tags.get(frame) == line

        if resident:
            served_by = "in-package"
            if (
                self.balancer is not None
                and not request.is_write
                and frame not in self._dirty
                and self.balancer.should_redirect(self.rng.random())
            ):
                # Bandwidth balancing (Section 5.4.2): serve this clean hit
                # from off-package DRAM to relieve the in-package channels.
                latency = self.read_off(now, line_addr, self.line_size, TrafficCategory.HIT_DATA)
                served_by = "off-package"
            else:
                # One TAD read returns tag + data: 96 B on the wire.
                latency = self.read_in(now, line_addr, self.line_size, TrafficCategory.HIT_DATA)
                self.background_in(now, line_addr, TAG_ACCESS_BYTES, TrafficCategory.TAG)
            if request.is_write:
                self._dirty.add(frame)
            self.record_hit(True)
            return AccessResult(latency=latency, dram_cache_hit=True, served_by=served_by)

        # Miss: the speculative TAD read is wasted, then fetch from off-package.
        spec_latency = self.read_in(now, line_addr, self.line_size, TrafficCategory.MISS_DATA)
        self.background_in(now, line_addr, TAG_ACCESS_BYTES, TrafficCategory.TAG)
        off_latency = self.read_off(now + spec_latency, line_addr, self.line_size, TrafficCategory.MISS_DATA)
        latency = spec_latency + off_latency
        self.record_hit(False)

        if self.rng.chance(self.fill_probability):
            self._fill(now + latency, frame, line, line_addr, request.is_write)
        return AccessResult(latency=latency, dram_cache_hit=False, served_by="off-package")

    def _fill(self, now: int, frame: int, line: int, line_addr: int, dirty: bool) -> None:
        victim = self._tags.get(frame)
        if victim is not None and frame in self._dirty:
            # The evicted line is dirty: it must be written to off-package DRAM.
            victim_addr = victim * self.line_size
            self.background_in(now, victim_addr, self.line_size, TrafficCategory.REPLACEMENT)
            self.background_off(now, victim_addr, self.line_size, TrafficCategory.WRITEBACK)
            self.stats.inc("dirty_victim_writebacks")
        self._dirty.discard(frame)
        self._tags[frame] = line
        if dirty:
            self._dirty.add(frame)
        # Fill writes the 64 B line and its tag into the TAD frame.
        self.background_in(now, line_addr, self.line_size, TrafficCategory.REPLACEMENT)
        self.background_in(now, line_addr, TAG_ACCESS_BYTES, TrafficCategory.REPLACEMENT)
        self.stats.inc("fills")

    def _writeback(self, now: int, line: int, line_addr: int) -> AccessResult:
        # BEAR writeback probe: read only the tag first.
        self.background_in(now, line_addr, TAG_ACCESS_BYTES, TrafficCategory.TAG)
        if self._line_resident(line):
            self.background_in(now, line_addr, self.line_size, TrafficCategory.WRITEBACK)
            self._dirty.add(self._frame_of(line))
            self.stats.inc("writeback_hits")
            return AccessResult(latency=0, dram_cache_hit=True, served_by="in-package")
        self.background_off(now, line_addr, self.line_size, TrafficCategory.WRITEBACK)
        self.stats.inc("writeback_misses")
        return AccessResult(latency=0, dram_cache_hit=False, served_by="off-package")
