"""The CacheOnly baseline: an in-package DRAM of infinite capacity.

This is the upper bound used in Figure 4.  Note the paper's observation that
CacheOnly is *not* always the best configuration: it has no off-package
DRAM, so its total bandwidth is lower than a scheme that can also stream from
off-package memory (Section 5.2) — the same effect reproduces here because
all traffic is forced onto the in-package channels.
"""

from __future__ import annotations

from repro.dramcache.base import DramCacheScheme
from repro.memctrl.request import AccessResult, MemRequest
from repro.sim.stats import TrafficCategory


class CacheOnly(DramCacheScheme):
    """Every LLC miss and writeback hits in an infinitely large in-package DRAM."""

    name = "cacheonly"

    def access(self, now: int, request: MemRequest, mc_id: int) -> AccessResult:
        if request.is_writeback:
            self.background_in(now, request.addr, self.line_size, TrafficCategory.WRITEBACK)
            return self._result_of(0, None, "in-package")
        latency = self.read_in(now, request.addr, self.line_size, TrafficCategory.HIT_DATA)
        self.record_hit(True)
        return self._result_of(latency, True, "in-package")

    def is_resident(self, page: int) -> bool:
        return True
