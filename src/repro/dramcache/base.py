"""Common machinery for DRAM-cache schemes.

Every scheme receives the two DRAM devices (in-package and off-package), the
system configuration and a deterministic RNG.  A scheme's job, for every
request that misses the LLC (demand access or dirty writeback), is to:

* decide whether the request hits in the in-package DRAM cache,
* issue the DRAM accesses the design would perform (data, tags, metadata,
  replacement traffic), with the correct byte counts and categories, and
* return the latency seen by the requesting core.

Traffic for operations that are off the critical path (fills, writebacks,
replacement moves) is still issued against the DRAM channels — it consumes
bandwidth and therefore delays later requests — but its latency is not added
to the triggering request.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple

from repro.dram.device import DramDevice
from repro.memctrl.request import AccessResult, MemRequest
from repro.sim.config import SystemConfig
from repro.sim.stats import StatsSet, TrafficCategory
from repro.util.rng import DeterministicRng

LINE_SIZE = 64
TAG_ACCESS_BYTES = 32


class OsServices:
    """Callbacks into the operating system / rest of the system.

    The scheme must not know about cores, TLBs or the page table directly;
    the :class:`repro.sim.system.System` implements these callbacks.  A
    default no-op implementation is provided so schemes can be unit-tested in
    isolation.
    """

    def pte_update_batch(self, initiator_core: int, updates: List[Tuple[int, bool, int]]) -> None:
        """Apply a batch of (page, cached, way) mapping updates to the PTEs.

        Called when a Banshee tag buffer reaches its flush threshold.  The
        system charges the software-routine cost and the TLB shootdown here.
        """

    def stall_all_cores(self, cycles: int) -> None:
        """Stall every core for ``cycles`` (used by the HMA baseline)."""

    def flush_page_from_caches(self, page_addr: int, page_size: int) -> int:
        """Scrub a page from the on-chip caches; returns number of dirty lines."""
        return 0


class DramCacheScheme(ABC):
    """Base class for all DRAM-cache schemes."""

    name = "base"

    def __init__(
        self,
        config: SystemConfig,
        in_dram: DramDevice,
        off_dram: DramDevice,
        rng: Optional[DeterministicRng] = None,
        os_services: Optional[OsServices] = None,
    ) -> None:
        self.config = config
        self.cache_config = config.dram_cache
        self.in_dram = in_dram
        self.off_dram = off_dram
        self.rng = rng if rng is not None else DeterministicRng(config.seed)
        self.os = os_services if os_services is not None else OsServices()
        self.stats = StatsSet(self.name)
        self.line_size = config.cacheline_size
        self.page_size = config.dram_cache.page_size
        # Bound device-access methods, hoisted once: every LLC miss funnels
        # through read_in/read_off/background_*, so the repeated
        # ``self.in_dram.access_latency`` attribute chain is worth removing.
        self._in_access = self.in_dram.access_latency
        self._off_access = self.off_dram.access_latency
        # Preallocated result record, returned by ``_result_of``: the System
        # reads ``latency`` synchronously before issuing the next request and
        # never retains a result, so one mutated-in-place instance per scheme
        # replaces an AccessResult allocation per LLC miss and writeback.
        self._result = AccessResult(latency=0)

    # ------------------------------------------------------------------ interface

    @abstractmethod
    def access(self, now: int, request: MemRequest, mc_id: int) -> AccessResult:
        """Handle one LLC miss or writeback arriving at controller ``mc_id``."""

    def set_os_services(self, os_services: OsServices) -> None:
        """Install the system's OS-callback implementation."""
        self.os = os_services

    def notify_cycle(self, now: int) -> None:
        """Give periodic schemes (HMA) a chance to act; default is a no-op."""

    def finalize(self, now: int) -> None:
        """Hook called at the end of simulation; default is a no-op."""

    def is_resident(self, page: int) -> bool:
        """Ground-truth residency query used by tests; default: never resident."""
        return False

    # ------------------------------------------------------------------ helpers

    def _result_of(
        self, latency: int, dram_cache_hit: Optional[bool], served_by: str
    ) -> AccessResult:
        """Fill and return the scheme's reused :class:`AccessResult`.

        The returned object is only valid until the next ``access`` call on
        this scheme; callers that need to retain a result must copy its
        fields (the hot path — :meth:`repro.sim.system.System.process_record`
        — reads ``latency`` immediately and drops the reference).
        """
        result = self._result
        result.latency = latency
        result.dram_cache_hit = dram_cache_hit
        result.served_by = served_by
        return result

    def record_hit(self, hit: bool) -> None:
        """Track demand hit/miss counts for MPKI and miss-rate reporting."""
        if hit:
            self.stats.inc("dram_cache_hits")
        else:
            self.stats.inc("dram_cache_misses")

    @property
    def demand_accesses(self) -> int:
        """Number of demand accesses seen so far."""
        return int(self.stats.get("dram_cache_hits") + self.stats.get("dram_cache_misses"))

    @property
    def miss_rate(self) -> float:
        """Demand miss rate so far."""
        total = self.demand_accesses
        if total == 0:
            return 0.0
        return self.stats.get("dram_cache_misses") / total

    def read_in(self, now: int, addr: int, num_bytes: int, category: TrafficCategory) -> int:
        """Access the in-package DRAM, returning latency."""
        return self._in_access(now, addr, num_bytes, category)

    def read_off(self, now: int, addr: int, num_bytes: int, category: TrafficCategory) -> int:
        """Access the off-package DRAM, returning latency."""
        return self._off_access(now, addr, num_bytes, category)

    def background_in(self, now: int, addr: int, num_bytes: int, category: TrafficCategory) -> None:
        """In-package access whose latency is off the critical path."""
        self._in_access(now, addr, num_bytes, category, background=True)

    def background_off(self, now: int, addr: int, num_bytes: int, category: TrafficCategory) -> None:
        """Off-package access whose latency is off the critical path."""
        self._off_access(now, addr, num_bytes, category, background=True)

    def traffic_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-device traffic breakdown (bytes)."""
        return {
            "in-package": self.in_dram.traffic.breakdown(),
            "off-package": self.off_dram.traffic.breakdown(),
        }
