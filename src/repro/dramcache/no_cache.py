"""The NoCache baseline: the system only has off-package DRAM.

Speedups in Figure 4 of the paper are normalised to this configuration.
"""

from __future__ import annotations

from repro.dramcache.base import DramCacheScheme
from repro.memctrl.request import AccessResult, MemRequest
from repro.sim.stats import TrafficCategory


class NoCache(DramCacheScheme):
    """Every LLC miss and writeback is served by off-package DRAM."""

    name = "nocache"

    def access(self, now: int, request: MemRequest, mc_id: int) -> AccessResult:
        if request.is_writeback:
            self.background_off(now, request.addr, self.line_size, TrafficCategory.WRITEBACK)
            return self._result_of(0, None, "off-package")
        latency = self.read_off(now, request.addr, self.line_size, TrafficCategory.HIT_DATA)
        self.record_hit(False)
        return self._result_of(latency, False, "off-package")
