"""Banshee: the paper's primary contribution.

This package contains the Banshee DRAM-cache scheme and its building blocks:

* :class:`repro.core.tag_buffer.TagBuffer` — the per-memory-controller table
  of recently remapped pages that enables lazy TLB/PTE coherence.
* :class:`repro.core.frequency.FrequencySetMetadata` — the per-set metadata
  row (4 cached + 5 candidate pages with frequency counters).
* :class:`repro.core.banshee.BansheeCache` — the scheme itself, including
  the sampling-based counter updates and bandwidth-aware replacement of
  Section 4, the policy ablations of Figure 7, and large-page support.
* :class:`repro.core.bandwidth_balancer.BandwidthBalancer` — the BATMAN-style
  extension of Section 5.4.2.
"""

from repro.core.bandwidth_balancer import BandwidthBalancer
from repro.core.frequency import FrequencySetMetadata, MetadataSlot
from repro.core.large_pages import PartitionPlan, plan_partitions
from repro.core.pte_extension import PteUpdateBatcher
from repro.core.tag_buffer import TagBuffer, TagBufferEntry


def __getattr__(name: str):
    # BansheeCache composes repro.dramcache.components, which in turn builds
    # on the tag-buffer/PTE machinery of this package.  Loading the scheme
    # lazily keeps ``import repro.core`` (triggered by any submodule import)
    # from closing that loop into a circular import.
    if name in ("BansheeCache", "BansheePartition"):
        from repro.core import banshee

        return getattr(banshee, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BandwidthBalancer",
    "BansheeCache",
    "BansheePartition",
    "FrequencySetMetadata",
    "MetadataSlot",
    "PartitionPlan",
    "plan_partitions",
    "PteUpdateBatcher",
    "TagBuffer",
    "TagBufferEntry",
]
