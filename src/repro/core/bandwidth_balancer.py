"""Bandwidth balancing extension (Section 5.4.2, after BATMAN).

When nearly all traffic goes to the in-package DRAM, its channels saturate
while the off-package channels idle; total system bandwidth is then lower
than the sum of the two.  BATMAN addresses this by steering some accesses
away from the in-package DRAM when its share of total traffic exceeds a
target (80% in the paper).

:class:`BandwidthBalancer` implements the decision logic: it watches the
byte counters of both devices over a sliding window and, when the in-package
share exceeds the target, asks the cache scheme to serve a fraction of its
(clean) hits from off-package DRAM instead.  The redirection probability is
proportional to how far the share is above target, so the system settles
near the target split.
"""

from __future__ import annotations

from repro.dram.device import DramDevice


class BandwidthBalancer:
    """BATMAN-style traffic steering between in- and off-package DRAM."""

    def __init__(
        self,
        in_dram: DramDevice,
        off_dram: DramDevice,
        target_in_fraction: float = 0.8,
        window_bytes: int = 1 << 20,
    ) -> None:
        if not 0.0 < target_in_fraction <= 1.0:
            raise ValueError("target_in_fraction must be in (0, 1]")
        if window_bytes <= 0:
            raise ValueError("window_bytes must be positive")
        self.in_dram = in_dram
        self.off_dram = off_dram
        self.target = target_in_fraction
        self.window_bytes = window_bytes
        self._last_in = 0
        self._last_off = 0
        self._redirect_probability = 0.0
        self.redirected = 0
        self.evaluations = 0

    def _update_window(self) -> None:
        in_total = self.in_dram.traffic.total_bytes
        off_total = self.off_dram.traffic.total_bytes
        delta_in = in_total - self._last_in
        delta_off = off_total - self._last_off
        if delta_in + delta_off < self.window_bytes:
            return
        self.evaluations += 1
        share = delta_in / max(1, delta_in + delta_off)
        if share > self.target:
            # Steer the excess share away from the in-package DRAM.
            self._redirect_probability = min(0.5, (share - self.target) / max(share, 1e-9))
        else:
            self._redirect_probability = 0.0
        self._last_in = in_total
        self._last_off = off_total

    @property
    def redirect_probability(self) -> float:
        """Current probability that a clean hit should be served off-package."""
        return self._redirect_probability

    def should_redirect(self, chance: float) -> bool:
        """Decide whether one clean hit should be redirected.

        ``chance`` is a uniform random draw in [0, 1) supplied by the caller
        so that the balancer itself stays deterministic and stateless with
        respect to random streams.
        """
        self._update_window()
        if self._redirect_probability <= 0.0:
            return False
        redirect = chance < self._redirect_probability
        if redirect:
            self.redirected += 1
        return redirect
