"""Large-page support: DRAM-cache partitioning between 4 KB and 2 MB pages.

Section 4.3: Banshee manages large (2 MB) pages with the same PTE/TLB
mechanism as regular pages.  The DRAM cache is partitioned into a regular
portion and a large-page portion (by the OS, at context-switch time or from
runtime statistics); each page maps to a single memory controller; and the
large-page partition uses a smaller sampling coefficient and a larger
replacement threshold because moving a 2 MB page is far more expensive.

``plan_partitions`` computes the static partition used by the simulator from
``DramCacheConfig.large_page_fraction``.  The paper observes that workloads
tend to use either almost-only large pages or almost none, so a static split
per run is representative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.config import DramCacheConfig


@dataclass
class PartitionPlan:
    """Capacity assigned to one page size."""

    page_size: int
    capacity_bytes: int
    ways: int
    sampling_coefficient: float

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        if self.ways <= 0:
            raise ValueError("ways must be positive")

    @property
    def num_pages(self) -> int:
        """Page frames available in this partition."""
        return self.capacity_bytes // self.page_size

    @property
    def num_sets(self) -> int:
        """Sets in this partition (at least 1 when any capacity is assigned)."""
        if self.num_pages == 0:
            return 0
        return max(1, self.num_pages // self.ways)


def plan_partitions(config: DramCacheConfig, capacity_bytes: int) -> List[PartitionPlan]:
    """Split the DRAM-cache capacity between regular and large pages.

    A fraction of ``large_page_fraction`` of the capacity (rounded down to a
    whole number of large pages) is given to the 2 MB partition; the rest goes
    to the 4 KB partition.  Fractions of 0.0 and 1.0 dedicate the whole cache
    to one page size.
    """
    if capacity_bytes <= 0:
        raise ValueError("capacity_bytes must be positive")
    large_bytes = int(capacity_bytes * config.large_page_fraction)
    large_bytes -= large_bytes % config.large_page_size
    large_bytes = max(0, min(capacity_bytes, large_bytes))
    small_bytes = capacity_bytes - large_bytes

    plans = [
        PartitionPlan(
            page_size=config.page_size,
            capacity_bytes=small_bytes,
            ways=config.ways,
            sampling_coefficient=config.sampling_coefficient,
        )
    ]
    if large_bytes > 0:
        large_ways = min(config.ways, max(1, large_bytes // config.large_page_size))
        plans.append(
            PartitionPlan(
                page_size=config.large_page_size,
                capacity_bytes=large_bytes,
                ways=large_ways,
                sampling_coefficient=config.large_page_sampling_coefficient,
            )
        )
    return plans
