"""The Banshee DRAM-cache scheme (Sections 3 and 4 of the paper).

Banshee combines:

* PTE/TLB-based content tracking — requests carry the cached/way bits, so a
  hit moves exactly the 64 B demand line and a miss goes straight to
  off-package DRAM (no probe), both with ~1x latency (Table 1);
* per-memory-controller tag buffers providing lazy TLB/PTE coherence
  (:class:`~repro.dramcache.components.coherence.TagBufferCoherence` over
  :mod:`repro.core.tag_buffer` and :mod:`repro.core.pte_extension`);
* a frequency-based replacement policy with sampled counter updates and a
  replacement threshold that only brings in pages whose expected benefit
  outweighs the replacement traffic (Algorithm 1, as
  :class:`~repro.dramcache.components.replacement.SampledFrequencyPolicy`
  gated by :class:`~repro.dramcache.components.replacement.AdaptiveSampler`);
* large-page (2 MB) support via DRAM-cache partitioning
  (:mod:`repro.core.large_pages`);
* an optional BATMAN-style bandwidth balancer (Section 5.4.2).

Two ablations of the replacement policy are selectable through
``DramCacheConfig.banshee_policy`` to reproduce Figure 7:

* ``"lru"`` — page-granularity LRU with replacement on every miss (like
  Unison but without a footprint cache and without tag lookups);
* ``"fbr-nosample"`` — frequency-based replacement whose counters are read
  and written on *every* DRAM-cache access (like CHOP);
* ``"fbr-sample"`` — the full Banshee policy (default).

The demand path stays hand-inlined (it is the simulator's hottest scheme
path); everything stateful it dispatches to — residency, metadata traffic,
replacement decisions, fills/evictions, mapping coherence — lives in
:mod:`repro.dramcache.components`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.replacement import LruPolicy
from repro.core.bandwidth_balancer import BandwidthBalancer
from repro.core.frequency import INVALID_PAGE, FrequencySetMetadata
from repro.core.large_pages import PartitionPlan, plan_partitions
from repro.dram.device import DramDevice
from repro.dramcache.base import DramCacheScheme, OsServices
from repro.dramcache.components.coherence import TagBufferCoherence
from repro.dramcache.components.replacement import AdaptiveSampler, SampledFrequencyPolicy
from repro.dramcache.components.stores import PageDirectory
from repro.dramcache.components.traffic import (
    METADATA_ACCESS_BYTES,
    MetadataChannel,
    TagProbe,
    TransferFlows,
)
from repro.memctrl.request import AccessResult, MappingInfo, MemRequest
from repro.sim.config import SystemConfig
from repro.sim.stats import MissRateWindow, TrafficCategory
from repro.util.rng import DeterministicRng

__all__ = ["METADATA_ACCESS_BYTES", "BansheeCache", "BansheePartition"]

#: Shared read-only mapping used when a request carries none (unit tests and
#: direct scheme drivers; the simulated System always attaches a mapping).
#: ``_demand`` only reads ``cached``/``way``, so one module-level instance
#: replaces a per-access fallback allocation.
_DEFAULT_MAPPING = MappingInfo()


class BansheePartition:
    """State of the DRAM cache for one page size (regular or large pages)."""

    def __init__(self, plan: PartitionPlan, config: SystemConfig, policy: str) -> None:
        self.plan = plan
        self.page_size = plan.page_size
        self.ways = plan.ways
        self.num_sets = max(1, plan.num_sets)
        self.capacity_pages = plan.num_pages
        self.policy = policy
        self.sampling_coefficient = plan.sampling_coefficient
        self.threshold = config.dram_cache.effective_threshold(plan.page_size, plan.sampling_coefficient)
        self.counter_max = config.dram_cache.counter_max
        num_candidates = config.dram_cache.num_candidates
        self.metadata: List[FrequencySetMetadata] = [
            FrequencySetMetadata(self.ways, num_candidates, self.counter_max) for _ in range(self.num_sets)
        ]
        self.directory = PageDirectory()
        # The directory's containers double as this partition's public
        # ``resident``/``dirty`` views (shared objects, not copies).
        self.resident: Dict[int, int] = self.directory.pages
        self.dirty: set = self.directory.dirty
        self.lru = LruPolicy(self.num_sets, self.ways) if policy == "lru" else None
        # Reused validity vector for the LRU ablation's victim search.
        self._valid_scratch: List[bool] = [False] * self.ways
        # Wired by BansheeCache.__init__ (they need the scheme's shared
        # miss-rate window, RNG and stats); kept on the partition so the
        # demand hot path reaches them without a per-access dict lookup.
        self.sampler: Optional[AdaptiveSampler] = None
        self.fbr: Optional[SampledFrequencyPolicy] = None

    def set_of(self, page: int) -> int:
        """DRAM-cache set holding ``page``."""
        return page % self.num_sets

    def is_resident(self, page: int) -> bool:
        """Ground-truth residency."""
        return page in self.resident

    def way_of(self, page: int) -> int:
        """Way where ``page`` resides (page must be resident)."""
        return self.resident[page]

    def mark_dirty(self, page: int) -> None:
        """Record that the resident copy of ``page`` has been modified."""
        self.directory.mark_dirty(page)

    def occupancy(self) -> int:
        """Number of resident pages."""
        return self.directory.occupancy()


class BansheeCache(DramCacheScheme):
    """The Banshee DRAM cache."""

    name = "banshee"

    def __init__(
        self,
        config: SystemConfig,
        in_dram: DramDevice,
        off_dram: DramDevice,
        rng: Optional[DeterministicRng] = None,
        os_services: Optional[OsServices] = None,
    ) -> None:
        super().__init__(config, in_dram, off_dram, rng=rng, os_services=os_services)
        cache_config = config.dram_cache
        self.policy = cache_config.banshee_policy
        plans = plan_partitions(cache_config, config.in_package_dram.capacity_bytes)
        self._partitions: Dict[int, BansheePartition] = {
            plan.page_size: BansheePartition(plan, config, self.policy) for plan in plans if plan.capacity_bytes > 0
        }
        self.coherence = TagBufferCoherence(
            num_controllers=config.num_mem_controllers,
            entries=cache_config.tag_buffer_entries,
            ways=cache_config.tag_buffer_ways,
            flush_threshold=cache_config.tag_buffer_flush_threshold,
            os_services=self.os,
            stats=self.stats,
        )
        self.tag_buffers = self.coherence.tag_buffers
        self.pte_updater = self.coherence.pte_updater
        self.metadata_channel = MetadataChannel(self)
        self.tag_probe = TagProbe(self)
        self.flows = TransferFlows(self)
        self.miss_window = MissRateWindow(window=2048, initial_rate=1.0)
        for partition in self._partitions.values():
            partition.sampler = AdaptiveSampler(
                self.miss_window,
                partition.sampling_coefficient,
                self.rng,
                always=(self.policy == "fbr-nosample"),
            )
            partition.fbr = SampledFrequencyPolicy(
                partition.metadata, partition.threshold, self.rng, self.stats
            )
        self.balancer: Optional[BandwidthBalancer] = None
        if cache_config.bandwidth_balance:
            self.balancer = BandwidthBalancer(
                in_dram, off_dram, target_in_fraction=cache_config.bandwidth_balance_target
            )

    # ------------------------------------------------------------------ wiring

    def set_os_services(self, os_services: OsServices) -> None:
        super().set_os_services(os_services)
        self.coherence.set_os_services(os_services)

    def partition_for(self, page_size: int) -> BansheePartition:
        """The partition managing pages of ``page_size``."""
        partition = self._partitions.get(page_size)
        if partition is not None:
            return partition
        # Requests for an unplanned page size fall back to the first
        # partition (e.g. a 2 MB request when no large partition was planned);
        # the request is still served correctly, only capacity is shared.
        return next(iter(self._partitions.values()))

    def is_resident(self, page: int) -> bool:
        partition = self.partition_for(self.page_size)
        return partition.is_resident(page)

    # ------------------------------------------------------------------ access path

    def access(self, now: int, request: MemRequest, mc_id: int) -> AccessResult:
        partition = self.partition_for(request.page_size)
        page = request.addr // partition.page_size
        if request.is_writeback:
            return self._writeback(now, request, page, partition, mc_id)
        return self._demand(now, request, page, partition, mc_id)

    def _demand(
        self, now: int, request: MemRequest, page: int, partition: BansheePartition, mc_id: int
    ) -> AccessResult:
        entry = self.coherence.lookup(mc_id, page)
        if entry is not None:
            carried_cached, carried_way = entry.cached, entry.way
        else:
            mapping = request.mapping if request.mapping is not None else _DEFAULT_MAPPING
            carried_cached, carried_way = mapping.cached, mapping.way
            # Allocate a clean (remap=0) entry so later dirty evictions of
            # this page avoid the in-DRAM tag probe (Section 3.3).
            self.coherence.note_clean(mc_id, page, carried_cached, carried_way)

        cached = partition.is_resident(page)
        self.stats.inc("mapping_consistent" if cached == carried_cached else "mapping_stale")

        if cached:
            served_by = "in-package"
            if self.balancer is not None and page not in partition.dirty and self.balancer.should_redirect(
                self.rng.random()
            ):
                latency = self.read_off(now, request.addr, self.line_size, TrafficCategory.HIT_DATA)
                served_by = "off-package"
                self.stats.inc("balanced_hits")
            else:
                latency = self.read_in(now, request.addr, self.line_size, TrafficCategory.HIT_DATA)
            if request.is_write:
                partition.mark_dirty(page)
        else:
            latency = self.read_off(now, request.addr, self.line_size, TrafficCategory.MISS_DATA)
            served_by = "off-package"

        self.record_hit(cached)
        # The partition's sampler feeds the shared miss-rate window that
        # drives the adaptive sample rate (Section 4.2.1).
        partition.sampler.record(cached)
        self._run_replacement_policy(now + latency, request, page, partition, mc_id, cached)
        return self._result_of(latency, cached, served_by)

    def _writeback(
        self, now: int, request: MemRequest, page: int, partition: BansheePartition, mc_id: int
    ) -> AccessResult:
        entry = self.coherence.lookup(mc_id, page)
        if entry is not None:
            cached = entry.cached
            self.stats.inc("writeback_tagbuffer_hits")
        else:
            # Without mapping information the controller must probe the tags
            # stored in the DRAM cache (Section 3.3).
            self.tag_probe.probe(now, request.addr)
            cached = partition.is_resident(page)
            self.stats.inc("writeback_tag_probes")
        if cached:
            self.flows.writeback_to_cache(now, request.addr)
            partition.mark_dirty(page)
            return self._result_of(0, True, "in-package")
        self.flows.writeback_to_off(now, request.addr)
        return self._result_of(0, False, "off-package")

    # ------------------------------------------------------------------ replacement policies

    def _run_replacement_policy(
        self, now: int, request: MemRequest, page: int, partition: BansheePartition, mc_id: int, hit: bool
    ) -> None:
        if partition.capacity_pages == 0:
            return
        if self.policy == "lru":
            self._lru_policy(now, request, page, partition, mc_id, hit)
            return
        if not partition.sampler.should_update():
            return
        self._fbr_sampled_update(now, request, page, partition, mc_id)

    def _fbr_sampled_update(
        self, now: int, request: MemRequest, page: int, partition: BansheePartition, mc_id: int
    ) -> None:
        """Algorithm 1: load the set metadata, update counters, maybe replace."""
        set_index = partition.set_of(page)
        meta_addr = request.addr
        self.metadata_channel.read(now, meta_addr)
        decision = partition.fbr.update(set_index, page)
        if decision is not None:
            candidate_index, victim_way = decision
            self._replace(now, request, page, partition, mc_id, set_index, candidate_index, victim_way)
        self.metadata_channel.write(now, meta_addr)

    def _replace(
        self,
        now: int,
        request: MemRequest,
        page: int,
        partition: BansheePartition,
        mc_id: int,
        set_index: int,
        candidate_index: int,
        victim_way: int,
    ) -> None:
        """Swap the accessed candidate page with the coldest cached page."""
        meta = partition.metadata[set_index]
        victim_page, _victim_count, _ = meta.promote(candidate_index, victim_way)

        if victim_page != INVALID_PAGE:
            self._evict_page(now, victim_page, partition)
        self._fill_page(now, page, victim_way, partition, dirty=request.is_write)
        self.stats.inc("replacements")

        # Both the evicted and the inserted page changed their mapping: record
        # the remaps in this controller's tag buffer (Section 3.1).
        self.coherence.record_remap(mc_id, page, cached=True, way=victim_way, core_id=request.core_id)
        if victim_page != INVALID_PAGE:
            victim_mc = self.coherence.controller_of(victim_page)
            self.coherence.record_remap(victim_mc, victim_page, cached=False, way=0, core_id=request.core_id)

    def _evict_page(self, now: int, victim_page: int, partition: BansheePartition) -> None:
        if victim_page in partition.dirty:
            self.flows.evict_dirty_to_off(now, victim_page * partition.page_size, partition.page_size)
            self.stats.inc("dirty_page_evictions")
        partition.directory.evict(victim_page)
        self.stats.inc("page_evictions")

    def _fill_page(self, now: int, page: int, way: int, partition: BansheePartition, dirty: bool) -> None:
        self.flows.fill_from_off(now, page * partition.page_size, partition.page_size)
        partition.directory.fill(page, way, dirty)
        self.stats.inc("page_fills")

    # ------------------------------------------------------------------ LRU ablation (Figure 7)

    def _lru_policy(
        self, now: int, request: MemRequest, page: int, partition: BansheePartition, mc_id: int, hit: bool
    ) -> None:
        """Banshee LRU: page-granularity LRU, replacement on every miss.

        The LRU recency bits live in the per-set metadata row, so every access
        reads and writes 32 B of metadata; every miss moves a whole page (no
        footprint cache), like Unison Cache but without the tag lookups.
        """
        assert partition.lru is not None
        set_index = partition.set_of(page)
        meta_addr = request.addr
        self.metadata_channel.touch(now, meta_addr)
        self.metadata_channel.touch(now, meta_addr)

        if hit:
            partition.lru.on_access(set_index, partition.way_of(page))
            return

        meta = partition.metadata[set_index]
        valid_ways = partition._valid_scratch
        cached = meta.cached
        for way in range(partition.ways):
            valid_ways[way] = cached[way].valid
        victim_way = partition.lru.victim(set_index, valid_ways)
        victim_slot = meta.cached[victim_way]
        if victim_slot.valid:
            self._evict_page(now, victim_slot.page, partition)
            self.coherence.record_remap(mc_id, victim_slot.page, cached=False, way=0, core_id=request.core_id)
        meta.fill_way(victim_way, page, count=1, dirty=request.is_write)
        self._fill_page(now, page, victim_way, partition, dirty=request.is_write)
        partition.lru.on_fill(set_index, victim_way)
        self.coherence.record_remap(mc_id, page, cached=True, way=victim_way, core_id=request.core_id)
        self.stats.inc("replacements")

    # ------------------------------------------------------------------ end of run

    def finalize(self, now: int) -> None:
        """Flush any outstanding remaps so PTE state is consistent at the end."""
        self.coherence.finalize(core_id=0)
