"""Lazy PTE/TLB coherence: the batched update triggered by tag-buffer fills.

Section 3.4: when a tag buffer reaches its fill threshold, hardware raises an
interrupt; a software routine reads the remap entries of *all* tag buffers,
uses the OS reverse mapping to find every PTE of each physical page (page
aliasing included), rewrites the cached/way bits, issues one system-wide TLB
shootdown, and finally tells the tag buffers to clear their remap bits.

:class:`PteUpdateBatcher` encapsulates that routine.  The actual PTE writes,
shootdown cost accounting and TLB invalidation are performed by the system
through the :class:`repro.dramcache.base.OsServices` callback, keeping the
hardware model and the OS model decoupled, as in the real design.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.tag_buffer import TagBuffer
from repro.dramcache.base import OsServices


class PteUpdateBatcher:
    """Collects remap entries from all tag buffers and drives the update."""

    def __init__(self, tag_buffers: Sequence[TagBuffer], os_services: OsServices) -> None:
        if not tag_buffers:
            raise ValueError("at least one tag buffer is required")
        self.tag_buffers = list(tag_buffers)
        self.os = os_services
        self.flushes = 0
        self.updates_applied = 0

    def set_os_services(self, os_services: OsServices) -> None:
        """Swap the OS callback (the system installs its own after construction)."""
        self.os = os_services

    def needs_flush(self, threshold: float) -> bool:
        """True if any tag buffer's remap occupancy reached ``threshold``.

        Checked after every recorded remap, so a plain loop (a generator
        expression here would allocate on the demand hot path).
        """
        for buffer in self.tag_buffers:
            if buffer.remap_fraction >= threshold:
                return True
        return False

    def collect_updates(self) -> List[Tuple[int, bool, int]]:
        """All (page, cached, way) remaps not yet reflected in the PTEs."""
        updates: List[Tuple[int, bool, int]] = []
        for buffer in self.tag_buffers:
            updates.extend(buffer.remap_entries())
        return updates

    def flush(self, initiator_core: int) -> int:
        """Run the software update routine; returns the number of remaps applied."""
        updates = self.collect_updates()
        self.os.pte_update_batch(initiator_core, updates)
        for buffer in self.tag_buffers:
            buffer.clear_remap_bits()
        self.flushes += 1
        self.updates_applied += len(updates)
        return len(updates)
