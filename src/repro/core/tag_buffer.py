"""The Banshee tag buffer (Section 3.3).

One tag buffer sits in each memory controller and holds the mapping
information of recently remapped pages belonging to that controller.  It is
organised as a small set-associative structure keyed by physical page number.
Each entry carries:

* ``valid`` — the entry holds a useful mapping;
* ``cached`` / ``way`` — whether and where the page is in the DRAM cache;
* ``remap`` — the mapping is newer than what the page tables say.

Entries with ``remap=0`` duplicate the PTE contents; they exist only to
reduce tag probes for LLC dirty evictions and may be evicted at any time
(LRU among the non-remap entries).  Entries with ``remap=1`` must be retained
until the next batched PTE update, so if a set fills with remap entries the
controller must trigger a flush before it can accept another remap.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.util.bits import is_power_of_two


class TagBufferEntry:
    """One tag-buffer entry.

    A plain ``__slots__`` class (not a dataclass): entries are created on the
    demand hot path and mutated in place on every lookup, so dict-backed
    instances would cost space and time per resident mapping.
    """

    __slots__ = ("page", "cached", "way", "remap", "last_use")

    def __init__(self, page: int, cached: bool, way: int, remap: bool, last_use: int = 0) -> None:
        self.page = page
        self.cached = cached
        self.way = way
        self.remap = remap
        self.last_use = last_use

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TagBufferEntry(page={self.page!r}, cached={self.cached!r}, "
            f"way={self.way!r}, remap={self.remap!r}, last_use={self.last_use!r})"
        )


class TagBufferFullError(RuntimeError):
    """Raised when a remap entry cannot be inserted without a flush."""


class TagBuffer:
    """Set-associative tag buffer for one memory controller."""

    def __init__(self, num_entries: int = 1024, num_ways: int = 8) -> None:
        if num_entries <= 0 or num_ways <= 0:
            raise ValueError("num_entries and num_ways must be positive")
        if num_entries % num_ways != 0:
            raise ValueError("num_entries must be divisible by num_ways")
        num_sets = num_entries // num_ways
        if not is_power_of_two(num_sets):
            raise ValueError("tag buffer set count must be a power of two")
        self.num_entries = num_entries
        self.num_ways = num_ways
        self.num_sets = num_sets
        self._sets: List[Dict[int, TagBufferEntry]] = [dict() for _ in range(num_sets)]
        self._clock = 0
        self.lookups = 0
        self.hits = 0
        self.inserts = 0
        self.remap_inserts = 0

    # ------------------------------------------------------------------ helpers

    def _set_of(self, page: int) -> int:
        return page & (self.num_sets - 1)

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    # ------------------------------------------------------------------ operations

    def lookup(self, page: int) -> Optional[TagBufferEntry]:
        """Return the entry for ``page`` if present (updates LRU state)."""
        self.lookups += 1
        entry = self._sets[self._set_of(page)].get(page)
        if entry is not None:
            self.hits += 1
            entry.last_use = self._tick()
        return entry

    def insert(self, page: int, cached: bool, way: int, remap: bool) -> None:
        """Insert or update the mapping for ``page``.

        Raises:
            TagBufferFullError: a remap entry must be inserted but every way
                of the target set already holds a remap entry.  The caller
                must flush (batched PTE update) and retry.
        """
        bucket = self._sets[self._set_of(page)]
        existing = bucket.get(page)
        if existing is not None:
            existing.cached = cached
            existing.way = way
            existing.remap = existing.remap or remap
            existing.last_use = self._tick()
            if remap:
                self.remap_inserts += 1
            return

        if len(bucket) >= self.num_ways:
            victim = self._pick_victim(bucket)
            if victim is None:
                if not remap:
                    # A clean entry is merely an optimisation; drop it.
                    return
                raise TagBufferFullError(f"set {self._set_of(page)} has only remap entries")
            del bucket[victim.page]

        # The entry is retained in the buffer until evicted or flushed, so it
        # cannot come from a reuse pool.  # repro: allow[hotpath-alloc]
        bucket[page] = TagBufferEntry(page=page, cached=cached, way=way, remap=remap, last_use=self._tick())
        self.inserts += 1
        if remap:
            self.remap_inserts += 1

    def _pick_victim(self, bucket: Dict[int, TagBufferEntry]) -> Optional[TagBufferEntry]:
        """LRU among non-remap entries (remap entries are not evictable).

        A plain scan (no candidate list, no key lambda): this runs on the
        demand hot path whenever a set is full.  Ties keep the first-seen
        entry, matching ``min`` over the same iteration order.
        """
        victim: Optional[TagBufferEntry] = None
        for entry in bucket.values():
            if entry.remap:
                continue
            if victim is None or entry.last_use < victim.last_use:
                victim = entry
        return victim

    # ------------------------------------------------------------------ flush support

    def remap_entries(self) -> List[Tuple[int, bool, int]]:
        """All (page, cached, way) mappings not yet reflected in the PTEs."""
        updates = []
        for bucket in self._sets:
            for entry in bucket.values():
                if entry.remap:
                    updates.append((entry.page, entry.cached, entry.way))
        return updates

    def clear_remap_bits(self) -> int:
        """Mark every entry as consistent with the PTEs (after a flush).

        The mappings stay resident to keep serving dirty-eviction lookups
        (Section 3.4); only the remap bits are cleared.  Returns the number
        of entries affected.
        """
        cleared = 0
        for bucket in self._sets:
            for entry in bucket.values():
                if entry.remap:
                    entry.remap = False
                    cleared += 1
        return cleared

    # ------------------------------------------------------------------ introspection

    @property
    def occupancy(self) -> int:
        """Number of valid entries."""
        return sum(len(bucket) for bucket in self._sets)

    @property
    def remap_count(self) -> int:
        """Number of entries whose mapping is newer than the PTEs."""
        return sum(1 for bucket in self._sets for entry in bucket.values() if entry.remap)

    @property
    def remap_fraction(self) -> float:
        """Fraction of total capacity occupied by remap entries."""
        return self.remap_count / self.num_entries

    def __contains__(self, page: int) -> bool:
        return page in self._sets[self._set_of(page)]
