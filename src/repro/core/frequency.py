"""Per-set frequency metadata for Banshee's FBR policy (Section 4.1 / 4.2).

Each DRAM-cache set owns a 32-byte metadata record stored in a tag row of the
in-package DRAM.  The record holds, for a 4-way set, the tags and frequency
counters of the 4 *cached* pages plus 5 *candidate* pages — pages that are not
resident but are being tracked as potential insertions.  Counters are small
(5 bits by default); when one saturates, all counters in the set are halved
(Algorithm 1, lines 10–15), which preserves the relative ordering while
keeping the counters in range.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

INVALID_PAGE = -1


class MetadataSlot:
    """One (tag, counter) slot of a metadata record.

    A plain ``__slots__`` class (not a dataclass): slots are read and
    mutated on the sampled-update hot path, and a dataclass cannot combine
    ``__slots__`` with field defaults on Python 3.9.
    """

    __slots__ = ("page", "count", "valid", "dirty")

    def __init__(
        self, page: int = INVALID_PAGE, count: int = 0, valid: bool = False, dirty: bool = False
    ) -> None:
        self.page = page
        self.count = count
        self.valid = valid
        self.dirty = dirty

    def clear(self) -> None:
        """Reset the slot to the invalid state."""
        self.page = INVALID_PAGE
        self.count = 0
        self.valid = False
        self.dirty = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetadataSlot(page={self.page!r}, count={self.count!r}, "
            f"valid={self.valid!r}, dirty={self.dirty!r})"
        )


#: Shared read-only stand-in for "no candidate slots configured": `promote`
#: only reads it (the ``if self.candidates`` guard skips every mutation), so
#: one module-level instance replaces a per-replacement allocation.
_EMPTY_SLOT = MetadataSlot()


class FrequencySetMetadata:
    """The metadata record of one DRAM-cache set."""

    def __init__(self, num_ways: int, num_candidates: int, counter_max: int) -> None:
        if num_ways <= 0:
            raise ValueError("num_ways must be positive")
        if num_candidates < 0:
            raise ValueError("num_candidates must be non-negative")
        if counter_max <= 0:
            raise ValueError("counter_max must be positive")
        self.num_ways = num_ways
        self.num_candidates = num_candidates
        self.counter_max = counter_max
        self.cached: List[MetadataSlot] = [MetadataSlot() for _ in range(num_ways)]
        self.candidates: List[MetadataSlot] = [MetadataSlot() for _ in range(num_candidates)]

    # ------------------------------------------------------------------ queries

    def find_cached(self, page: int) -> Optional[int]:
        """Way index of ``page`` if it is one of the cached slots."""
        for way, slot in enumerate(self.cached):
            if slot.valid and slot.page == page:
                return way
        return None

    def find_candidate(self, page: int) -> Optional[int]:
        """Candidate-slot index of ``page`` if it is being tracked."""
        for index, slot in enumerate(self.candidates):
            if slot.valid and slot.page == page:
                return index
        return None

    def min_cached(self) -> Tuple[int, int]:
        """(way, count) of the coldest cached slot; invalid slots count as 0."""
        best_way = 0
        best_count = None
        for way, slot in enumerate(self.cached):
            count = slot.count if slot.valid else 0
            if best_count is None or count < best_count:
                best_way = way
                best_count = count
        # One result tuple per sampled metadata update (not per record).
        return best_way, best_count if best_count is not None else 0  # repro: allow[hotpath-alloc]

    def free_way(self) -> Optional[int]:
        """An invalid cached slot, if one exists."""
        for way, slot in enumerate(self.cached):
            if not slot.valid:
                return way
        return None

    # ------------------------------------------------------------------ mutation

    def increment(self, slot: MetadataSlot) -> bool:
        """Increment one counter; halve all counters on saturation.

        Returns True if a halving pass happened.
        """
        slot.count += 1
        if slot.count >= self.counter_max:
            self.halve_all()
            return True
        return False

    def halve_all(self) -> None:
        """Divide every counter in the set by two (hardware shift)."""
        for slot in self.cached:
            slot.count //= 2
        for slot in self.candidates:
            slot.count //= 2

    def install_candidate(self, index: int, page: int, count: int = 1) -> None:
        """Overwrite candidate slot ``index`` with ``page``."""
        slot = self.candidates[index]
        slot.page = page
        slot.count = min(count, self.counter_max - 1)
        slot.valid = True
        slot.dirty = False

    def promote(self, candidate_index: int, way: int) -> Tuple[int, int, bool]:
        """Swap a candidate into a cached way.

        The page previously occupying ``way`` (if any) takes over the
        candidate slot, preserving its counter so it can compete to come back
        later.  Returns ``(old_page, old_count, old_dirty)`` describing the
        victim (``INVALID_PAGE`` when the way was empty).
        """
        cand = self.candidates[candidate_index] if self.candidates else _EMPTY_SLOT
        target = self.cached[way]
        old_page, old_count, old_dirty = target.page, target.count, target.dirty
        old_valid = target.valid

        target.page = cand.page
        target.count = cand.count
        target.valid = True
        target.dirty = False

        if self.candidates:
            if old_valid:
                cand.page = old_page
                cand.count = old_count
                cand.valid = True
                cand.dirty = False
            else:
                cand.clear()
        # One victim-descriptor tuple per replacement (replacements are rare
        # by design: the FBR threshold gates them).
        return (old_page if old_valid else INVALID_PAGE, old_count, old_dirty)  # repro: allow[hotpath-alloc]

    def fill_way(self, way: int, page: int, count: int, dirty: bool) -> None:
        """Directly install ``page`` into a cached way (used by the LRU ablation)."""
        slot = self.cached[way]
        slot.page = page
        slot.count = min(count, self.counter_max)
        slot.valid = True
        slot.dirty = dirty

    # ------------------------------------------------------------------ invariants

    def check_invariants(self) -> None:
        """Raise AssertionError if counters or slots are out of range (test hook)."""
        for slot in self.cached + self.candidates:
            assert 0 <= slot.count <= self.counter_max, "counter out of range"
            if not slot.valid:
                assert slot.page == INVALID_PAGE or slot.count == 0 or True
        pages = [slot.page for slot in self.cached if slot.valid]
        assert len(pages) == len(set(pages)), "duplicate page in cached slots"

    @property
    def storage_bits(self) -> int:
        """Approximate metadata size in bits (Section 5.1 footnote: ~32 bytes)."""
        tag_bits = 20
        counter_bits = max(1, (self.counter_max + 1).bit_length() - 1)
        cached_bits = self.num_ways * (tag_bits + counter_bits + 2)
        candidate_bits = self.num_candidates * (tag_bits + counter_bits)
        return cached_bits + candidate_bits
