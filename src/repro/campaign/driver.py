"""Campaign driver: expand, skip what the store already has, run the rest.

:func:`run_campaign` is the subsystem's main entry point.  It is resumable
by construction: every cell's content-hashed key is checked against the
store first, so re-running a campaign against the same store directory
re-simulates nothing that already completed — including after a crash or a
Ctrl-C halfway through the matrix, and including cells another campaign
happened to share.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.campaign.executor import (
    CellOutcome,
    ParallelExecutor,
    ProgressFn,
    SerialExecutor,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.campaign.supervisor import SupervisedExecutor, SupervisorConfig

if TYPE_CHECKING:
    from repro.obs.events import ObsSink


@dataclass
class CampaignReport:
    """Outcome of one :func:`run_campaign` invocation."""

    spec: CampaignSpec
    outcomes: List[CellOutcome] = field(default_factory=list)
    #: The run was cut short (SIGINT/SIGTERM); ``outcomes`` holds what
    #: completed before the interrupt and the CLI exits nonzero.
    interrupted: bool = False

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def simulated(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.ok and not o.from_store]

    @property
    def skipped(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.from_store]

    @property
    def errors(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def counts(self) -> Dict[str, int]:
        return {
            "total": self.total,
            "simulated": len(self.simulated),
            "from_store": len(self.skipped),
            "errors": len(self.errors),
        }

    def results(self) -> Dict:
        """(label, workload, seed) -> SimulationResults for successful cells.

        Raises if two cells share a (label, workload, seed) triple — e.g. a
        grid swept over ``page_sizes`` with one scheme label — because the
        mapping would silently drop data.  Give swept points distinct labels
        (as ``examples/design_space.py`` does) or iterate ``outcomes``.
        """
        mapping: Dict = {}
        for outcome in self.outcomes:
            if not outcome.ok:
                continue
            key = (outcome.cell.label, outcome.cell.workload, outcome.cell.seed)
            if key in mapping:
                raise ValueError(
                    f"multiple cells share label/workload/seed {key}; use distinct "
                    "scheme labels per sweep point or iterate report.outcomes"
                )
            mapping[key] = outcome.result
        return mapping


def run_campaign(
    spec: CampaignSpec,
    store: Optional[ResultStore] = None,
    workers: int = 1,
    progress: Optional[ProgressFn] = None,
    force: bool = False,
    obs: Optional["ObsSink"] = None,
    checkpoint_warmup: bool = False,
    supervisor: Optional[SupervisorConfig] = None,
    supervise: bool = True,
    snapshot_every: Optional[int] = None,
) -> CampaignReport:
    """Run (or resume) a campaign.

    Args:
        spec: the campaign to run.
        store: persistent store to resume from and record into; ``None``
            keeps everything in memory (nothing is skipped or persisted).
        workers: >1 fans pending cells out over that many processes.
        progress: callback ``(done, total, outcome)``; store hits are
            reported first, then live cells as they complete.
        force: re-simulate even cells the store already holds (the fresh
            result overwrites the stored one).
        obs: optional :class:`~repro.obs.events.ObsSink`; campaign/cell/run
            events land in its JSONL log and workers heartbeat into its
            directory (what ``status --live`` tails).
        checkpoint_warmup: share warm engine states across cells via
            ``<store>/obs/checkpoints`` — the first cell with a given
            (config, workload, warmup) snapshots the warmup edge, later
            cells (and later campaigns against the same store) restore it
            and simulate only the measured portion.  Bit-identical results;
            requires a ``store``; cells with a timeline attached bypass it.
        supervisor: retry/backoff/quarantine knobs for the supervised
            parallel path (``None`` uses :class:`SupervisorConfig` defaults;
            ``spec.cell_timeout_seconds`` fills an unset ``cell_timeout``).
        supervise: ``workers > 1`` runs under :class:`SupervisedExecutor`
            by default — dead or wedged workers are detected, their cells
            retried, and repeat offenders quarantined.  ``False`` falls back
            to the plain :class:`ParallelExecutor` pool (no recovery).
        snapshot_every: emit a mid-cell auto-snapshot every N processed
            records into ``<store>/obs/autosnapshots`` so a killed campaign
            resumes mid-cell; needs a ``store``, ``None`` disables.

    A SIGINT/SIGTERM mid-run does not lose completed work: every finished
    cell is already persisted, the report comes back with
    ``interrupted=True`` holding those outcomes, and the event log gets a
    ``campaign_end`` with ``status="interrupted"``.

    Cells that expand to the same content key (an axis value equal to the
    preset default, or overlapping grids) are simulated once; the extra
    cells share the result and are reported as store hits.
    """
    cells = spec.cells()
    total = len(cells)
    outcomes_by_index: Dict[int, CellOutcome] = {}
    pending: List[int] = []
    first_pending_by_key: Dict[str, int] = {}
    duplicates: List[int] = []
    done = 0

    keys = [cell.key() for cell in cells]
    for index, cell in enumerate(cells):
        key = keys[index]
        stored = store.get(key) if (store is not None and not force) else None
        if stored is not None:
            outcome = CellOutcome(cell, key, stored, from_store=True)
            outcomes_by_index[index] = outcome
            done += 1
            if progress is not None:
                progress(done, total, outcome)
        elif key in first_pending_by_key:
            # Two sweep points expanded to the same content key (e.g. an axis
            # value equal to the preset default): simulate once, share the
            # result.
            duplicates.append(index)
        else:
            first_pending_by_key[key] = index
            pending.append(index)

    executor: Union[SerialExecutor, ParallelExecutor, SupervisedExecutor]
    if workers > 1 and supervise:
        config = supervisor if supervisor is not None else SupervisorConfig()
        if config.cell_timeout is None and spec.cell_timeout_seconds is not None:
            config = dataclasses.replace(config, cell_timeout=spec.cell_timeout_seconds)
        executor = SupervisedExecutor(workers, config=config)
    elif workers > 1:
        executor = ParallelExecutor(workers)
    else:
        executor = SerialExecutor()
    checkpoint_dir = None
    snapshot_dir = None
    if checkpoint_warmup and store is not None:
        checkpoint_dir = str(Path(store.directory) / "obs" / "checkpoints")
    if snapshot_every is not None and store is not None:
        snapshot_dir = str(Path(store.directory) / "obs" / "autosnapshots")
    events = obs.event_log() if obs is not None else None
    if events is not None:
        events.emit(
            "campaign_start",
            name=spec.name,
            cells=total,
            pending=len(pending),
            from_store=done,
            workers=workers,
        )

    def on_progress(_done: int, _total: int, outcome: CellOutcome) -> None:
        nonlocal done
        done += 1
        # Persist as each cell completes (not after the batch) so a crash or
        # Ctrl-C mid-campaign loses at most the in-flight cells.
        if store is not None and outcome.ok:
            store.put(outcome.key, outcome.result, meta=outcome.cell.meta())
        elif store is not None and outcome.error is not None:
            # Failures persist too: status reports them, the next run
            # retries them (the store reads errored keys as absent) —
            # except quarantined cells, which are flagged ``poisoned``.
            store.put_error(outcome.key, outcome.error, meta=outcome.cell.meta(),
                            poisoned=outcome.quarantined)
        # Record immediately (not just after the batch) so an interrupt
        # mid-campaign still reports everything that finished.
        outcomes_by_index[first_pending_by_key[outcome.key]] = outcome
        if progress is not None:
            progress(done, total, outcome)

    interrupted = False
    try:
        executed = executor.run([cells[i] for i in pending], progress=on_progress, obs=obs,
                                checkpoint_dir=checkpoint_dir,
                                snapshot_dir=snapshot_dir, snapshot_every=snapshot_every)
    except KeyboardInterrupt:
        # Completed cells were persisted and recorded by on_progress; the
        # in-flight ones resume from store (and mid-cell snapshots) next run.
        interrupted = True
    else:
        if len(executed) != len(pending):
            raise RuntimeError(
                f"executor returned {len(executed)} outcomes for {len(pending)} cells"
            )
        for index, outcome in zip(pending, executed):
            outcomes_by_index[index] = outcome
    for index in duplicates:
        cell = cells[index]
        key = keys[index]
        source = outcomes_by_index.get(first_pending_by_key[key])
        if source is None:
            continue
        outcome = CellOutcome(cell, key, source.result, error=source.error, from_store=source.ok)
        outcomes_by_index[index] = outcome
        done += 1
        if progress is not None:
            progress(done, total, outcome)

    report = CampaignReport(spec=spec, interrupted=interrupted)
    report.outcomes = [outcomes_by_index[i] for i in range(total) if i in outcomes_by_index]
    if events is not None:
        events.emit("campaign_end", name=spec.name,
                    status="interrupted" if interrupted else "completed",
                    **report.counts())
    return report
