"""Persistent, append-only result store.

The store is a directory holding one ``results.jsonl`` file.  Each line is a
self-contained JSON record — a completed result::

    {"key": <sha256>, "meta": {...sweep coordinates...}, "result": {...}}

or a failed-cell outcome::

    {"key": <sha256>, "meta": {...sweep coordinates...}, "error": "..."}

Keys are content hashes produced by
:func:`repro.experiments.runner.simulation_cell_key` — they cover the full
system configuration plus workload identity, so two campaigns (or a campaign
and a figure function) that describe the same simulation share the same key
and the second one is served from disk.

Error records make failures first-class: ``status`` reports failure counts
per scheme/workload, and because :meth:`get` / ``in`` treat an errored key
as *absent*, a re-run retries the cell instead of skipping it — a later
success simply overwrites the error (append-only, last line per key wins).

Append-only JSONL keeps writes crash-safe: an interrupted campaign loses at
most its in-flight line (truncated trailing lines are skipped on load), and
everything already written survives for the next ``run`` to resume from.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro import faults
from repro.sim.results import SimulationResults

RESULTS_FILENAME = "results.jsonl"


class ResultStore:
    """On-disk simulation-result store backing campaigns and figure caches."""

    def __init__(self, directory: Union[str, Path], create: bool = True) -> None:
        """Open (and by default create) the store at ``directory``.

        ``create=False`` opens an existing store only — read-only consumers
        (``status``/``export``) use it so a mistyped path errors instead of
        silently materialising an empty store.
        """
        self.directory = Path(directory)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        elif not self.directory.is_dir():
            raise ValueError(f"no result store at {self.directory}")
        self.path = self.directory / RESULTS_FILENAME
        self._index: Dict[str, Dict] = {}
        #: Unparseable lines skipped on load — nonzero after a crash
        #: mid-append (normally exactly the one truncated trailing line).
        self.corrupt_lines = 0
        self._puts = 0
        self._needs_newline = False
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        # A crash mid-append can leave the file without a trailing newline;
        # appending straight after it would corrupt the *next* (good)
        # record by gluing it onto the half line.  Note the repair needed
        # and apply it lazily on the first write, so read-only consumers
        # (status/export) never mutate the file.
        with self.path.open("rb") as raw:
            raw.seek(0, os.SEEK_END)
            if raw.tell() > 0:
                raw.seek(-1, os.SEEK_END)
                self._needs_newline = raw.read(1) != b"\n"
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves at most one truncated line;
                    # everything before it is intact.  Tolerate it (the cell
                    # it belonged to reads as absent, so a re-run redoes it)
                    # but tell the operator something died mid-write.
                    self.corrupt_lines += 1
                    continue
                if isinstance(record, dict) and "key" in record and (
                    "result" in record or "error" in record
                ):
                    # Last line per key wins: a retried cell's success
                    # replaces its earlier error record (and vice versa).
                    self._index[record["key"]] = record
        if self.corrupt_lines:
            warnings.warn(
                f"result store {self.path} contained {self.corrupt_lines} "
                "unparseable line(s) — likely a crash mid-append; the "
                "affected cell(s) will be re-simulated on the next run",
                RuntimeWarning,
                stacklevel=2,
            )

    # ------------------------------------------------------------------ lookups

    def get(self, key: str) -> Optional[SimulationResults]:
        """The stored result for ``key``, or ``None``.

        Error records read as ``None`` so campaign resumption retries the
        cell; use :meth:`get_error` to inspect the failure itself.
        """
        record = self._index.get(key)
        if record is None or "result" not in record:
            return None
        return SimulationResults.from_dict(record["result"])

    def get_error(self, key: str) -> Optional[str]:
        """The stored error text for ``key``, or ``None``."""
        record = self._index.get(key)
        if record is None or "result" in record:
            return None
        return record.get("error")

    def get_record(self, key: str) -> Optional[Dict]:
        """The raw stored record (key/meta/result-or-error) for ``key``."""
        return self._index.get(key)

    def __contains__(self, key: str) -> bool:
        """Whether ``key`` holds a *successful* result (errors read as absent)."""
        record = self._index.get(key)
        return record is not None and "result" in record

    def __len__(self) -> int:
        """Number of successfully stored results (errors not counted)."""
        return sum(1 for record in self._index.values() if "result" in record)

    def keys(self) -> List[str]:
        """Keys holding successful results, in insertion order."""
        return [key for key, record in self._index.items() if "result" in record]

    def error_keys(self) -> List[str]:
        """Keys whose latest record is a failure, in insertion order."""
        return [key for key, record in self._index.items() if "result" not in record]

    def records(self) -> Iterator[Dict]:
        """All stored records — results and errors — in insertion order."""
        return iter(self._index.values())

    # ------------------------------------------------------------------ writes

    def _append(self, record: Dict) -> None:
        line = json.dumps(record, sort_keys=True)
        # Fault hook: ``truncate-store@put=N`` simulates dying mid-append —
        # half this line lands on disk and the process exits before the
        # real write below happens.
        self._puts += 1
        faults.fire("store", put=self._puts, store_path=str(self.path),
                    store_line=line + "\n")
        with self.path.open("a", encoding="utf-8") as handle:
            if self._needs_newline:
                # Terminate a crash-truncated trailing line first so this
                # record starts on its own line.
                handle.write("\n")
                self._needs_newline = False
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._index[record["key"]] = record

    def put(self, key: str, result: SimulationResults, meta: Optional[Dict] = None) -> None:
        """Persist ``result`` under ``key`` (last write wins on re-put).

        ``scheme``/``workload``/``label`` metadata are always recorded —
        backfilled from the result itself when the caller's ``meta`` lacks
        them — so :meth:`status` can bucket every record without falling
        back to ``"?"``.
        """
        meta = dict(meta) if meta else {}
        meta.setdefault("scheme", result.scheme)
        meta.setdefault("workload", result.workload)
        meta.setdefault("label", meta["scheme"])
        self._append({"key": key, "meta": meta, "result": result.to_dict()})

    def put_error(self, key: str, error: str, meta: Optional[Dict] = None,
                  poisoned: bool = False) -> None:
        """Persist a failed-cell outcome under ``key``.

        The record survives the process, so ``status`` can report what
        failed after an overnight run exits — but the key still reads as
        absent (see :meth:`get`), so the next ``run`` retries the cell.

        ``poisoned=True`` marks a cell the supervisor quarantined after
        exhausting its retry budget (repeated worker deaths / wedges) —
        worth a human look before burning more compute on it.
        """
        record = {
            "key": key,
            "meta": dict(meta) if meta else {},
            "error": str(error),
            "failed_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        }
        if poisoned:
            record["poisoned"] = True
        self._append(record)

    # ------------------------------------------------------------------ reporting

    def status(self) -> Dict:
        """Aggregate counts for the ``status`` CLI subcommand."""
        by_scheme: Dict[str, int] = {}
        by_workload: Dict[str, int] = {}
        errors_by_scheme: Dict[str, int] = {}
        errors_by_workload: Dict[str, int] = {}
        errors = 0
        poisoned = 0
        for record in self._index.values():
            meta = record.get("meta", {})
            scheme = meta.get("label") or meta.get("scheme") or "?"
            workload = meta.get("workload") or "?"
            if "result" in record:
                by_scheme[scheme] = by_scheme.get(scheme, 0) + 1
                by_workload[workload] = by_workload.get(workload, 0) + 1
            else:
                errors += 1
                if record.get("poisoned"):
                    poisoned += 1
                errors_by_scheme[scheme] = errors_by_scheme.get(scheme, 0) + 1
                errors_by_workload[workload] = errors_by_workload.get(workload, 0) + 1
        return {
            "path": str(self.path),
            "cells": len(self),
            "errors": errors,
            "poisoned": poisoned,
            "corrupt_lines": self.corrupt_lines,
            "by_scheme": dict(sorted(by_scheme.items())),
            "by_workload": dict(sorted(by_workload.items())),
            "errors_by_scheme": dict(sorted(errors_by_scheme.items())),
            "errors_by_workload": dict(sorted(errors_by_workload.items())),
        }
