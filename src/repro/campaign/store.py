"""Persistent, append-only result store.

The store is a directory holding one ``results.jsonl`` file.  Each line is a
self-contained JSON record::

    {"key": <sha256>, "meta": {...sweep coordinates...}, "result": {...}}

Keys are content hashes produced by
:func:`repro.experiments.runner.simulation_cell_key` — they cover the full
system configuration plus workload identity, so two campaigns (or a campaign
and a figure function) that describe the same simulation share the same key
and the second one is served from disk.

Append-only JSONL keeps writes crash-safe: an interrupted campaign loses at
most its in-flight line (truncated trailing lines are skipped on load), and
everything already written survives for the next ``run`` to resume from.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.sim.results import SimulationResults

RESULTS_FILENAME = "results.jsonl"


class ResultStore:
    """On-disk simulation-result store backing campaigns and figure caches."""

    def __init__(self, directory, create: bool = True) -> None:
        """Open (and by default create) the store at ``directory``.

        ``create=False`` opens an existing store only — read-only consumers
        (``status``/``export``) use it so a mistyped path errors instead of
        silently materialising an empty store.
        """
        self.directory = Path(directory)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        elif not self.directory.is_dir():
            raise ValueError(f"no result store at {self.directory}")
        self.path = self.directory / RESULTS_FILENAME
        self._index: Dict[str, Dict] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves at most one truncated line;
                    # everything before it is intact.
                    continue
                if isinstance(record, dict) and "key" in record and "result" in record:
                    self._index[record["key"]] = record

    # ------------------------------------------------------------------ lookups

    def get(self, key: str) -> Optional[SimulationResults]:
        """The stored result for ``key``, or ``None``."""
        record = self._index.get(key)
        if record is None:
            return None
        return SimulationResults.from_dict(record["result"])

    def get_record(self, key: str) -> Optional[Dict]:
        """The raw stored record (key/meta/result) for ``key``, or ``None``."""
        return self._index.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> List[str]:
        return list(self._index)

    def records(self) -> Iterator[Dict]:
        """All stored records, in insertion order."""
        return iter(self._index.values())

    # ------------------------------------------------------------------ writes

    def put(self, key: str, result: SimulationResults, meta: Optional[Dict] = None) -> None:
        """Persist ``result`` under ``key`` (last write wins on re-put)."""
        record = {"key": key, "meta": meta or {}, "result": result.to_dict()}
        line = json.dumps(record, sort_keys=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._index[key] = record

    # ------------------------------------------------------------------ reporting

    def status(self) -> Dict:
        """Aggregate counts for the ``status`` CLI subcommand."""
        by_scheme: Dict[str, int] = {}
        by_workload: Dict[str, int] = {}
        for record in self._index.values():
            meta = record.get("meta", {})
            scheme = meta.get("label") or meta.get("scheme") or "?"
            workload = meta.get("workload") or "?"
            by_scheme[scheme] = by_scheme.get(scheme, 0) + 1
            by_workload[workload] = by_workload.get(workload, 0) + 1
        return {
            "path": str(self.path),
            "cells": len(self._index),
            "by_scheme": dict(sorted(by_scheme.items())),
            "by_workload": dict(sorted(by_workload.items())),
        }
