"""Parallel, resumable experiment campaigns with a persistent result store.

The campaign subsystem turns the (scheme x workload x parameter x seed)
matrices behind the paper's figures into first-class objects:

* :class:`~repro.campaign.spec.CampaignSpec` / :class:`~repro.campaign.spec.SweepGrid`
  declare a sweep and expand it into simulation cells;
* :class:`~repro.campaign.executor.ParallelExecutor` fans cells out across
  worker processes with per-cell error capture;
* :class:`~repro.campaign.store.ResultStore` persists every result on disk
  under content-hashed keys, making campaigns resumable and letting the
  figure functions in :mod:`repro.experiments.figures` rebuild reports
  without re-simulating;
* :mod:`repro.campaign.export` and the ``python -m repro.campaign`` CLI
  (:mod:`repro.campaign.cli`) turn stores into CSV/JSON tables.
"""

from repro.campaign.driver import CampaignReport, run_campaign
from repro.campaign.executor import CellOutcome, ParallelExecutor, SerialExecutor, execute_cell
from repro.campaign.export import export_csv, export_json, result_rows
from repro.campaign.spec import CampaignCell, CampaignSpec, SweepGrid
from repro.campaign.store import ResultStore

__all__ = [
    "CampaignCell",
    "CampaignReport",
    "CampaignSpec",
    "CellOutcome",
    "ParallelExecutor",
    "ResultStore",
    "SerialExecutor",
    "SweepGrid",
    "execute_cell",
    "export_csv",
    "export_json",
    "result_rows",
    "run_campaign",
]
