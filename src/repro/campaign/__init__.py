"""Parallel, resumable experiment campaigns with a persistent result store.

The campaign subsystem turns the (scheme x workload x parameter x seed)
matrices behind the paper's figures into first-class objects:

* :class:`~repro.campaign.spec.CampaignSpec` / :class:`~repro.campaign.spec.SweepGrid`
  declare a sweep and expand it into simulation cells;
* :class:`~repro.campaign.supervisor.SupervisedExecutor` (the default
  parallel path) fans cells out across directly-managed worker processes
  with leases, retry/backoff, quarantine and mid-cell snapshot resume;
  :class:`~repro.campaign.executor.ParallelExecutor` is the plain pool;
* :class:`~repro.campaign.store.ResultStore` persists every result on disk
  under content-hashed keys, making campaigns resumable and letting the
  figure functions in :mod:`repro.experiments.figures` rebuild reports
  without re-simulating;
* :mod:`repro.campaign.export` and the ``python -m repro.campaign`` CLI
  (:mod:`repro.campaign.cli`) turn stores into CSV/JSON tables.
"""

from repro.campaign.driver import CampaignReport, run_campaign
from repro.campaign.executor import CellOutcome, ParallelExecutor, SerialExecutor, execute_cell
from repro.campaign.export import export_csv, export_json, result_rows
from repro.campaign.spec import CampaignCell, CampaignSpec, SweepGrid
from repro.campaign.store import ResultStore
from repro.campaign.supervisor import (
    CampaignInterrupted,
    SupervisedExecutor,
    SupervisorConfig,
)

__all__ = [
    "CampaignCell",
    "CampaignInterrupted",
    "CampaignReport",
    "CampaignSpec",
    "CellOutcome",
    "ParallelExecutor",
    "ResultStore",
    "SerialExecutor",
    "SupervisedExecutor",
    "SupervisorConfig",
    "SweepGrid",
    "execute_cell",
    "export_csv",
    "export_json",
    "result_rows",
    "run_campaign",
]
