"""``python -m repro.campaign`` — run, inspect and export campaigns.

Subcommands::

    run     expand a campaign spec, skip cells the store already holds,
            simulate the rest (optionally across worker processes), and
            persist every fresh result
    status  summarise a store directory (and, given a spec, what remains)
    export  dump a store as CSV or JSON

The campaign can be described either inline (``--schemes banshee alloy
--workloads gcc mcf --seeds 1 2``) or by a JSON spec file (``--spec
campaign.json``, the :meth:`CampaignSpec.to_dict` format).  Inline flags
override the corresponding spec-file fields.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO

from repro import faults
from repro.campaign.driver import CampaignReport, run_campaign
from repro.campaign.executor import CellOutcome
from repro.campaign.export import export_csv, export_json
from repro.campaign.spec import PRESETS, CampaignSpec, SweepGrid
from repro.campaign.store import ResultStore
from repro.campaign.supervisor import (
    SupervisorConfig,
    install_signal_handlers,
    restore_signal_handlers,
)
from repro.dramcache.variants import available_scheme_names, describe_variants
from repro.experiments.report import format_table
from repro.obs.events import ObsSink, read_events
from repro.obs.heartbeat import STALE_AFTER_SECONDS, is_stale, pid_alive, read_heartbeats

#: Default mid-cell auto-snapshot interval (processed records).  Small
#: enough that a killed overnight campaign rarely loses more than a couple
#: of minutes of work per cell, large enough that snapshot writes never
#: show up in a profile; ``--snapshot-every 0`` disables.
DEFAULT_SNAPSHOT_EVERY = 100_000


def _optional_int(text: str) -> Optional[int]:
    return None if text.lower() in ("none", "default") else int(text)


def _optional_float(text: str) -> Optional[float]:
    return None if text.lower() in ("none", "default") else float(text)


def _optional_str(text: str) -> Optional[str]:
    return None if text.lower() in ("none", "default") else text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Parallel, resumable simulation campaigns with a persistent result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run",
        help="run (or resume) a campaign",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "available schemes and variants:\n  "
            + "\n  ".join(available_scheme_names())
            + "\n\nvariant details:\n"
            + describe_variants()
        ),
    )
    run_parser.add_argument("--store", required=True, help="result store directory")
    run_parser.add_argument("--spec", help="JSON campaign spec file")
    run_parser.add_argument("--name", help="campaign name (default: spec file's name, or 'campaign')")
    run_parser.add_argument("--schemes", nargs="+",
                            help="scheme or variant names, e.g. banshee banshee-tb4k alloy "
                                 "(see the list below; validated before any cell runs)")
    run_parser.add_argument("--workloads", nargs="+", help="workload names, e.g. gcc mcf pagerank")
    run_parser.add_argument("--seeds", nargs="+", type=int, help="RNG seeds")
    run_parser.add_argument("--cache-sizes", nargs="+", type=_optional_int,
                            help="in-package capacities in bytes ('default' keeps the preset)")
    run_parser.add_argument("--page-sizes", nargs="+", type=_optional_int,
                            help="DRAM-cache page sizes in bytes")
    run_parser.add_argument("--policies", nargs="+", type=_optional_str,
                            help="banshee replacement policies (fbr-sample, fbr-nosample, lru)")
    run_parser.add_argument("--sampling", nargs="+", type=_optional_float,
                            help="sampling coefficients")
    run_parser.add_argument("--records", type=int, help="trace records per core")
    run_parser.add_argument("--cores", type=int, help="simulated cores per cell")
    run_parser.add_argument("--preset", choices=PRESETS, help="base configuration preset")
    run_parser.add_argument("--scale", type=float, help="workload footprint scale")
    run_parser.add_argument("--warmup", type=float, help="warmup fraction in [0, 1)")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes (default 1 = serial)")
    run_parser.add_argument("--force", action="store_true",
                            help="re-simulate cells the store already holds")
    run_parser.add_argument("--quiet", action="store_true", help="suppress per-cell progress")
    run_parser.add_argument("--timeline", type=int, metavar="N",
                            help="attach an interval timeline snapshotting every N records "
                                 "(stored with each result; see python -m repro.obs)")
    run_parser.add_argument("--timeline-bounds", nargs="+", type=float, metavar="CYCLES",
                            help="latency-histogram bucket edges for --timeline "
                                 "(strictly increasing cycle counts)")
    run_parser.add_argument("--checkpoint-warmup", action="store_true",
                            help="share warm engine states across cells: snapshot the "
                                 "warmup edge under <store>/obs/checkpoints and restore "
                                 "it for cells sharing (config, workload, warmup)")
    run_parser.add_argument("--no-obs", action="store_true",
                            help="disable the event log / heartbeats under <store>/obs")
    run_parser.add_argument("--no-supervise", action="store_true",
                            help="with --workers >1: use the plain process pool instead "
                                 "of the supervised executor (no retry/quarantine)")
    run_parser.add_argument("--retries", type=int, default=None, metavar="N",
                            help="supervised mode: give up on a cell after N failed "
                                 "attempts (worker deaths/timeouts; default 3)")
    run_parser.add_argument("--backoff", type=float, default=None, metavar="SECONDS",
                            help="supervised mode: base retry delay, doubled per failure "
                                 "(default 0.5s, capped at 30s)")
    run_parser.add_argument("--cell-timeout", type=float, default=None, metavar="SECONDS",
                            help="revoke and retry any cell attempt running longer than "
                                 "SECONDS (default: no deadline)")
    run_parser.add_argument("--stale-after", type=float, default=None, metavar="SECONDS",
                            help="supervised mode: revoke a lease whose worker heartbeat "
                                 "has not advanced in SECONDS (default %.0f)"
                                 % STALE_AFTER_SECONDS)
    run_parser.add_argument("--snapshot-every", type=int, default=DEFAULT_SNAPSHOT_EVERY,
                            metavar="RECORDS",
                            help="auto-snapshot long cells every RECORDS processed records "
                                 "under <store>/obs/autosnapshots so a killed campaign "
                                 "resumes mid-cell (default %d; 0 disables)"
                                 % DEFAULT_SNAPSHOT_EVERY)
    run_parser.add_argument("--inject", metavar="PLAN",
                            help="fault-injection plan for robustness testing, e.g. "
                                 "'kill@cell=3' or 'hang@records=10k' "
                                 "(see repro.faults; fires once per trigger, globally)")

    status_parser = sub.add_parser("status", help="summarise a store directory")
    status_parser.add_argument("--store", required=True)
    status_parser.add_argument("--spec", help="JSON spec file: also report pending cells")
    status_parser.add_argument("--live", action="store_true",
                               help="show in-flight cells from <store>/obs heartbeats and events")
    status_parser.add_argument("--poll", type=float, default=0.0, metavar="SECONDS",
                               help="with --live: refresh every SECONDS until the campaign ends")
    status_parser.add_argument("--stale-after", type=float, default=None, metavar="SECONDS",
                               help="with --live: heartbeats older than SECONDS count as "
                                    "stale (default %.0f); stale workers are listed by id"
                                    % STALE_AFTER_SECONDS)

    export_parser = sub.add_parser("export", help="dump a store as CSV or JSON")
    export_parser.add_argument("--store", required=True)
    export_parser.add_argument("--format", choices=("csv", "json"), default="csv")
    export_parser.add_argument("--output", help="output file (default: stdout)")
    return parser


def load_spec_file(path: str) -> CampaignSpec:
    """Load a :meth:`CampaignSpec.to_dict`-format JSON spec file."""
    with open(path, "r", encoding="utf-8") as handle:
        return CampaignSpec.from_dict(json.load(handle))


def spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    """Build the campaign spec from ``--spec`` and/or inline flags."""
    payload = {}
    if args.spec:
        payload = load_spec_file(args.spec).to_dict()

    grid_fields = {
        "schemes": args.schemes,
        "workloads": args.workloads,
        "seeds": args.seeds,
        "cache_sizes": args.cache_sizes,
        "page_sizes": args.page_sizes,
        "replacement_policies": args.policies,
        "sampling_coefficients": args.sampling,
    }
    grid_overrides = {name: value for name, value in grid_fields.items() if value is not None}
    spec_fields = {
        "name": args.name,
        "records_per_core": args.records,
        "num_cores": args.cores,
        "preset": args.preset,
        "scale": args.scale,
        "warmup_fraction": args.warmup,
        "timeline_interval": getattr(args, "timeline", None),
        "timeline_bounds": getattr(args, "timeline_bounds", None),
        "cell_timeout_seconds": getattr(args, "cell_timeout", None),
    }
    for name, value in spec_fields.items():
        if value is not None:
            payload[name] = value
    payload.setdefault("name", "campaign")

    if grid_overrides:
        grids = payload.get("grids") or [{}]
        payload["grids"] = [dict(grid, **grid_overrides) for grid in grids]
    payload.setdefault("grids", [SweepGrid().to_dict()])
    return CampaignSpec.from_dict(payload)


def _format_duration(seconds: float) -> str:
    """Compact duration for progress lines: ``42s``, ``3m05s``, ``1h02m``."""
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def _print_progress(
    done: int, total: int, outcome: CellOutcome, stream: TextIO, start: Optional[float] = None
) -> None:
    if outcome.from_store:
        status = "store"
    elif outcome.ok:
        status = f"{outcome.wall_seconds:.2f}s"
    else:
        status = "ERROR"
    timing = ""
    if start is not None and done:
        elapsed = time.perf_counter() - start
        # Naive per-cell average: good enough to answer "tonight or tomorrow?".
        eta = elapsed / done * (total - done)
        timing = f"  ({_format_duration(elapsed)} elapsed, eta {_format_duration(eta)})"
    print(f"  [{done}/{total}] {outcome.cell.describe():<40s} {status}{timing}", file=stream)


def _report_table(report: CampaignReport) -> str:
    rows = []
    for outcome in report.outcomes:
        if not outcome.ok:
            continue
        summary = outcome.result.summary()
        rows.append([
            outcome.cell.label,
            outcome.cell.workload,
            outcome.cell.seed,
            summary["ipc"],
            summary["miss_rate"],
            summary["mpki"],
            summary["in_bpi"],
            summary["off_bpi"],
            "store" if outcome.from_store else "run",
        ])
    headers = ["scheme", "workload", "seed", "ipc", "miss_rate", "mpki", "in_bpi", "off_bpi", "source"]
    return format_table(headers, rows, title=f"Campaign '{report.spec.name}'")


def _supervisor_config(args: argparse.Namespace) -> Optional[SupervisorConfig]:
    """Build a :class:`SupervisorConfig` from CLI overrides (None = defaults)."""
    overrides: Dict[str, Any] = {}
    if args.retries is not None:
        overrides["max_attempts"] = args.retries
    if args.backoff is not None:
        overrides["backoff_base"] = args.backoff
    if args.stale_after is not None:
        overrides["stale_after"] = args.stale_after
    return SupervisorConfig(**overrides) if overrides else None


def cmd_run(args: argparse.Namespace, stream: TextIO) -> int:
    spec = spec_from_args(args)
    store = ResultStore(args.store)
    obs = None if args.no_obs else ObsSink.for_directory(Path(args.store) / "obs")
    if args.inject:
        # Deterministic chaos: the plan rides the environment into workers
        # and fire-once claims live under the store's obs directory.
        faults.install(args.inject, state_dir=str(Path(args.store) / "obs" / "faults"))
        print(f"fault injection active: {args.inject}", file=stream)
    start = time.perf_counter()
    progress = None if args.quiet else (
        lambda d, t, o: _print_progress(d, t, o, stream, start=start)
    )
    print(f"campaign '{spec.name}': {spec.num_cells} cells -> {store.path}", file=stream)
    errored = set(store.error_keys())
    if errored:
        retrying = sum(1 for cell in spec.cells() if cell.key() in errored)
        if retrying:
            print(f"retrying {retrying} previously errored cell(s)", file=stream)
    if obs is not None:
        print(f"obs: {obs.events_path} (watch with: status --store {args.store} --live)",
              file=stream)
    previous_handlers = install_signal_handlers()
    try:
        report = run_campaign(spec, store=store, workers=args.workers, progress=progress,
                              force=args.force, obs=obs,
                              checkpoint_warmup=args.checkpoint_warmup,
                              supervisor=_supervisor_config(args),
                              supervise=not args.no_supervise,
                              snapshot_every=args.snapshot_every or None)
    except KeyboardInterrupt:
        # Serial path interrupts land here (the supervised executor converts
        # its own cleanup into a report with interrupted=True); completed
        # cells are already persisted, so resuming is just re-running.
        print("\ninterrupted — completed cells are persisted; re-run to resume",
              file=stream)
        return 130
    finally:
        restore_signal_handlers(previous_handlers)
    counts = report.counts()
    print(file=stream)
    print(_report_table(report), file=stream)
    print(file=stream)
    print(
        f"done: {counts['total']} cells, {counts['simulated']} simulated, "
        f"{counts['from_store']} from store, {counts['errors']} errors",
        file=stream,
    )
    for outcome in report.errors:
        print(f"\nERROR in {outcome.cell.describe()}:\n{outcome.error}", file=stream)
    if report.interrupted:
        print("\ninterrupted — completed cells are persisted; re-run to resume",
              file=stream)
        return 130
    return 1 if report.errors else 0


def _print_live(obs_dir: Path, stream: TextIO,
                stale_after: Optional[float] = None) -> bool:
    """One live telemetry snapshot from heartbeats + events; True once ended."""
    stale_after = STALE_AFTER_SECONDS if stale_after is None else stale_after
    events_path = obs_dir / "events.jsonl"
    records = read_events(events_path) if events_path.exists() else []
    last_start = -1
    for index, record in enumerate(records):
        if record.get("event") == "campaign_start":
            last_start = index
    campaign = records[last_start] if last_start >= 0 else None
    finished = errors = retries = quarantined = revoked = 0
    walls: List[float] = []
    ended = False
    end_status = None
    for record in records[last_start + 1:]:
        event = record.get("event")
        if event == "cell_finish":
            finished += 1
            walls.append(float(record.get("wall_seconds", 0.0)))
        elif event == "cell_error":
            errors += 1
        elif event == "cell_retry":
            retries += 1
        elif event == "cell_quarantined":
            quarantined += 1
        elif event == "lease_revoked":
            revoked += 1
        elif event == "campaign_end":
            ended = True
            end_status = record.get("status")

    # A heartbeat whose PID is gone is a dead worker's leftover, not a live
    # one — a SIGKILLed campaign must not show ghost workers forever.
    beats = [beat for beat in read_heartbeats(obs_dir / "heartbeats")
             if pid_alive(beat.get("pid"))]
    now = time.time()
    live = [beat for beat in beats if not is_stale(beat, now=now, stale_after=stale_after)]
    stale = [beat for beat in beats if is_stale(beat, now=now, stale_after=stale_after)]

    stamp = time.strftime("%H:%M:%S", time.localtime(now))
    if campaign is not None:
        pending = int(campaign.get("pending", 0))
        remaining = max(0, pending - finished - errors)
        line = (f"[{stamp}] campaign '{campaign.get('name')}': "
                f"{finished}/{pending} done, {errors} errors, {remaining} remaining")
        if ended:
            line += " — finished" if end_status in (None, "completed") else f" — {end_status}"
        elif walls and remaining:
            eta = remaining * (sum(walls) / len(walls)) / max(1, len(live))
            line += f", eta {_format_duration(eta)}"
        print(line, file=stream)
        if revoked or retries or quarantined:
            print(f"recoveries: {revoked} lease(s) revoked, {retries} retried, "
                  f"{quarantined} quarantined", file=stream)
    else:
        print(f"[{stamp}] no campaign_start event in {events_path}", file=stream)

    if live:
        rows = []
        for beat in sorted(live, key=lambda b: str(b.get("worker"))):
            in_flight = beat.get("cell") if beat.get("state") == "running" else "-"
            elapsed = _format_duration(now - float(beat.get("started_ts", now)))
            rows.append([beat.get("worker"), beat.get("state"), in_flight or "-",
                         beat.get("cells_done", 0), elapsed])
        print(format_table(["worker", "state", "in-flight cell", "done", "up"], rows),
              file=stream)
    elif not ended:
        print("no live workers", file=stream)
    if stale and not ended:
        names = ", ".join(sorted(str(beat.get("worker", "?")) for beat in stale))
        print(f"stale workers (no heartbeat in >{stale_after:.0f}s): {names}",
              file=stream)
    return ended


def cmd_status(args: argparse.Namespace, stream: TextIO) -> int:
    store = ResultStore(args.store, create=False)
    if args.live:
        obs_dir = Path(args.store) / "obs"
        while True:
            ended = _print_live(obs_dir, stream, stale_after=args.stale_after)
            if ended or not args.poll:
                return 0
            time.sleep(args.poll)
    info = store.status()
    print(f"store: {info['path']}", file=stream)
    print(f"cells: {info['cells']}", file=stream)
    if info["errors"]:
        suffix = ""
        if info.get("poisoned"):
            suffix = f", {info['poisoned']} quarantined as poisoned"
        print(f"errors: {info['errors']} (retried on the next run{suffix})", file=stream)
    if info.get("corrupt_lines"):
        print(f"warning: {info['corrupt_lines']} unparseable store line(s) skipped "
              "(crash mid-append?)", file=stream)
    if info["by_scheme"] or info["errors_by_scheme"]:
        schemes = sorted(set(info["by_scheme"]) | set(info["errors_by_scheme"]))
        rows = [[scheme, info["by_scheme"].get(scheme, 0),
                 info["errors_by_scheme"].get(scheme, 0)] for scheme in schemes]
        print(file=stream)
        print(format_table(["scheme", "cells", "errors"], rows), file=stream)
    if info["by_workload"] or info["errors_by_workload"]:
        workloads = sorted(set(info["by_workload"]) | set(info["errors_by_workload"]))
        rows = [[workload, info["by_workload"].get(workload, 0),
                 info["errors_by_workload"].get(workload, 0)] for workload in workloads]
        print(file=stream)
        print(format_table(["workload", "cells", "errors"], rows), file=stream)
    if args.spec:
        spec = load_spec_file(args.spec)
        pending = sum(1 for cell in spec.cells() if cell.key() not in store)
        print(file=stream)
        print(f"spec '{spec.name}': {spec.num_cells} cells, {pending} pending", file=stream)
    return 0


def cmd_export(args: argparse.Namespace, stream: TextIO) -> int:
    store = ResultStore(args.store, create=False)
    exporter = export_csv if args.format == "csv" else export_json
    if args.output:
        with open(args.output, "w", encoding="utf-8", newline="") as handle:
            exporter(store, handle)
        print(f"wrote {len(store)} rows to {args.output}", file=stream)
    else:
        stream.write(exporter(store))
    return 0


def main(argv: Optional[List[str]] = None, stream: Optional[TextIO] = None) -> int:
    stream = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return cmd_run(args, stream)
        if args.command == "status":
            return cmd_status(args, stream)
        return cmd_export(args, stream)
    except (ValueError, OSError) as exc:
        # Spec/config validation raises loudly (bad scheme, warmup out of
        # range, unreadable spec file); surface it as a CLI error, not a
        # traceback.  Per-cell simulation errors never get here — the
        # executor captures those and cmd_run reports them.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
