"""``python -m repro.campaign`` — run, inspect and export campaigns.

Subcommands::

    run     expand a campaign spec, skip cells the store already holds,
            simulate the rest (optionally across worker processes), and
            persist every fresh result
    status  summarise a store directory (and, given a spec, what remains)
    export  dump a store as CSV or JSON

The campaign can be described either inline (``--schemes banshee alloy
--workloads gcc mcf --seeds 1 2``) or by a JSON spec file (``--spec
campaign.json``, the :meth:`CampaignSpec.to_dict` format).  Inline flags
override the corresponding spec-file fields.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.campaign.driver import CampaignReport, run_campaign
from repro.campaign.executor import CellOutcome
from repro.campaign.export import export_csv, export_json
from repro.campaign.spec import PRESETS, CampaignSpec, SweepGrid
from repro.campaign.store import ResultStore
from repro.dramcache.variants import available_scheme_names, describe_variants
from repro.experiments.report import format_table


def _optional_int(text: str) -> Optional[int]:
    return None if text.lower() in ("none", "default") else int(text)


def _optional_float(text: str) -> Optional[float]:
    return None if text.lower() in ("none", "default") else float(text)


def _optional_str(text: str) -> Optional[str]:
    return None if text.lower() in ("none", "default") else text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Parallel, resumable simulation campaigns with a persistent result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run",
        help="run (or resume) a campaign",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "available schemes and variants:\n  "
            + "\n  ".join(available_scheme_names())
            + "\n\nvariant details:\n"
            + describe_variants()
        ),
    )
    run_parser.add_argument("--store", required=True, help="result store directory")
    run_parser.add_argument("--spec", help="JSON campaign spec file")
    run_parser.add_argument("--name", help="campaign name (default: spec file's name, or 'campaign')")
    run_parser.add_argument("--schemes", nargs="+",
                            help="scheme or variant names, e.g. banshee banshee-tb4k alloy "
                                 "(see the list below; validated before any cell runs)")
    run_parser.add_argument("--workloads", nargs="+", help="workload names, e.g. gcc mcf pagerank")
    run_parser.add_argument("--seeds", nargs="+", type=int, help="RNG seeds")
    run_parser.add_argument("--cache-sizes", nargs="+", type=_optional_int,
                            help="in-package capacities in bytes ('default' keeps the preset)")
    run_parser.add_argument("--page-sizes", nargs="+", type=_optional_int,
                            help="DRAM-cache page sizes in bytes")
    run_parser.add_argument("--policies", nargs="+", type=_optional_str,
                            help="banshee replacement policies (fbr-sample, fbr-nosample, lru)")
    run_parser.add_argument("--sampling", nargs="+", type=_optional_float,
                            help="sampling coefficients")
    run_parser.add_argument("--records", type=int, help="trace records per core")
    run_parser.add_argument("--cores", type=int, help="simulated cores per cell")
    run_parser.add_argument("--preset", choices=PRESETS, help="base configuration preset")
    run_parser.add_argument("--scale", type=float, help="workload footprint scale")
    run_parser.add_argument("--warmup", type=float, help="warmup fraction in [0, 1)")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes (default 1 = serial)")
    run_parser.add_argument("--force", action="store_true",
                            help="re-simulate cells the store already holds")
    run_parser.add_argument("--quiet", action="store_true", help="suppress per-cell progress")

    status_parser = sub.add_parser("status", help="summarise a store directory")
    status_parser.add_argument("--store", required=True)
    status_parser.add_argument("--spec", help="JSON spec file: also report pending cells")

    export_parser = sub.add_parser("export", help="dump a store as CSV or JSON")
    export_parser.add_argument("--store", required=True)
    export_parser.add_argument("--format", choices=("csv", "json"), default="csv")
    export_parser.add_argument("--output", help="output file (default: stdout)")
    return parser


def load_spec_file(path: str) -> CampaignSpec:
    """Load a :meth:`CampaignSpec.to_dict`-format JSON spec file."""
    with open(path, "r", encoding="utf-8") as handle:
        return CampaignSpec.from_dict(json.load(handle))


def spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    """Build the campaign spec from ``--spec`` and/or inline flags."""
    payload = {}
    if args.spec:
        payload = load_spec_file(args.spec).to_dict()

    grid_fields = {
        "schemes": args.schemes,
        "workloads": args.workloads,
        "seeds": args.seeds,
        "cache_sizes": args.cache_sizes,
        "page_sizes": args.page_sizes,
        "replacement_policies": args.policies,
        "sampling_coefficients": args.sampling,
    }
    grid_overrides = {name: value for name, value in grid_fields.items() if value is not None}
    spec_fields = {
        "name": args.name,
        "records_per_core": args.records,
        "num_cores": args.cores,
        "preset": args.preset,
        "scale": args.scale,
        "warmup_fraction": args.warmup,
    }
    for name, value in spec_fields.items():
        if value is not None:
            payload[name] = value
    payload.setdefault("name", "campaign")

    if grid_overrides:
        grids = payload.get("grids") or [{}]
        payload["grids"] = [dict(grid, **grid_overrides) for grid in grids]
    payload.setdefault("grids", [SweepGrid().to_dict()])
    return CampaignSpec.from_dict(payload)


def _print_progress(done: int, total: int, outcome: CellOutcome, stream) -> None:
    if outcome.from_store:
        status = "store"
    elif outcome.ok:
        status = f"{outcome.wall_seconds:.2f}s"
    else:
        status = "ERROR"
    print(f"  [{done}/{total}] {outcome.cell.describe():<40s} {status}", file=stream)


def _report_table(report: CampaignReport) -> str:
    rows = []
    for outcome in report.outcomes:
        if not outcome.ok:
            continue
        summary = outcome.result.summary()
        rows.append([
            outcome.cell.label,
            outcome.cell.workload,
            outcome.cell.seed,
            summary["ipc"],
            summary["miss_rate"],
            summary["mpki"],
            summary["in_bpi"],
            summary["off_bpi"],
            "store" if outcome.from_store else "run",
        ])
    headers = ["scheme", "workload", "seed", "ipc", "miss_rate", "mpki", "in_bpi", "off_bpi", "source"]
    return format_table(headers, rows, title=f"Campaign '{report.spec.name}'")


def cmd_run(args: argparse.Namespace, stream) -> int:
    spec = spec_from_args(args)
    store = ResultStore(args.store)
    progress = None if args.quiet else (lambda d, t, o: _print_progress(d, t, o, stream))
    print(f"campaign '{spec.name}': {spec.num_cells} cells -> {store.path}", file=stream)
    report = run_campaign(spec, store=store, workers=args.workers, progress=progress, force=args.force)
    counts = report.counts()
    print(file=stream)
    print(_report_table(report), file=stream)
    print(file=stream)
    print(
        f"done: {counts['total']} cells, {counts['simulated']} simulated, "
        f"{counts['from_store']} from store, {counts['errors']} errors",
        file=stream,
    )
    for outcome in report.errors:
        print(f"\nERROR in {outcome.cell.describe()}:\n{outcome.error}", file=stream)
    return 1 if report.errors else 0


def cmd_status(args: argparse.Namespace, stream) -> int:
    store = ResultStore(args.store, create=False)
    info = store.status()
    print(f"store: {info['path']}", file=stream)
    print(f"cells: {info['cells']}", file=stream)
    if info["by_scheme"]:
        rows = [[scheme, count] for scheme, count in info["by_scheme"].items()]
        print(file=stream)
        print(format_table(["scheme", "cells"], rows), file=stream)
    if info["by_workload"]:
        rows = [[workload, count] for workload, count in info["by_workload"].items()]
        print(file=stream)
        print(format_table(["workload", "cells"], rows), file=stream)
    if args.spec:
        spec = load_spec_file(args.spec)
        pending = sum(1 for cell in spec.cells() if cell.key() not in store)
        print(file=stream)
        print(f"spec '{spec.name}': {spec.num_cells} cells, {pending} pending", file=stream)
    return 0


def cmd_export(args: argparse.Namespace, stream) -> int:
    store = ResultStore(args.store, create=False)
    exporter = export_csv if args.format == "csv" else export_json
    if args.output:
        with open(args.output, "w", encoding="utf-8", newline="") as handle:
            exporter(store, handle)
        print(f"wrote {len(store)} rows to {args.output}", file=stream)
    else:
        stream.write(exporter(store))
    return 0


def main(argv: Optional[List[str]] = None, stream=None) -> int:
    stream = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return cmd_run(args, stream)
        if args.command == "status":
            return cmd_status(args, stream)
        return cmd_export(args, stream)
    except (ValueError, OSError) as exc:
        # Spec/config validation raises loudly (bad scheme, warmup out of
        # range, unreadable spec file); surface it as a CLI error, not a
        # traceback.  Per-cell simulation errors never get here — the
        # executor captures those and cmd_run reports them.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
