"""Fault-tolerant campaign execution: worker leases, retries, quarantine.

:class:`SupervisedExecutor` is the default parallel path for campaigns.
Unlike the opaque :class:`multiprocessing.Pool` of
:class:`~repro.campaign.executor.ParallelExecutor`, it manages worker
processes directly, which is what lets it survive the failures long
overnight runs actually hit:

* **Leases.**  Every cell attempt runs in its own worker process under a
  *lease*: the supervisor knows which worker holds which cell, since when,
  and until when (``cell_timeout``).  The worker writes its outcome to a
  spool file (atomic rename) and exits; losing the process can never lose
  an already-completed outcome.
* **Dead-worker detection.**  A worker that is OOM-killed or SIGKILLed
  mid-cell is noticed at the next poll (process exit without an outcome
  file); a *wedged* worker is noticed by its lease deadline or by its
  heartbeat going stale (heartbeats advance with simulation progress — see
  :class:`~repro.campaign.executor._ProgressBeat` — so a hung loop goes
  quiet even though the process is alive).
* **Retry with capped exponential backoff.**  A revoked cell is requeued
  after ``backoff_base * 2**(failures-1)`` seconds (capped) and retried on
  a fresh worker.  If mid-cell auto-snapshots are enabled, the retry
  resumes from the last snapshot instead of record zero — bit-identical to
  an uninterrupted run.
* **Quarantine.**  After ``max_attempts`` revocations the cell is given up
  as *poisoned*: it completes as an error outcome (persisted as a store
  error record tagged ``poisoned``) and the campaign moves on — one bad
  configuration cannot sink a thousand-cell run.
* **Graceful degradation.**  Every involuntary worker death shrinks the
  concurrency target by one (never below ``min_workers``): a host that
  keeps OOM-killing eight workers ends up running serially instead of
  thrashing.

Everything observable is emitted as schema-validated events —
``lease_granted`` / ``lease_revoked`` / ``cell_retry`` /
``cell_quarantined`` — so ``python -m repro.campaign status --live`` shows
recoveries as they happen, and tests (driven by :mod:`repro.faults` plans)
assert them deterministically.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.process
import os
import signal
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.campaign.executor import CellOutcome, ProgressFn, execute_cell
from repro.campaign.spec import CampaignCell
from repro.obs.events import EventLog, ObsSink
from repro.obs.heartbeat import STALE_AFTER_SECONDS, sweep_dead
from repro.sim.results import SimulationResults


@dataclass
class SupervisorConfig:
    """Robustness knobs for :class:`SupervisedExecutor`.

    ``cell_timeout`` is the per-*attempt* wall-clock deadline; ``None``
    disables deadline revocation (death and staleness still apply).
    ``stale_after`` revokes a lease whose worker heartbeat has not advanced
    in that many seconds; ``None`` disables the staleness check.
    ``snapshot_every`` (records) turns on mid-cell auto-snapshots so
    retries — and whole re-runs of a killed campaign — resume mid-cell.
    """

    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    cell_timeout: Optional[float] = None
    stale_after: Optional[float] = STALE_AFTER_SECONDS
    snapshot_every: Optional[int] = None
    min_workers: int = 1
    poll_interval: float = 0.05
    mp_start_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive (or None)")
        if self.stale_after is not None and self.stale_after <= 0:
            raise ValueError("stale_after must be positive (or None)")
        if self.snapshot_every is not None and self.snapshot_every <= 0:
            raise ValueError("snapshot_every must be positive (or None)")
        if self.min_workers <= 0:
            raise ValueError("min_workers must be positive")

    def backoff(self, failures: int) -> float:
        """Delay before retry number ``failures + 1`` (capped exponential)."""
        if failures <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2.0 ** (failures - 1)))


class CampaignInterrupted(KeyboardInterrupt):
    """Raised by executors after a SIGINT/SIGTERM cleanup (workers killed)."""


@dataclass
class _Lease:
    """One outstanding cell attempt: which worker, since when, until when."""

    index: int
    cell: CampaignCell
    key: str
    attempt: int
    worker: str
    process: "multiprocessing.process.BaseProcess"
    started: float
    deadline: Optional[float]
    outcome_path: Path
    heartbeat_path: Optional[Path]


def _worker_main(
    worker: str,
    index: int,
    cell: CampaignCell,
    obs: Optional[ObsSink],
    checkpoint_dir: Optional[str],
    snapshot_dir: Optional[str],
    snapshot_every: Optional[int],
    outcome_path: str,
) -> None:
    """Child process body: run one cell, spool the outcome, exit 0.

    The outcome crosses back as JSON via an atomic rename, so a crash at
    any point leaves either no file (the lease is revoked and retried) or a
    complete one — never a half-written outcome.
    """
    heartbeat = obs.heartbeat_writer(worker) if obs is not None else None
    try:
        outcome = execute_cell(
            cell, obs=obs, worker=worker, heartbeat=heartbeat,
            checkpoint_dir=checkpoint_dir, cell_index=index,
            snapshot_dir=snapshot_dir, snapshot_every=snapshot_every,
        )
        payload = {
            "key": outcome.key,
            "result": outcome.result.to_dict() if outcome.result is not None else None,
            "error": outcome.error,
            "wall_seconds": outcome.wall_seconds,
        }
        tmp = outcome_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, outcome_path)
    finally:
        if heartbeat is not None:
            heartbeat.clear()


class SupervisedExecutor:
    """Run cells across directly-managed worker processes with leases.

    Drop-in replacement for
    :class:`~repro.campaign.executor.ParallelExecutor` (same ``run``
    contract: one outcome per cell, in input order, bit-identical results)
    plus the recovery behaviour described in the module docstring.  One
    process is spawned per cell *attempt*; worker slots are named ``w0``,
    ``w1``, ... and reused, so heartbeat files stay per-slot.
    """

    def __init__(self, workers: Optional[int] = None,
                 config: Optional[SupervisorConfig] = None) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.config = config if config is not None else SupervisorConfig()

    # ------------------------------------------------------------------ run

    def run(
        self,
        cells: Sequence[CampaignCell],
        progress: Optional[ProgressFn] = None,
        obs: Optional[ObsSink] = None,
        checkpoint_dir: Optional[str] = None,
        snapshot_dir: Optional[str] = None,
        snapshot_every: Optional[int] = None,
    ) -> List[CellOutcome]:
        if not cells:
            return []
        cfg = self.config
        if snapshot_every is None:
            snapshot_every = cfg.snapshot_every
        if snapshot_every is not None and snapshot_dir is None:
            raise ValueError("snapshot_every requires snapshot_dir")
        context = multiprocessing.get_context(cfg.mp_start_method)
        events = obs.event_log() if obs is not None else None
        heartbeat_dir = Path(obs.heartbeat_dir) if obs is not None and obs.heartbeat_dir else None

        total = len(cells)
        outcomes: Dict[int, CellOutcome] = {}
        #: (index, attempt, ready_at) — cells waiting for a worker slot.
        queue: List[List[float]] = [[index, 1, 0.0] for index in range(total)]
        failures: Dict[int, int] = {}
        leases: Dict[str, _Lease] = {}
        free_slots = [f"w{slot}" for slot in reversed(range(self.workers))]
        target_workers = min(self.workers, total)
        done = 0

        with tempfile.TemporaryDirectory(prefix="repro-supervisor-") as spool:

            def complete(index: int, outcome: CellOutcome) -> None:
                nonlocal done
                outcomes[index] = outcome
                done += 1
                if progress is not None:
                    progress(done, total, outcome)

            def grant(entry: List[float]) -> None:
                index, attempt = int(entry[0]), int(entry[1])
                cell = cells[index]
                key = cell.key()
                worker = free_slots.pop()
                outcome_path = Path(spool) / f"outcome-{index}-{attempt}.json"
                process = context.Process(
                    target=_worker_main,
                    args=(worker, index, cell, obs, checkpoint_dir,
                          snapshot_dir, snapshot_every, str(outcome_path)),
                    daemon=True,
                )
                process.start()
                now = time.time()
                deadline = now + cfg.cell_timeout if cfg.cell_timeout is not None else None
                leases[worker] = _Lease(
                    index=index, cell=cell, key=key, attempt=attempt,
                    worker=worker, process=process, started=now, deadline=deadline,
                    outcome_path=outcome_path,
                    heartbeat_path=(heartbeat_dir / f"{worker}.hb.json"
                                    if heartbeat_dir is not None else None),
                )
                if events is not None:
                    events.emit("lease_granted", key=key, cell=cell.describe(),
                                worker=worker, attempt=attempt,
                                timeout=cfg.cell_timeout)

            def read_outcome(lease: _Lease) -> Optional[CellOutcome]:
                if not lease.outcome_path.exists():
                    return None
                with lease.outcome_path.open("r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                result = (SimulationResults.from_dict(payload["result"])
                          if payload["result"] is not None else None)
                return CellOutcome(
                    lease.cell, payload["key"], result, error=payload["error"],
                    wall_seconds=float(payload["wall_seconds"]),
                    attempt=lease.attempt,
                )

            def heartbeat_stale(lease: _Lease, now: float) -> bool:
                if cfg.stale_after is None:
                    return False
                last = lease.started
                if lease.heartbeat_path is not None:
                    try:
                        with lease.heartbeat_path.open("r", encoding="utf-8") as handle:
                            beat = json.load(handle)
                        last = max(last, float(beat.get("updated_ts", 0.0)))
                    except (OSError, ValueError):
                        pass
                return (now - last) > cfg.stale_after

            def revoke(lease: _Lease, reason: str) -> None:
                nonlocal target_workers
                process = lease.process
                if process.is_alive():
                    process.kill()
                process.join(timeout=10.0)
                # The worker may have spooled its outcome in the race window
                # before the kill landed; a completed cell is never retried.
                finished = read_outcome(lease)
                del leases[lease.worker]
                free_slots.append(lease.worker)
                if finished is not None:
                    complete(lease.index, finished)
                    return
                if lease.heartbeat_path is not None:
                    try:
                        lease.heartbeat_path.unlink()
                    except OSError:
                        pass
                count = failures.get(lease.index, 0) + 1
                failures[lease.index] = count
                # Involuntary deaths erode trust in parallelism: shrink the
                # worker target toward serial instead of thrashing.
                target_workers = max(cfg.min_workers, target_workers - 1)
                if events is not None:
                    events.emit("lease_revoked", key=lease.key,
                                cell=lease.cell.describe(), worker=lease.worker,
                                attempt=lease.attempt, reason=reason,
                                failures=count, workers=target_workers)
                if count >= cfg.max_attempts:
                    error = (f"poisoned: quarantined after {count} failed attempt(s); "
                             f"last revocation: {reason}")
                    if events is not None:
                        events.emit("cell_quarantined", key=lease.key,
                                    cell=lease.cell.describe(), attempts=count,
                                    reason=reason)
                    complete(lease.index, CellOutcome(
                        lease.cell, lease.key, None, error=error,
                        quarantined=True, attempt=lease.attempt,
                    ))
                    return
                delay = cfg.backoff(count)
                if events is not None:
                    events.emit("cell_retry", key=lease.key,
                                cell=lease.cell.describe(), attempt=count + 1,
                                backoff_seconds=round(delay, 3), reason=reason)
                queue.append([lease.index, count + 1, time.time() + delay])

            try:
                while queue or leases:
                    now = time.time()
                    # Dispatch every ready cell onto a free slot, up to the
                    # (possibly degraded) concurrency target.
                    queue.sort(key=lambda entry: entry[2])
                    while queue and len(leases) < target_workers and queue[0][2] <= now:
                        grant(queue.pop(0))

                    progressed = False
                    for lease in list(leases.values()):
                        outcome = read_outcome(lease)
                        if outcome is not None:
                            lease.process.join(timeout=10.0)
                            del leases[lease.worker]
                            free_slots.append(lease.worker)
                            complete(lease.index, outcome)
                            progressed = True
                        elif not lease.process.is_alive():
                            revoke(lease,
                                   reason=f"worker-died (exitcode {lease.process.exitcode})")
                            progressed = True
                        elif lease.deadline is not None and now > lease.deadline:
                            revoke(lease, reason="timeout")
                            progressed = True
                        elif heartbeat_stale(lease, now):
                            revoke(lease, reason="stale-heartbeat")
                            progressed = True
                    if progressed:
                        continue
                    # Nothing moved: sleep until the next backoff expiry (or
                    # one poll interval while leases are outstanding).
                    if leases:
                        time.sleep(cfg.poll_interval)
                    elif queue:
                        time.sleep(max(0.0, min(cfg.poll_interval,
                                                queue[0][2] - time.time())))
            except KeyboardInterrupt:
                # Graceful stop: kill outstanding leases, keep what finished.
                for lease in list(leases.values()):
                    if lease.process.is_alive():
                        lease.process.kill()
                    lease.process.join(timeout=10.0)
                    if lease.heartbeat_path is not None:
                        try:
                            lease.heartbeat_path.unlink()
                        except OSError:
                            pass
                leases.clear()
                raise CampaignInterrupted() from None
            finally:
                if heartbeat_dir is not None:
                    sweep_dead(heartbeat_dir)

        return [outcomes[index] for index in sorted(outcomes)]


def terminate_to_interrupt(signum: int, frame: object) -> None:
    """Signal handler mapping SIGTERM onto KeyboardInterrupt.

    Installed by the CLI around ``campaign run`` so a ``kill <pid>`` (what
    schedulers send first) takes the same graceful path as Ctrl-C: leases
    are killed, completed outcomes stay persisted, and ``campaign_end``
    reports ``status="interrupted"``.
    """
    raise KeyboardInterrupt()


def install_signal_handlers() -> Dict[int, object]:
    """Route SIGTERM to KeyboardInterrupt; returns the previous handlers."""
    previous: Dict[int, object] = {}
    try:
        previous[signal.SIGTERM] = signal.signal(signal.SIGTERM, terminate_to_interrupt)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    return previous


def restore_signal_handlers(previous: Dict[int, object]) -> None:
    """Undo :func:`install_signal_handlers`."""
    for signum, handler in previous.items():
        try:
            signal.signal(signum, handler)  # type: ignore[arg-type]
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
