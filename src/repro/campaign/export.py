"""Exporters: turn a result store into CSV / JSON tables.

Follows the raw-results -> CSV -> figures pipeline shape of reproduction
harnesses: campaigns append raw JSONL records, and these helpers project
them onto flat rows (sweep coordinates + headline metrics) that plotting
or spreadsheet tooling can consume without touching the simulator.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence, TextIO

from repro.campaign.store import ResultStore
from repro.sim.results import SimulationResults

#: Column order for exports: sweep coordinates first, then metrics.
EXPORT_COLUMNS: Sequence[str] = (
    "label",
    "scheme",
    "workload",
    "seed",
    "records_per_core",
    "scale",
    "warmup_fraction",
    "num_cores",
    "page_size",
    "cache_size",
    "replacement_policy",
    "sampling_coefficient",
    "instructions",
    "cycles",
    "ipc",
    "miss_rate",
    "mpki",
    "in_bpi",
    "off_bpi",
    "wall_time_seconds",
    "key",
)


def result_rows(store: ResultStore) -> List[Dict]:
    """One flat dict per stored cell, ordered by insertion.

    Error records (failed cells awaiting retry) carry no metrics and are
    excluded; ``python -m repro.campaign status`` reports them instead.
    """
    rows: List[Dict] = []
    for record in store.records():
        if "result" not in record:
            continue
        result = SimulationResults.from_dict(record["result"])
        row = dict(record.get("meta", {}))
        summary = result.summary()
        # meta's sweep coordinates win over summary's workload/scheme echo.
        for column, value in summary.items():
            row.setdefault(column, value)
        row["wall_time_seconds"] = round(result.wall_time_seconds, 3)
        row["key"] = record["key"]
        rows.append(row)
    return rows


def export_csv(store: ResultStore, output: Optional[TextIO] = None) -> str:
    """Write the store as CSV; returns the text (and writes to ``output`` file object if given)."""
    rows = result_rows(store)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(EXPORT_COLUMNS), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    text = buffer.getvalue()
    if output is not None:
        output.write(text)
    return text


def export_json(store: ResultStore, output: Optional[TextIO] = None, indent: Optional[int] = 2) -> str:
    """Write the store as a JSON array of flat rows (newline-terminated)."""
    text = json.dumps(result_rows(store), indent=indent, sort_keys=True) + "\n"
    if output is not None:
        output.write(text)
    return text
