"""Cell executors: serial reference path and multiprocessing fan-out.

Both executors take a list of :class:`~repro.campaign.spec.CampaignCell`
and return one :class:`CellOutcome` per cell, in input order.  A cell that
raises is captured as an error outcome instead of aborting the campaign, so
one bad configuration cannot sink a thousand-cell overnight run.

Determinism: workloads are rebuilt inside each worker from (name, seed,
scale, page_size), and the simulator is seeded from the cell alone, so the
parallel path produces results bit-identical to the serial path (modulo
``wall_time_seconds``, which measures the host) — including any attached
interval timeline, which is built from simulated state only.  Results cross
the process boundary as ``SimulationResults.to_dict()`` payloads via
pickle, which preserves floats exactly.

Observability: given an :class:`~repro.obs.events.ObsSink`, both executors
emit structured ``cell_start``/``cell_finish``/``cell_error``/``heartbeat``
events to its JSONL log (one appended line per event, safe across
processes), and every worker process maintains a heartbeat file in the
sink's heartbeat directory — what ``python -m repro.campaign status
--live`` tails to show in-flight cells.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.campaign.spec import CampaignCell
from repro.experiments.runner import run_simulation
from repro.obs.events import ObsSink
from repro.obs.heartbeat import HeartbeatWriter
from repro.sim.results import SimulationResults

#: progress callback: (completed_count, total_count, outcome)
ProgressFn = Callable[[int, int, "CellOutcome"], None]


@dataclass
class CellOutcome:
    """What happened to one cell: a result, a stored hit, or an error."""

    cell: CampaignCell
    key: str
    result: Optional[SimulationResults]
    error: Optional[str] = None
    wall_seconds: float = 0.0
    from_store: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None


def execute_cell(
    cell: CampaignCell,
    obs: Optional[ObsSink] = None,
    worker: Optional[str] = None,
    heartbeat: Optional[HeartbeatWriter] = None,
    checkpoint_dir: Optional[str] = None,
) -> CellOutcome:
    """Run one cell, capturing any exception as an error outcome.

    ``obs`` routes structured events (and, via ``heartbeat`` or a
    per-process writer, liveness updates) to the campaign's sink; all four
    of cell start/finish/error and heartbeats are emitted here so the
    serial and parallel paths produce the same event stream shape.
    ``checkpoint_dir`` enables shared warmup checkpoints (see
    :func:`repro.experiments.runner.run_simulation`); concurrent workers
    writing the same checkpoint are safe — snapshot saves are atomic and
    the content is identical.
    """
    start = time.perf_counter()
    key = cell.key()
    events = obs.event_log() if obs is not None else None
    worker = worker or f"pid-{os.getpid()}"
    if heartbeat is None and obs is not None:
        heartbeat = obs.heartbeat_writer(worker)
    describe = cell.describe()
    if heartbeat is not None:
        heartbeat.beat(state="running", cell=describe, key=key)
    if events is not None:
        events.emit("cell_start", key=key, cell=describe, worker=worker,
                    label=cell.label, scheme=cell.scheme,
                    workload=cell.workload, seed=cell.seed)
        events.emit("heartbeat", worker=worker, state="running", key=key)
    try:
        result = run_simulation(
            cell.config,
            workload_name=cell.workload,
            records_per_core=cell.records_per_core,
            scale=cell.scale,
            seed=cell.seed,
            page_size=cell.page_size,
            warmup_fraction=cell.warmup_fraction,
            timeline_interval=cell.timeline_interval,
            timeline_bounds=cell.timeline_bounds,
            events=events,
            checkpoint_dir=checkpoint_dir,
        )
        wall = time.perf_counter() - start
        if heartbeat is not None:
            heartbeat.finished_cell()
            heartbeat.beat(state="idle")
        if events is not None:
            events.emit("cell_finish", key=key, cell=describe, worker=worker,
                        wall_seconds=round(wall, 6))
            events.emit("heartbeat", worker=worker, state="idle", key=key)
        return CellOutcome(cell, key, result, wall_seconds=wall)
    except Exception as exc:  # noqa: BLE001 — per-cell isolation is the point
        detail = traceback.format_exc(limit=8)
        error = f"{type(exc).__name__}: {exc}\n{detail}"
        wall = time.perf_counter() - start
        if heartbeat is not None:
            heartbeat.beat(state="idle")
        if events is not None:
            events.emit("cell_error", key=key, cell=describe, worker=worker,
                        error=f"{type(exc).__name__}: {exc}",
                        wall_seconds=round(wall, 6))
            events.emit("heartbeat", worker=worker, state="idle", key=key)
        return CellOutcome(cell, key, None, error=error, wall_seconds=wall)


#: Per-process heartbeat writer for pool workers (processes are reused
#: across cells, so the writer — and its cells_done counter — persists).
_WORKER_HEARTBEAT = None


def _worker(
    payload: Tuple[int, CampaignCell, Optional[ObsSink], Optional[str]]
) -> Tuple[int, str, Optional[dict], Optional[str], float]:
    """Pool worker: returns the result as a plain dict so transport is explicit."""
    global _WORKER_HEARTBEAT
    index, cell, obs, checkpoint_dir = payload
    worker = f"worker-{os.getpid()}"
    if obs is not None and _WORKER_HEARTBEAT is None:
        _WORKER_HEARTBEAT = obs.heartbeat_writer(worker)
    outcome = execute_cell(cell, obs=obs, worker=worker, heartbeat=_WORKER_HEARTBEAT,
                           checkpoint_dir=checkpoint_dir)
    result_dict = outcome.result.to_dict() if outcome.result is not None else None
    return (index, outcome.key, result_dict, outcome.error, outcome.wall_seconds)


class SerialExecutor:
    """Run cells one after another in this process (the reference path)."""

    def run(
        self,
        cells: Sequence[CampaignCell],
        progress: Optional[ProgressFn] = None,
        obs: Optional[ObsSink] = None,
        checkpoint_dir: Optional[str] = None,
    ) -> List[CellOutcome]:
        heartbeat = obs.heartbeat_writer("serial") if obs is not None else None
        outcomes: List[CellOutcome] = []
        for index, cell in enumerate(cells):
            outcome = execute_cell(cell, obs=obs, worker="serial", heartbeat=heartbeat,
                                   checkpoint_dir=checkpoint_dir)
            outcomes.append(outcome)
            if progress is not None:
                progress(index + 1, len(cells), outcome)
        return outcomes


class ParallelExecutor:
    """Fan cells out across worker processes with ``multiprocessing.Pool``.

    Args:
        workers: process count (default: ``os.cpu_count()`` via Pool).
        mp_start_method: ``"fork"`` / ``"spawn"`` / ``"forkserver"``; ``None``
            uses the platform default.
    """

    def __init__(self, workers: Optional[int] = None, mp_start_method: Optional[str] = None) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.mp_start_method = mp_start_method

    def run(
        self,
        cells: Sequence[CampaignCell],
        progress: Optional[ProgressFn] = None,
        obs: Optional[ObsSink] = None,
        checkpoint_dir: Optional[str] = None,
    ) -> List[CellOutcome]:
        if not cells:
            return []
        context = multiprocessing.get_context(self.mp_start_method)
        outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
        payloads = [(index, cell, obs, checkpoint_dir) for index, cell in enumerate(cells)]
        done = 0
        with context.Pool(processes=self.workers) as pool:
            for index, key, result_dict, error, wall in pool.imap_unordered(_worker, payloads, chunksize=1):
                cell = cells[index]
                result = SimulationResults.from_dict(result_dict) if result_dict is not None else None
                outcome = CellOutcome(cell, key, result, error=error, wall_seconds=wall)
                outcomes[index] = outcome
                done += 1
                if progress is not None:
                    progress(done, len(cells), outcome)
        return [outcome for outcome in outcomes if outcome is not None]
