"""Cell executors: serial reference path and multiprocessing fan-out.

Both executors take a list of :class:`~repro.campaign.spec.CampaignCell`
and return one :class:`CellOutcome` per cell, in input order.  A cell that
raises is captured as an error outcome instead of aborting the campaign, so
one bad configuration cannot sink a thousand-cell overnight run.

Determinism: workloads are rebuilt inside each worker from (name, seed,
scale, page_size), and the simulator is seeded from the cell alone, so the
parallel path produces results bit-identical to the serial path (modulo
``wall_time_seconds``, which measures the host).  Results cross the process
boundary as ``SimulationResults.to_dict()`` payloads via pickle, which
preserves floats exactly.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.campaign.spec import CampaignCell
from repro.experiments.runner import run_simulation
from repro.sim.results import SimulationResults

#: progress callback: (completed_count, total_count, outcome)
ProgressFn = Callable[[int, int, "CellOutcome"], None]


@dataclass
class CellOutcome:
    """What happened to one cell: a result, a stored hit, or an error."""

    cell: CampaignCell
    key: str
    result: Optional[SimulationResults]
    error: Optional[str] = None
    wall_seconds: float = 0.0
    from_store: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None


def execute_cell(cell: CampaignCell) -> CellOutcome:
    """Run one cell, capturing any exception as an error outcome."""
    start = time.perf_counter()
    try:
        result = run_simulation(
            cell.config,
            workload_name=cell.workload,
            records_per_core=cell.records_per_core,
            scale=cell.scale,
            seed=cell.seed,
            page_size=cell.page_size,
            warmup_fraction=cell.warmup_fraction,
        )
        return CellOutcome(cell, cell.key(), result, wall_seconds=time.perf_counter() - start)
    except Exception as exc:  # noqa: BLE001 — per-cell isolation is the point
        detail = traceback.format_exc(limit=8)
        error = f"{type(exc).__name__}: {exc}\n{detail}"
        return CellOutcome(cell, cell.key(), None, error=error,
                           wall_seconds=time.perf_counter() - start)


def _worker(payload: Tuple[int, CampaignCell]) -> Tuple[int, str, Optional[dict], Optional[str], float]:
    """Pool worker: returns the result as a plain dict so transport is explicit."""
    index, cell = payload
    outcome = execute_cell(cell)
    result_dict = outcome.result.to_dict() if outcome.result is not None else None
    return (index, outcome.key, result_dict, outcome.error, outcome.wall_seconds)


class SerialExecutor:
    """Run cells one after another in this process (the reference path)."""

    def run(self, cells: Sequence[CampaignCell], progress: Optional[ProgressFn] = None) -> List[CellOutcome]:
        outcomes: List[CellOutcome] = []
        for index, cell in enumerate(cells):
            outcome = execute_cell(cell)
            outcomes.append(outcome)
            if progress is not None:
                progress(index + 1, len(cells), outcome)
        return outcomes


class ParallelExecutor:
    """Fan cells out across worker processes with ``multiprocessing.Pool``.

    Args:
        workers: process count (default: ``os.cpu_count()`` via Pool).
        mp_start_method: ``"fork"`` / ``"spawn"`` / ``"forkserver"``; ``None``
            uses the platform default.
    """

    def __init__(self, workers: Optional[int] = None, mp_start_method: Optional[str] = None) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.mp_start_method = mp_start_method

    def run(self, cells: Sequence[CampaignCell], progress: Optional[ProgressFn] = None) -> List[CellOutcome]:
        if not cells:
            return []
        context = multiprocessing.get_context(self.mp_start_method)
        outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
        payloads = list(enumerate(cells))
        done = 0
        with context.Pool(processes=self.workers) as pool:
            for index, key, result_dict, error, wall in pool.imap_unordered(_worker, payloads, chunksize=1):
                cell = cells[index]
                result = SimulationResults.from_dict(result_dict) if result_dict is not None else None
                outcome = CellOutcome(cell, key, result, error=error, wall_seconds=wall)
                outcomes[index] = outcome
                done += 1
                if progress is not None:
                    progress(done, len(cells), outcome)
        return [outcome for outcome in outcomes if outcome is not None]
