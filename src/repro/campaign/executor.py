"""Cell executors: serial reference path and multiprocessing fan-out.

Both executors take a list of :class:`~repro.campaign.spec.CampaignCell`
and return one :class:`CellOutcome` per cell, in input order.  A cell that
raises is captured as an error outcome instead of aborting the campaign, so
one bad configuration cannot sink a thousand-cell overnight run.

Determinism: workloads are rebuilt inside each worker from (name, seed,
scale, page_size), and the simulator is seeded from the cell alone, so the
parallel path produces results bit-identical to the serial path (modulo
``wall_time_seconds``, which measures the host) — including any attached
interval timeline, which is built from simulated state only.  Results cross
the process boundary as ``SimulationResults.to_dict()`` payloads via
pickle, which preserves floats exactly.

Observability: given an :class:`~repro.obs.events.ObsSink`, both executors
emit structured ``cell_start``/``cell_finish``/``cell_error``/``heartbeat``
events to its JSONL log (one appended line per event, safe across
processes), and every worker process maintains a heartbeat file in the
sink's heartbeat directory — what ``python -m repro.campaign status
--live`` tails to show in-flight cells.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro import faults
from repro.campaign.spec import CampaignCell
from repro.experiments.runner import run_simulation
from repro.obs.events import ObsSink
from repro.obs.heartbeat import HeartbeatWriter, sweep_dead
from repro.sim.batch import RunController
from repro.sim.results import SimulationResults

#: progress callback: (completed_count, total_count, outcome)
ProgressFn = Callable[[int, int, "CellOutcome"], None]

#: Default processed-record interval between mid-cell heartbeat refreshes.
#: Chosen so a healthy engine beats several times a second while a wedged
#: one goes quiet — what the supervisor's staleness check keys off.
BEAT_RECORDS = 20_000


class _ProgressBeat(RunController):
    """Refreshes the worker heartbeat at engine edges (progress-based).

    Deliberately not a wall-clock timer thread: the heartbeat only
    advances when the simulation does, so a wedged worker goes stale even
    though its process is alive.
    """

    def __init__(self, heartbeat: HeartbeatWriter, every: int,
                 cell: str, key: str) -> None:
        self.heartbeat = heartbeat
        self.every = every
        self.cell = cell
        self.key = key

    def next_stop(self, processed: int) -> Optional[int]:
        return processed + (self.every - processed % self.every or self.every)

    def on_edge(self, cursor: object) -> bool:
        self.heartbeat.beat(state="running", cell=self.cell, key=self.key)
        return False

    def on_finish(self, cursor: object) -> None:
        return None


@dataclass
class CellOutcome:
    """What happened to one cell: a result, a stored hit, or an error."""

    cell: CampaignCell
    key: str
    result: Optional[SimulationResults]
    error: Optional[str] = None
    wall_seconds: float = 0.0
    from_store: bool = False
    #: The supervisor exhausted this cell's retry budget (stored as a
    #: ``poisoned`` error record so one bad config cannot sink the run).
    quarantined: bool = False
    #: 1-based attempt number that produced this outcome (supervisor path).
    attempt: int = 1

    @property
    def ok(self) -> bool:
        return self.result is not None


def execute_cell(
    cell: CampaignCell,
    obs: Optional[ObsSink] = None,
    worker: Optional[str] = None,
    heartbeat: Optional[HeartbeatWriter] = None,
    checkpoint_dir: Optional[str] = None,
    cell_index: Optional[int] = None,
    snapshot_dir: Optional[str] = None,
    snapshot_every: Optional[int] = None,
    beat_records: int = BEAT_RECORDS,
) -> CellOutcome:
    """Run one cell, capturing any exception as an error outcome.

    ``obs`` routes structured events (and, via ``heartbeat`` or a
    per-process writer, liveness updates) to the campaign's sink; all four
    of cell start/finish/error and heartbeats are emitted here so the
    serial and parallel paths produce the same event stream shape.
    ``checkpoint_dir`` enables shared warmup checkpoints (see
    :func:`repro.experiments.runner.run_simulation`); concurrent workers
    writing the same checkpoint are safe — snapshot saves are atomic and
    the content is identical.

    ``cell_index`` is the cell's position in the campaign's pending order —
    the coordinate fault plans (:mod:`repro.faults`) address cells by.
    ``snapshot_dir``/``snapshot_every`` enable mid-cell auto-snapshots (the
    crash-resume mechanism; see :func:`run_simulation`), and a heartbeat is
    refreshed every ``beat_records`` processed records so the supervisor
    can tell a slow worker from a wedged one.
    """
    start = time.perf_counter()
    key = cell.key()
    events = obs.event_log() if obs is not None else None
    worker = worker or f"pid-{os.getpid()}"
    if heartbeat is None and obs is not None:
        heartbeat = obs.heartbeat_writer(worker)
    describe = cell.describe()
    if heartbeat is not None:
        heartbeat.beat(state="running", cell=describe, key=key)
    if events is not None:
        events.emit("cell_start", key=key, cell=describe, worker=worker,
                    label=cell.label, scheme=cell.scheme,
                    workload=cell.workload, seed=cell.seed)
        events.emit("heartbeat", worker=worker, state="running", key=key)
    faults.set_current_cell(cell_index)
    controller: Optional[RunController] = None
    if heartbeat is not None and beat_records > 0:
        controller = _ProgressBeat(heartbeat, beat_records, describe, key)
    try:
        faults.fire("cell", cell=cell_index)
        result = run_simulation(
            cell.config,
            workload_name=cell.workload,
            records_per_core=cell.records_per_core,
            scale=cell.scale,
            seed=cell.seed,
            page_size=cell.page_size,
            warmup_fraction=cell.warmup_fraction,
            timeline_interval=cell.timeline_interval,
            timeline_bounds=cell.timeline_bounds,
            events=events,
            checkpoint_dir=checkpoint_dir,
            snapshot_dir=snapshot_dir,
            snapshot_every=snapshot_every,
            controller=controller,
        )
        wall = time.perf_counter() - start
        if heartbeat is not None:
            heartbeat.finished_cell()
            heartbeat.beat(state="idle")
        if events is not None:
            events.emit("cell_finish", key=key, cell=describe, worker=worker,
                        wall_seconds=round(wall, 6))
            events.emit("heartbeat", worker=worker, state="idle", key=key)
        return CellOutcome(cell, key, result, wall_seconds=wall)
    except Exception as exc:  # noqa: BLE001 — per-cell isolation is the point
        detail = traceback.format_exc(limit=8)
        error = f"{type(exc).__name__}: {exc}\n{detail}"
        wall = time.perf_counter() - start
        if heartbeat is not None:
            heartbeat.beat(state="idle")
        if events is not None:
            events.emit("cell_error", key=key, cell=describe, worker=worker,
                        error=f"{type(exc).__name__}: {exc}",
                        wall_seconds=round(wall, 6))
            events.emit("heartbeat", worker=worker, state="idle", key=key)
        return CellOutcome(cell, key, None, error=error, wall_seconds=wall)


#: Per-process heartbeat writer for pool workers (processes are reused
#: across cells, so the writer — and its cells_done counter — persists).
_WORKER_HEARTBEAT = None


def _worker(
    payload: Tuple[int, CampaignCell, Optional[ObsSink], Optional[str],
                   Optional[str], Optional[int]]
) -> Tuple[int, str, Optional[dict], Optional[str], float]:
    """Pool worker: returns the result as a plain dict so transport is explicit."""
    global _WORKER_HEARTBEAT
    index, cell, obs, checkpoint_dir, snapshot_dir, snapshot_every = payload
    worker = f"worker-{os.getpid()}"
    if obs is not None and _WORKER_HEARTBEAT is None:
        _WORKER_HEARTBEAT = obs.heartbeat_writer(worker)
    outcome = execute_cell(cell, obs=obs, worker=worker, heartbeat=_WORKER_HEARTBEAT,
                           checkpoint_dir=checkpoint_dir, cell_index=index,
                           snapshot_dir=snapshot_dir, snapshot_every=snapshot_every)
    result_dict = outcome.result.to_dict() if outcome.result is not None else None
    return (index, outcome.key, result_dict, outcome.error, outcome.wall_seconds)


class SerialExecutor:
    """Run cells one after another in this process (the reference path)."""

    def run(
        self,
        cells: Sequence[CampaignCell],
        progress: Optional[ProgressFn] = None,
        obs: Optional[ObsSink] = None,
        checkpoint_dir: Optional[str] = None,
        snapshot_dir: Optional[str] = None,
        snapshot_every: Optional[int] = None,
    ) -> List[CellOutcome]:
        heartbeat = obs.heartbeat_writer("serial") if obs is not None else None
        outcomes: List[CellOutcome] = []
        try:
            for index, cell in enumerate(cells):
                outcome = execute_cell(cell, obs=obs, worker="serial", heartbeat=heartbeat,
                                       checkpoint_dir=checkpoint_dir, cell_index=index,
                                       snapshot_dir=snapshot_dir, snapshot_every=snapshot_every)
                outcomes.append(outcome)
                if progress is not None:
                    progress(index + 1, len(cells), outcome)
        finally:
            if heartbeat is not None:
                heartbeat.clear()
        return outcomes


class ParallelExecutor:
    """Fan cells out across worker processes with ``multiprocessing.Pool``.

    Args:
        workers: process count (default: ``os.cpu_count()`` via Pool).
        mp_start_method: ``"fork"`` / ``"spawn"`` / ``"forkserver"``; ``None``
            uses the platform default.
    """

    def __init__(self, workers: Optional[int] = None, mp_start_method: Optional[str] = None) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.mp_start_method = mp_start_method

    def run(
        self,
        cells: Sequence[CampaignCell],
        progress: Optional[ProgressFn] = None,
        obs: Optional[ObsSink] = None,
        checkpoint_dir: Optional[str] = None,
        snapshot_dir: Optional[str] = None,
        snapshot_every: Optional[int] = None,
    ) -> List[CellOutcome]:
        if not cells:
            return []
        context = multiprocessing.get_context(self.mp_start_method)
        outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
        payloads = [(index, cell, obs, checkpoint_dir, snapshot_dir, snapshot_every)
                    for index, cell in enumerate(cells)]
        done = 0
        try:
            with context.Pool(processes=self.workers) as pool:
                for index, key, result_dict, error, wall in pool.imap_unordered(_worker, payloads, chunksize=1):
                    cell = cells[index]
                    result = SimulationResults.from_dict(result_dict) if result_dict is not None else None
                    outcome = CellOutcome(cell, key, result, error=error, wall_seconds=wall)
                    outcomes[index] = outcome
                    done += 1
                    if progress is not None:
                        progress(done, len(cells), outcome)
        finally:
            # Pool workers cannot hook their own exit; drop the heartbeat
            # files their (now gone) PIDs left so finished campaigns do not
            # show ghost workers in ``status --live``.
            if obs is not None and obs.heartbeat_dir:
                sweep_dead(obs.heartbeat_dir)
        return [outcome for outcome in outcomes if outcome is not None]
