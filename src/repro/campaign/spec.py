"""Declarative campaign specifications.

A campaign is a (scheme x workload x parameter x seed) matrix of simulation
cells.  :class:`SweepGrid` describes one rectangular grid of axes;
:class:`CampaignSpec` bundles one or more grids with the run parameters they
share (trace length, core count, base preset) and expands them into concrete
:class:`CampaignCell` objects, each carrying a fully validated
:class:`~repro.sim.config.SystemConfig`.

Specs round-trip through plain dictionaries (:meth:`CampaignSpec.to_dict` /
:meth:`CampaignSpec.from_dict`) so the ``python -m repro.campaign`` CLI can
load them from JSON files.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.dramcache.variants import resolve_scheme
from repro.experiments.runner import (
    DEFAULT_WARMUP_FRACTION,
    simulation_cell_key,
    simulation_cell_meta,
)
from repro.sim.config import SystemConfig
from repro.util.serde import dataclass_from_dict
from repro.workloads.registry import TRACE_PREFIX, trace_path, validate_workload_name

#: Normalised scheme entry: (display label, scheme name, DramCacheConfig overrides).
SchemeEntry = Tuple[str, str, Dict]

PRESETS = ("tiny", "scaled", "paper")


def normalize_scheme(entry: Union[str, Sequence[object]]) -> SchemeEntry:
    """Accept ``"banshee"``, ``("label", "scheme")`` or ``("label", "scheme", overrides)``.

    The scheme name (base scheme or registered variant) is validated here,
    at spec-construction time, so a typo fails with the list of available
    names before any worker process starts simulating.
    """
    if isinstance(entry, str):
        normalized = (entry, entry, {})
    else:
        entry = tuple(entry)
        if len(entry) == 2:
            label, scheme = entry
            normalized = (str(label), str(scheme), {})
        elif len(entry) == 3:
            label, scheme, overrides = entry
            normalized = (str(label), str(scheme), dict(overrides))
        else:
            raise ValueError(f"scheme entry must be a name or a 2/3-tuple, got {entry!r}")
    # Raises ValueError listing every base scheme and variant on a miss.
    resolve_scheme(normalized[1])
    return normalized


def normalize_workload(name: str) -> str:
    """Validate a workload axis entry (generator name or ``trace:<path>``).

    Same up-front convention as schemes: a typo or a missing/corrupt trace
    file fails at spec-construction time listing what is available, before
    any worker process starts simulating.  ``trace:`` paths are resolved to
    absolute paths so cells survive pickling into spawn-based workers
    regardless of the worker's working directory.
    """
    name = str(name)
    validate_workload_name(name)
    path = trace_path(name)
    if path is not None:
        return TRACE_PREFIX + path
    return name


@dataclass
class SweepGrid:
    """One rectangular sweep: the cross product of every axis below.

    Axes whose value is ``None`` leave the preset's default untouched, so the
    default single-``None`` axes contribute exactly one point each and a plain
    scheme x workload matrix stays a scheme x workload matrix.
    """

    schemes: Sequence = ("banshee",)
    workloads: Sequence[str] = ("gcc",)
    seeds: Sequence[int] = (1,)
    cache_sizes: Sequence[Optional[int]] = (None,)
    page_sizes: Sequence[Optional[int]] = (None,)
    replacement_policies: Sequence[Optional[str]] = (None,)
    sampling_coefficients: Sequence[Optional[float]] = (None,)

    def __post_init__(self) -> None:
        for axis in ("schemes", "workloads", "seeds", "cache_sizes", "page_sizes",
                     "replacement_policies", "sampling_coefficients"):
            if not list(getattr(self, axis)):
                raise ValueError(f"sweep axis {axis!r} must not be empty")
        self.schemes = [normalize_scheme(entry) for entry in self.schemes]
        self.workloads = [normalize_workload(name) for name in self.workloads]

    @property
    def num_points(self) -> int:
        count = 1
        for axis in (self.schemes, self.workloads, self.seeds, self.cache_sizes,
                     self.page_sizes, self.replacement_policies, self.sampling_coefficients):
            count *= len(list(axis))
        return count

    def to_dict(self) -> Dict:
        return {
            "schemes": [list(entry) for entry in self.schemes],
            "workloads": list(self.workloads),
            "seeds": list(self.seeds),
            "cache_sizes": list(self.cache_sizes),
            "page_sizes": list(self.page_sizes),
            "replacement_policies": list(self.replacement_policies),
            "sampling_coefficients": list(self.sampling_coefficients),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "SweepGrid":
        return dataclass_from_dict(cls, payload)


@dataclass
class CampaignCell:
    """One fully resolved simulation: everything a worker needs to run it."""

    label: str
    scheme: str
    workload: str
    seed: int
    records_per_core: int
    scale: float
    warmup_fraction: float
    config: SystemConfig
    page_size: Optional[int] = None
    #: Snapshot interval (records) for the obs timeline; None disables it.
    timeline_interval: Optional[int] = None
    #: Latency-histogram bucket edges for the timeline; None keeps defaults.
    timeline_bounds: Optional[Tuple[float, ...]] = None

    def key(self) -> str:
        """Content-hashed store key (see :func:`simulation_cell_key`)."""
        return simulation_cell_key(
            self.config,
            self.workload,
            self.records_per_core,
            self.scale,
            self.seed,
            self.warmup_fraction,
            self.page_size,
            self.timeline_interval,
            self.timeline_bounds,
        )

    def describe(self) -> str:
        """Short human label for progress lines, e.g. ``banshee/gcc seed=1``."""
        text = f"{self.label}/{self.workload} seed={self.seed}"
        if self.label != self.scheme:
            text = f"{self.label} ({self.scheme})/{self.workload} seed={self.seed}"
        return text

    def meta(self) -> Dict:
        """Store metadata: the sweep coordinates this cell was expanded from."""
        return simulation_cell_meta(
            self.config,
            self.workload,
            self.records_per_core,
            self.scale,
            self.seed,
            self.warmup_fraction,
            self.page_size,
            label=self.label,
            timeline_interval=self.timeline_interval,
            timeline_bounds=self.timeline_bounds,
        )


@dataclass
class CampaignSpec:
    """A named campaign: one or more sweep grids plus shared run parameters."""

    name: str
    grids: List[SweepGrid] = field(default_factory=lambda: [SweepGrid()])
    records_per_core: int = 2000
    scale: float = 1.0
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION
    #: None keeps each preset's native core count (tiny: 2, scaled: 4, paper: 16).
    num_cores: Optional[int] = None
    preset: str = "tiny"
    #: Attach a timeline observer snapshotting every N records (None = off).
    timeline_interval: Optional[int] = None
    #: Timeline latency-histogram bucket edges (None keeps the defaults).
    timeline_bounds: Optional[List[float]] = None
    #: Per-cell wall-clock budget for the supervised executor: a lease past
    #: this deadline is revoked and the cell retried (None = no deadline).
    cell_timeout_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign needs a name")
        if self.preset not in PRESETS:
            raise ValueError(f"unknown preset {self.preset!r}; expected one of {PRESETS}")
        if self.records_per_core <= 0:
            raise ValueError("records_per_core must be positive")
        if self.timeline_interval is not None and self.timeline_interval <= 0:
            raise ValueError("timeline_interval must be positive (or None to disable)")
        if self.timeline_bounds is not None:
            if self.timeline_interval is None:
                raise ValueError("timeline_bounds requires timeline_interval")
            bounds = [float(bound) for bound in self.timeline_bounds]
            if not bounds or bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
                raise ValueError("timeline_bounds must be strictly increasing and non-empty")
            self.timeline_bounds = bounds
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.cell_timeout_seconds is not None:
            self.cell_timeout_seconds = float(self.cell_timeout_seconds)
            if self.cell_timeout_seconds <= 0:
                raise ValueError("cell_timeout_seconds must be positive (or None)")
        if not self.grids:
            raise ValueError("campaign needs at least one sweep grid")
        self.grids = [
            grid if isinstance(grid, SweepGrid) else SweepGrid.from_dict(grid)
            for grid in self.grids
        ]

    # ------------------------------------------------------------------ expansion

    def _base_config(self, scheme: str, seed: int) -> SystemConfig:
        cores = {} if self.num_cores is None else {"num_cores": self.num_cores}
        if self.preset == "tiny":
            return SystemConfig.tiny(scheme=scheme, seed=seed, **cores)
        if self.preset == "scaled":
            return SystemConfig.scaled_default(scheme=scheme, seed=seed, **cores)
        return SystemConfig.paper_default(scheme=scheme).with_overrides(seed=seed, **cores)

    def cells(self) -> List[CampaignCell]:
        """Expand every grid into concrete cells (configs validated eagerly)."""
        expanded: List[CampaignCell] = []
        for grid in self.grids:
            points = itertools.product(
                grid.schemes,
                grid.workloads,
                grid.seeds,
                grid.cache_sizes,
                grid.page_sizes,
                grid.replacement_policies,
                grid.sampling_coefficients,
            )
            for (label, scheme, base_overrides), workload, seed, cache_size, page_size, policy, coefficient in points:
                overrides = dict(base_overrides)
                if page_size is not None:
                    overrides["page_size"] = page_size
                if policy is not None:
                    overrides["banshee_policy"] = policy
                if coefficient is not None:
                    overrides["sampling_coefficient"] = coefficient
                config = self._base_config(scheme, seed)
                if overrides:
                    config = config.with_scheme(scheme, **overrides)
                if cache_size is not None:
                    config = config.with_overrides(
                        in_package_dram=dataclasses.replace(
                            config.in_package_dram, capacity_bytes=cache_size
                        )
                    )
                expanded.append(
                    CampaignCell(
                        label=label,
                        scheme=scheme,
                        workload=workload,
                        seed=seed,
                        records_per_core=self.records_per_core,
                        scale=self.scale,
                        warmup_fraction=self.warmup_fraction,
                        config=config,
                        timeline_interval=self.timeline_interval,
                        timeline_bounds=(tuple(self.timeline_bounds)
                                         if self.timeline_bounds is not None else None),
                    )
                )
        return expanded

    @property
    def num_cells(self) -> int:
        return sum(grid.num_points for grid in self.grids)

    # ------------------------------------------------------------------ serialization

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "grids": [grid.to_dict() for grid in self.grids],
            "records_per_core": self.records_per_core,
            "scale": self.scale,
            "warmup_fraction": self.warmup_fraction,
            "num_cores": self.num_cores,
            "preset": self.preset,
            "timeline_interval": self.timeline_interval,
            "timeline_bounds": self.timeline_bounds,
            "cell_timeout_seconds": self.cell_timeout_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "CampaignSpec":
        return dataclass_from_dict(cls, payload)
