"""Workload interface.

A workload describes, for each simulated core, a stream of
:class:`repro.cpu.trace.TraceRecord` — short instruction runs ending in one
memory access.  The same workload object always produces the same traces
(seeded generation), so different DRAM-cache schemes are compared on
identical instruction and access streams, which is what makes the speedup
comparisons of Figure 4 meaningful.

Workloads carry two pieces of timing advice for the core model:

* ``mlp`` — how many outstanding LLC misses the workload typically sustains
  (streaming codes overlap many; pointer chasing overlaps few);
* ``page_size`` — 4 KB normally, 2 MB for the large-page experiments.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from itertools import islice
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cpu.trace import TraceRecord
from repro.util.rng import DeterministicRng

#: Records per column batch produced by :meth:`Workload.trace_batches`.
#: Large enough to amortise per-batch overhead, small enough that a batch
#: of three Python lists stays cache- and memory-friendly.
BATCH_RECORDS = 4096

#: One column batch: parallel ``(gaps, addrs, writes)`` lists of equal length.
TraceBatch = Tuple[List[int], List[int], List[bool]]


class Workload(ABC):
    """Base class for all workload generators."""

    def __init__(
        self,
        name: str,
        num_cores: int,
        footprint_bytes: int,
        mlp: float = 6.0,
        page_size: int = 4096,
        seed: int = 1,
    ) -> None:
        if num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if footprint_bytes <= 0:
            raise ValueError("footprint_bytes must be positive")
        if mlp < 1.0:
            raise ValueError("mlp must be >= 1")
        self.name = name
        self.num_cores = num_cores
        self.footprint_bytes = footprint_bytes
        self.mlp = mlp
        self.page_size = page_size
        self.seed = seed

    @abstractmethod
    def trace(self, core_id: int) -> Iterator[TraceRecord]:
        """Yield the trace records for ``core_id``."""

    def trace_batches(self, core_id: int) -> Iterator[TraceBatch]:
        """Yield ``core_id``'s records as flat ``(gaps, addrs, writes)`` columns.

        The batch engine consumes columns instead of per-record objects; the
        concatenation of the yielded columns must replay *exactly* the record
        sequence :meth:`trace` yields (same order, same values, ending at the
        same record).  Batches may be any positive length; only the final
        batch may be shorter than its predecessors.

        This default shim adapts any legacy :meth:`trace` iterator, so every
        workload keeps working with the batch engine; generators and trace
        replays override it to fill columns directly without constructing
        per-record objects.
        """
        iterator = self.trace(core_id)
        while True:
            gaps: List[int] = []
            addrs: List[int] = []
            writes: List[bool] = []
            append_gap = gaps.append
            append_addr = addrs.append
            append_write = writes.append
            for gap, addr, is_write in islice(iterator, BATCH_RECORDS):
                append_gap(gap)
                append_addr(addr)
                append_write(is_write)
            if not gaps:
                return
            yield gaps, addrs, writes
            if len(gaps) < BATCH_RECORDS:
                return

    @property
    def max_records_per_core(self) -> Optional[int]:
        """Records available on every core, or ``None`` when unbounded.

        Generators synthesise records forever; a replayed capture is finite.
        The engine refuses a record budget above this bound — a core that
        silently ran out of records mid-run would skew the warmup threshold
        and make the results incomparable to a full-length cell.
        """
        return None

    def rng_for_core(self, core_id: int) -> DeterministicRng:
        """Deterministic RNG stream for one core of this workload.

        Seeded with a CRC32 of (name, seed, core_id) rather than ``hash()``:
        Python's string hash is randomised per interpreter (PYTHONHASHSEED),
        which would make traces differ between processes and break both the
        campaign store's resumability contract and spawn-based parallel
        execution matching the serial path.
        """
        token = f"{self.name}|{self.seed}|{core_id}".encode("utf-8")
        return DeterministicRng(zlib.crc32(token) & 0x7FFFFFFF)

    @property
    def footprint_pages(self) -> int:
        """Footprint in (4 KB-equivalent) pages."""
        return self.footprint_bytes // self.page_size

    def describe(self) -> Dict[str, object]:
        """Human-readable summary used by examples and reports."""
        return {
            "name": self.name,
            "cores": self.num_cores,
            "footprint_mb": round(self.footprint_bytes / (1 << 20), 1),
            "page_size": self.page_size,
            "mlp": self.mlp,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r}, cores={self.num_cores})"
