"""Workload registry: build any workload of the evaluation by name.

The sixteen workloads of Figure 4 (five graph benchmarks, eight SPEC
benchmarks, three mixes) are all constructible here, plus every additional
SPEC benchmark used inside the mixes.

Beyond generator names, the registry resolves ``trace:<path>`` to a
:class:`~repro.trace.workload.TraceWorkload` replaying a captured
``.rtrace`` file — so captured traces run everywhere a workload name is
accepted (``SystemConfig`` harnesses, ``repro.campaign``, ``repro.perf``,
the figure functions).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.workloads.base import Workload
from repro.workloads.graph import (
    Graph500Bfs,
    LshWorkload,
    PageRankWorkload,
    SgdWorkload,
    TriangleCountWorkload,
)
from repro.workloads.mixes import MIX_DEFINITIONS, MixWorkload
from repro.workloads.spec import SPEC_PARAMS, SpecWorkload

#: The workloads of the paper's evaluation, in the order of Figure 4.
EVALUATION_WORKLOADS: List[str] = [
    "pagerank",
    "tri_count",
    "graph500",
    "sgd",
    "lsh",
    "bwaves",
    "lbm",
    "mcf",
    "omnetpp",
    "libquantum",
    "gcc",
    "milc",
    "soplex",
    "mix1",
    "mix2",
    "mix3",
]

GRAPH_WORKLOADS: List[str] = ["pagerank", "tri_count", "graph500", "sgd", "lsh"]

_GRAPH_FACTORIES: Dict[str, Callable] = {
    "pagerank": PageRankWorkload,
    "tri_count": TriangleCountWorkload,
    "graph500": Graph500Bfs,
    "sgd": SgdWorkload,
    "lsh": LshWorkload,
}

#: Prefix that resolves a name to a captured-trace replay.
TRACE_PREFIX = "trace:"


def trace_path(name: str) -> Optional[str]:
    """The absolute trace-file path of a ``trace:`` name, else ``None``.

    The single place the prefix is stripped and the path resolved — cell
    keys, spec normalisation and workload construction must all agree on
    the name form.
    """
    if not name.startswith(TRACE_PREFIX):
        return None
    return os.path.abspath(name[len(TRACE_PREFIX):])


def available_workloads() -> List[str]:
    """Every generator name :func:`get_workload` accepts.

    ``trace:<path>`` names are additionally accepted for any readable
    ``.rtrace`` file (see :mod:`repro.trace`); being path-valued they are
    not enumerable here.
    """
    names = list(_GRAPH_FACTORIES) + sorted(SPEC_PARAMS) + sorted(MIX_DEFINITIONS)
    return names


def _unknown_workload_error(name: str) -> ValueError:
    return ValueError(
        f"unknown workload {name!r}; available: {', '.join(available_workloads())} "
        f"(or '{TRACE_PREFIX}<path>.rtrace' to replay a captured trace — "
        f"see python -m repro.trace)"
    )


def validate_workload_name(name: str) -> None:
    """Reject an unresolvable workload name loudly, before any simulation.

    Generator names are checked against the registry; ``trace:`` names are
    checked for an existing, well-formed trace file (header and footer are
    parsed — a truncated capture fails here, not mid-campaign).  Raises
    ``ValueError`` with the available names on a miss.
    """
    path = trace_path(name)
    if path is not None:
        from repro.trace.format import read_meta

        if not os.path.exists(path):
            raise ValueError(f"trace file not found for workload {name!r}: {path}")
        read_meta(path)  # raises TraceFormatError (a ValueError) if invalid
        return
    if name not in _GRAPH_FACTORIES and name not in SPEC_PARAMS and name not in MIX_DEFINITIONS:
        raise _unknown_workload_error(name)


def get_workload(
    name: str,
    num_cores: int,
    scale: float = 1.0,
    seed: int = 1,
    page_size: int = 4096,
) -> Workload:
    """Build a workload by name.

    Args:
        name: one of :func:`available_workloads`, or ``trace:<path>`` to
            replay a captured ``.rtrace`` file.
        num_cores: number of simulated cores.  A trace replay must be run
            with the core count it was captured with (remap the trace to
            change it).
        scale: footprint scaling factor (1.0 = the scaled-default sizing).
            Ignored by trace replays — a trace is literal (use the
            ``scale`` transform instead).
        seed: RNG seed (traces are deterministic in the seed).  Ignored by
            trace replays for the same reason.
        page_size: 4096 for regular pages, 2 MB for the large-page studies.
            A trace replay must be run at the page size it was captured
            with (a mismatch raises — re-capture at the target page size).
    """
    path = trace_path(name)
    if path is not None:
        # Imported lazily: repro.trace builds workloads through this module
        # (capture by name), so a module-level import would be circular.
        from repro.trace.workload import TraceWorkload

        return TraceWorkload(path, num_cores=num_cores, page_size=page_size)
    if name in _GRAPH_FACTORIES:
        return _GRAPH_FACTORIES[name](num_cores, scale=scale, seed=seed, page_size=page_size)
    if name in SPEC_PARAMS:
        return SpecWorkload(name, num_cores, scale=scale, seed=seed, page_size=page_size)
    if name in MIX_DEFINITIONS:
        return MixWorkload(name, num_cores, scale=scale, seed=seed, page_size=page_size)
    raise _unknown_workload_error(name)
