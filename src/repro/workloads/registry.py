"""Workload registry: build any workload of the evaluation by name.

The sixteen workloads of Figure 4 (five graph benchmarks, eight SPEC
benchmarks, three mixes) are all constructible here, plus every additional
SPEC benchmark used inside the mixes.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.base import Workload
from repro.workloads.graph import (
    Graph500Bfs,
    LshWorkload,
    PageRankWorkload,
    SgdWorkload,
    TriangleCountWorkload,
)
from repro.workloads.mixes import MIX_DEFINITIONS, MixWorkload
from repro.workloads.spec import SPEC_PARAMS, SpecWorkload

#: The workloads of the paper's evaluation, in the order of Figure 4.
EVALUATION_WORKLOADS: List[str] = [
    "pagerank",
    "tri_count",
    "graph500",
    "sgd",
    "lsh",
    "bwaves",
    "lbm",
    "mcf",
    "omnetpp",
    "libquantum",
    "gcc",
    "milc",
    "soplex",
    "mix1",
    "mix2",
    "mix3",
]

GRAPH_WORKLOADS: List[str] = ["pagerank", "tri_count", "graph500", "sgd", "lsh"]

_GRAPH_FACTORIES: Dict[str, Callable] = {
    "pagerank": PageRankWorkload,
    "tri_count": TriangleCountWorkload,
    "graph500": Graph500Bfs,
    "sgd": SgdWorkload,
    "lsh": LshWorkload,
}


def available_workloads() -> List[str]:
    """Every name :func:`get_workload` accepts."""
    names = list(_GRAPH_FACTORIES) + sorted(SPEC_PARAMS) + sorted(MIX_DEFINITIONS)
    return names


def get_workload(
    name: str,
    num_cores: int,
    scale: float = 1.0,
    seed: int = 1,
    page_size: int = 4096,
) -> Workload:
    """Build a workload by name.

    Args:
        name: one of :func:`available_workloads`.
        num_cores: number of simulated cores.
        scale: footprint scaling factor (1.0 = the scaled-default sizing).
        seed: RNG seed (traces are deterministic in the seed).
        page_size: 4096 for regular pages, 2 MB for the large-page studies.
    """
    if name in _GRAPH_FACTORIES:
        return _GRAPH_FACTORIES[name](num_cores, scale=scale, seed=seed, page_size=page_size)
    if name in SPEC_PARAMS:
        return SpecWorkload(name, num_cores, scale=scale, seed=seed, page_size=page_size)
    if name in MIX_DEFINITIONS:
        return MixWorkload(name, num_cores, scale=scale, seed=seed, page_size=page_size)
    raise ValueError(f"unknown workload {name!r}; available: {available_workloads()}")
