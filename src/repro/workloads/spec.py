"""SPEC CPU2006-like workloads.

The paper evaluates a subset of SPEC CPU2006 benchmarks with large memory
footprints (Section 5.1.2), running one instance per core (homogeneous
workloads).  Without the proprietary SPEC binaries and SimPoint traces, each
benchmark is modelled as a mixture of the archetypal access patterns of
:mod:`repro.workloads.synthetic`, parameterised to match the qualitative
characterisation the paper relies on:

* ``lbm``, ``bwaves``, ``libquantum`` — streaming codes with excellent
  spatial locality and little page-level reuse (the paper notes lbm pages are
  "only accessed a small number of times before eviction");
* ``mcf``, ``omnetpp`` — pointer-chasing codes with poor spatial locality and
  low MLP (the paper calls out omnetpp's lack of spatial locality);
* ``milc`` — large-footprint code with poor spatial locality;
* ``gcc`` — comparatively compute-bound with a smaller hot set;
* ``soplex`` — mixed streaming and irregular accesses.

Footprints are expressed relative to the scaled in-package DRAM capacity of
the benchmark configuration (8 MB) with the same cache:footprint ratios the
paper has with its 1 GB cache and multi-GB footprints.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.config import MB
from repro.workloads.synthetic import (
    PointerChasePattern,
    StreamPattern,
    SyntheticWorkload,
    ZipfPagePattern,
)

#: Per-benchmark parameters; footprint_mb (cold, streamed/chased data) and
#: hot_mb (the reused region, zipf-distributed) are per core at scale=1.0.
#: ``mean_gap`` is the mean number of instructions between the memory
#: references that leave the core (the generated trace represents the post-L1
#: reference stream of the paper's benchmarks).
SPEC_PARAMS: Dict[str, dict] = {
    "bwaves": dict(footprint_mb=48, hot_mb=1.5, mean_gap=16.0, write_fraction=0.25, mlp=8.0,
                   stream=0.45, zipf=0.55, chase=0.0, zipf_alpha=0.85, burst_lines=8),
    "lbm": dict(footprint_mb=48, hot_mb=1.0, mean_gap=14.0, write_fraction=0.45, mlp=8.0,
                stream=0.80, zipf=0.20, chase=0.0, zipf_alpha=0.6, burst_lines=16),
    "mcf": dict(footprint_mb=64, hot_mb=1.5, mean_gap=14.0, write_fraction=0.15, mlp=3.0,
                stream=0.05, zipf=0.60, chase=0.35, zipf_alpha=0.9, burst_lines=1),
    "omnetpp": dict(footprint_mb=32, hot_mb=1.0, mean_gap=16.0, write_fraction=0.30, mlp=3.0,
                    stream=0.05, zipf=0.55, chase=0.40, zipf_alpha=0.85, burst_lines=1),
    "libquantum": dict(footprint_mb=24, hot_mb=0.75, mean_gap=14.0, write_fraction=0.25, mlp=8.0,
                       stream=0.85, zipf=0.15, chase=0.0, zipf_alpha=0.6, burst_lines=32),
    "gcc": dict(footprint_mb=12, hot_mb=1.0, mean_gap=45.0, write_fraction=0.30, mlp=4.0,
                stream=0.15, zipf=0.80, chase=0.05, zipf_alpha=0.95, burst_lines=4),
    "milc": dict(footprint_mb=40, hot_mb=1.5, mean_gap=16.0, write_fraction=0.35, mlp=6.0,
                 stream=0.15, zipf=0.40, chase=0.45, zipf_alpha=0.75, burst_lines=1),
    "soplex": dict(footprint_mb=40, hot_mb=1.5, mean_gap=20.0, write_fraction=0.20, mlp=5.0,
                   stream=0.35, zipf=0.55, chase=0.10, zipf_alpha=0.85, burst_lines=4),
    # The remaining benchmarks of the heterogeneous mixes of Table 4.
    "gems": dict(footprint_mb=40, hot_mb=1.5, mean_gap=16.0, write_fraction=0.30, mlp=6.0,
                 stream=0.40, zipf=0.55, chase=0.05, zipf_alpha=0.8, burst_lines=8),
    "bzip2": dict(footprint_mb=10, hot_mb=1.0, mean_gap=35.0, write_fraction=0.25, mlp=4.0,
                  stream=0.30, zipf=0.65, chase=0.05, zipf_alpha=0.9, burst_lines=4),
    "leslie": dict(footprint_mb=32, hot_mb=1.5, mean_gap=16.0, write_fraction=0.30, mlp=7.0,
                   stream=0.55, zipf=0.45, chase=0.0, zipf_alpha=0.8, burst_lines=8),
    "cactus": dict(footprint_mb=28, hot_mb=1.5, mean_gap=18.0, write_fraction=0.30, mlp=6.0,
                   stream=0.45, zipf=0.50, chase=0.05, zipf_alpha=0.8, burst_lines=8),
}


def spec_benchmark_names() -> List[str]:
    """Benchmarks with a parameter entry."""
    return sorted(SPEC_PARAMS.keys())


class SpecWorkload(SyntheticWorkload):
    """One SPEC-like benchmark, one instance per core (homogeneous run)."""

    def __init__(self, benchmark: str, num_cores: int, scale: float = 1.0, seed: int = 1,
                 page_size: int = 4096) -> None:
        if benchmark not in SPEC_PARAMS:
            raise ValueError(f"unknown SPEC benchmark {benchmark!r}; known: {spec_benchmark_names()}")
        if scale <= 0:
            raise ValueError("scale must be positive")
        params = SPEC_PARAMS[benchmark]
        footprint = max(int(params["footprint_mb"] * scale * MB), 4 * MB)
        hot_bytes = max(int(params["hot_mb"] * scale * MB), 4 * page_size)
        factories = self._build_pattern_factories(footprint, hot_bytes, params, page_size)
        super().__init__(
            name=benchmark,
            num_cores=num_cores,
            pattern_factories=factories,
            footprint_bytes=(footprint + hot_bytes) * num_cores,
            mean_gap=params["mean_gap"],
            write_fraction=params["write_fraction"],
            mlp=params["mlp"],
            page_size=page_size,
            seed=seed,
        )
        self.benchmark = benchmark
        self.hot_bytes = hot_bytes
        self.per_core_footprint = footprint + hot_bytes

    @staticmethod
    def _build_pattern_factories(footprint: int, hot_bytes: int, params: dict, page_size: int):
        """The hot (reused) region starts at offset 0, the cold region follows it."""
        cold_base = hot_bytes
        factories = []
        if params["stream"] > 0:
            factories.append((params["stream"], lambda base: StreamPattern(base + cold_base, footprint)))
        if params["zipf"] > 0:
            factories.append(
                (
                    params["zipf"],
                    lambda base: ZipfPagePattern(
                        base,
                        hot_bytes,
                        page_size=page_size,
                        zipf_alpha=params["zipf_alpha"],
                        burst_lines=params["burst_lines"],
                    ),
                )
            )
        if params["chase"] > 0:
            factories.append((params["chase"], lambda base: PointerChasePattern(base + cold_base, footprint)))
        return factories

    def core_base(self, core_id: int) -> int:
        """Each core runs its own instance in a disjoint address region."""
        return core_id * self.per_core_footprint
