"""Statistical address-pattern generators.

The SPEC-like workloads (and parts of the graph workloads) are modelled as
mixtures of a small number of archetypal access patterns:

* :class:`StreamPattern` — long sequential runs over a region (lbm, bwaves,
  libquantum): excellent spatial locality, little reuse.
* :class:`ZipfPagePattern` — pages chosen with a Zipf popularity distribution
  and a configurable number of sequential line accesses per page visit: this
  exposes both the temporal-reuse knob (Zipf exponent) and the spatial-
  locality knob (run length), the two properties that separate the DRAM-cache
  schemes.
* :class:`PointerChasePattern` — dependent, effectively random line accesses
  over a region (mcf, omnetpp): poor spatial locality, low MLP.

A :class:`SyntheticWorkload` composes weighted patterns into per-core traces.
Addresses are generated in bulk with numpy and then emitted as trace records,
which keeps generation fast enough to be negligible next to simulation time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cpu.trace import TraceRecord
from repro.sim.config import CACHELINE_SIZE
from repro.util.rng import DeterministicRng
from repro.workloads.base import TraceBatch, Workload

_CHUNK = 4096


class AccessPattern(ABC):
    """One address-generation archetype."""

    def __init__(self, region_base: int, region_bytes: int) -> None:
        if region_bytes <= 0:
            raise ValueError("region_bytes must be positive")
        self.region_base = region_base
        self.region_bytes = region_bytes

    @abstractmethod
    def addresses(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Generate ``count`` line-aligned addresses inside the region."""


class StreamPattern(AccessPattern):
    """Sequential streaming with wrap-around."""

    def __init__(self, region_base: int, region_bytes: int, stride: int = CACHELINE_SIZE) -> None:
        super().__init__(region_base, region_bytes)
        if stride <= 0:
            raise ValueError("stride must be positive")
        self.stride = stride
        self._cursor = 0

    def addresses(self, rng: np.random.Generator, count: int) -> np.ndarray:
        offsets = (self._cursor + np.arange(count, dtype=np.int64) * self.stride) % self.region_bytes
        self._cursor = int((self._cursor + count * self.stride) % self.region_bytes)
        return self.region_base + (offsets // CACHELINE_SIZE) * CACHELINE_SIZE


class PointerChasePattern(AccessPattern):
    """Dependent pseudo-random accesses (uniform over the region)."""

    def addresses(self, rng: np.random.Generator, count: int) -> np.ndarray:
        lines = self.region_bytes // CACHELINE_SIZE
        picks = rng.integers(0, lines, size=count, dtype=np.int64)
        return self.region_base + picks * CACHELINE_SIZE


class ZipfPagePattern(AccessPattern):
    """Zipf-popular pages with sequential bursts inside each visited page."""

    def __init__(
        self,
        region_base: int,
        region_bytes: int,
        page_size: int = 4096,
        zipf_alpha: float = 0.7,
        burst_lines: int = 4,
    ) -> None:
        super().__init__(region_base, region_bytes)
        if page_size <= 0 or region_bytes < page_size:
            raise ValueError("region must hold at least one page")
        if burst_lines <= 0:
            raise ValueError("burst_lines must be positive")
        self.page_size = page_size
        self.zipf_alpha = zipf_alpha
        self.burst_lines = burst_lines
        self.num_pages = region_bytes // page_size
        ranks = np.arange(1, self.num_pages + 1, dtype=np.float64)
        weights = ranks ** (-zipf_alpha)
        self._cdf = np.cumsum(weights / weights.sum())
        self._permutation: np.ndarray = None  # lazily built per-rng is unnecessary; fixed shuffle below

    def _pages(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if self._permutation is None:
            # Spread hot pages across the address space (and thus across the
            # DRAM-cache sets and memory controllers) instead of clustering
            # them at the start of the region.
            self._permutation = rng.permutation(self.num_pages)
        draws = rng.random(count)
        ranks = np.searchsorted(self._cdf, draws)
        return self._permutation[np.clip(ranks, 0, self.num_pages - 1)]

    def addresses(self, rng: np.random.Generator, count: int) -> np.ndarray:
        lines_per_page = self.page_size // CACHELINE_SIZE
        burst = min(self.burst_lines, lines_per_page)
        visits = (count + burst - 1) // burst
        pages = self._pages(rng, visits)
        starts = rng.integers(0, max(1, lines_per_page - burst + 1), size=visits, dtype=np.int64)
        offsets = np.repeat(pages * lines_per_page + starts, burst)[:count]
        offsets = offsets + np.tile(np.arange(burst, dtype=np.int64), visits)[:count]
        return self.region_base + offsets * CACHELINE_SIZE


class SyntheticWorkload(Workload):
    """A workload defined as a weighted mixture of access patterns.

    ``pattern_factories`` is a sequence of ``(weight, factory)`` pairs, where
    each factory builds a *fresh* :class:`AccessPattern` when called with the
    core's base address.  Fresh instances per core keep every core's trace
    independent of how the simulation engine interleaves cores, which is what
    guarantees that all DRAM-cache schemes see byte-identical traces.
    """

    def __init__(
        self,
        name: str,
        num_cores: int,
        pattern_factories: Sequence[Tuple[float, "PatternFactory"]],
        footprint_bytes: int,
        mean_gap: float = 5.0,
        write_fraction: float = 0.2,
        mlp: float = 6.0,
        page_size: int = 4096,
        seed: int = 1,
    ) -> None:
        super().__init__(name, num_cores, footprint_bytes, mlp=mlp, page_size=page_size, seed=seed)
        if not pattern_factories:
            raise ValueError("at least one access pattern is required")
        if mean_gap < 1.0:
            raise ValueError("mean_gap must be >= 1")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        total_weight = sum(weight for weight, _factory in pattern_factories)
        if total_weight <= 0:
            raise ValueError("pattern weights must sum to a positive value")
        self.pattern_factories: List[Tuple[float, PatternFactory]] = [
            (weight / total_weight, factory) for weight, factory in pattern_factories
        ]
        self.mean_gap = mean_gap
        self.write_fraction = write_fraction

    def core_base(self, core_id: int) -> int:
        """Base address of ``core_id``'s address-space slice (0 = shared space)."""
        return 0

    def _column_chunks(self, core_id: int, base: Optional[int] = None) -> Iterator[TraceBatch]:
        """Generate ``(gaps, addrs, writes)`` column chunks for one core.

        Both :meth:`trace` and :meth:`trace_batches` draw from this generator,
        and the RNG call sequence is exactly the pre-batch ``trace`` loop's,
        so record streams are bit-identical across engine modes and across
        releases.
        """
        rng = self.rng_for_core(core_id).generator
        region_base = base if base is not None else self.core_base(core_id)
        patterns = [(weight, factory(region_base)) for weight, factory in self.pattern_factories]
        weights = np.array([weight for weight, _pattern in patterns])
        while True:
            # Pick how many records each pattern contributes to this chunk.
            counts = rng.multinomial(_CHUNK, weights)
            chunks = []
            for (_, pattern), count in zip(patterns, counts):
                if count > 0:
                    chunks.append(pattern.addresses(rng, int(count)))
            addrs = np.concatenate(chunks)
            rng.shuffle(addrs)
            gaps = rng.geometric(1.0 / self.mean_gap, size=len(addrs))
            writes = rng.random(len(addrs)) < self.write_fraction
            yield gaps.tolist(), addrs.tolist(), writes.tolist()

    def trace(self, core_id: int, base: Optional[int] = None) -> Iterator[TraceRecord]:
        for gaps, addrs, writes in self._column_chunks(core_id, base):
            yield from map(TraceRecord, gaps, addrs, writes)

    def trace_batches(self, core_id: int, base: Optional[int] = None) -> Iterator[TraceBatch]:
        """Column batches straight from the generator (no record objects)."""
        return self._column_chunks(core_id, base)


#: A callable returning a fresh AccessPattern (typing alias for readability).
PatternFactory = "callable"
