"""Workload generators: graph analytics, SPEC-like and mixed workloads."""

from repro.workloads.base import Workload
from repro.workloads.graph import (
    Graph500Bfs,
    GraphWorkload,
    LshWorkload,
    PageRankWorkload,
    SgdWorkload,
    TriangleCountWorkload,
)
from repro.workloads.mixes import MixWorkload
from repro.workloads.registry import (
    TRACE_PREFIX,
    available_workloads,
    get_workload,
    validate_workload_name,
)
from repro.workloads.spec import SpecWorkload
from repro.workloads.synthetic import SyntheticWorkload, ZipfPagePattern

__all__ = [
    "Workload",
    "GraphWorkload",
    "Graph500Bfs",
    "LshWorkload",
    "PageRankWorkload",
    "SgdWorkload",
    "TriangleCountWorkload",
    "MixWorkload",
    "TRACE_PREFIX",
    "available_workloads",
    "get_workload",
    "validate_workload_name",
    "SpecWorkload",
    "SyntheticWorkload",
    "ZipfPagePattern",
]
