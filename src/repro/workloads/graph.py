"""Graph-analytics workloads.

The paper's throughput-computing workloads are the graph benchmarks of the
IMP paper (pagerank, triangle counting, graph500 BFS, SGD, LSH).  They are
reproduced here as *algorithm-driven* trace generators: each workload builds
a synthetic graph (or rating matrix / dataset) in CSR-like numpy arrays and
then emits the memory accesses a straightforward implementation would issue —
sequential reads of the index and edge arrays, data-dependent reads (and
writes) of per-vertex state.  The result has the paper's qualitative
signature for these codes: very high memory intensity, a streaming component
with good spatial locality and an irregular component with poor locality,
shared data across all cores.

Memory layout per workload instance (all cores share it):

* ``offsets``  — 8 B per vertex (CSR row pointers),
* ``edges``    — 8 B per edge (CSR column indices),
* ``vertex A`` — 8 B per vertex (e.g. current PageRank value),
* ``vertex B`` — 8 B per vertex (e.g. next PageRank value / visited flags).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.cpu.trace import TraceRecord
from repro.sim.config import CACHELINE_SIZE, MB
from repro.workloads.base import BATCH_RECORDS, TraceBatch, Workload

_WORD = 8


class GraphWorkload(Workload):
    """Base class for CSR-graph-driven workloads."""

    #: Per-workload knobs overridden by subclasses.
    mean_gap = 12.0
    write_fraction_hint = 0.1
    default_mlp = 7.0
    vertex_order = "sequential"  # or "random"
    neighbor_reads_per_edge = 1
    writes_per_vertex = 1
    #: Skew of neighbour popularity at page granularity (hot-vertex locality).
    target_page_alpha = 0.8

    def __init__(
        self,
        name: str,
        num_cores: int,
        num_vertices: int = 1 << 18,
        avg_degree: int = 4,
        scale: float = 1.0,
        seed: int = 1,
        page_size: int = 4096,
    ) -> None:
        if num_vertices <= 0 or avg_degree <= 0:
            raise ValueError("num_vertices and avg_degree must be positive")
        self.num_vertices = max(1024, int(num_vertices * scale))
        self.avg_degree = avg_degree
        num_edges = self.num_vertices * avg_degree
        footprint = (2 * self.num_vertices + num_edges + self.num_vertices) * _WORD
        super().__init__(
            name,
            num_cores,
            footprint_bytes=footprint,
            mlp=self.default_mlp,
            page_size=page_size,
            seed=seed,
        )
        self._graph_built = False
        self._offsets: np.ndarray = None
        self._degrees: np.ndarray = None
        self._target_cdf: np.ndarray = None

        # Region bases (byte addresses), page aligned.
        self.offsets_base = 0
        self.edges_base = self._align(self.offsets_base + self.num_vertices * _WORD)
        self.vertex_a_base = self._align(self.edges_base + num_edges * _WORD)
        self.vertex_b_base = self._align(self.vertex_a_base + self.num_vertices * _WORD)
        self.vertices_per_page = max(1, self.page_size // _WORD)
        self.num_vertex_pages = (self.num_vertices + self.vertices_per_page - 1) // self.vertices_per_page

    def _align(self, addr: int) -> int:
        return (addr + self.page_size - 1) // self.page_size * self.page_size

    # ------------------------------------------------------------------ graph construction

    def _build_graph(self) -> None:
        """Build the degree sequence once; edge targets are drawn on the fly.

        A power-law-ish degree distribution concentrates edge-list traffic on
        a few hot vertices, giving the temporal locality structure real graph
        workloads show.
        """
        if self._graph_built:
            return
        rng = np.random.default_rng(self.seed)
        raw = rng.pareto(2.0, size=self.num_vertices) + 1.0
        degrees = np.maximum(1, (raw / raw.mean() * self.avg_degree)).astype(np.int64)
        self._degrees = degrees
        self._offsets = np.concatenate(([0], np.cumsum(degrees)))
        # Neighbour popularity is skewed at page granularity: real graphs have
        # hub vertices, and vertex state arrays are laid out so that hot
        # vertices cluster on hot pages.  A Zipf distribution over vertex
        # pages captures exactly the page-level temporal locality the DRAM
        # cache replacement policies compete on.
        ranks = np.arange(1, self.num_vertex_pages + 1, dtype=np.float64)
        weights = ranks ** (-self.target_page_alpha)
        self._target_cdf = np.cumsum(weights / weights.sum())
        self._graph_built = True

    def _vertex_targets(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Data-dependent neighbour ids, skewed towards hot vertex pages."""
        pages = np.searchsorted(self._target_cdf, rng.random(count))
        within = rng.integers(0, self.vertices_per_page, size=count)
        return np.minimum(pages * self.vertices_per_page + within, self.num_vertices - 1)

    # ------------------------------------------------------------------ per-core trace

    def _vertex_range(self, core_id: int) -> range:
        chunk = self.num_vertices // self.num_cores
        start = core_id * chunk
        end = self.num_vertices if core_id == self.num_cores - 1 else start + chunk
        return range(start, end)

    def _vertex_iter(self, core_id: int, rng: np.random.Generator) -> Iterator[int]:
        vertices = self._vertex_range(core_id)
        while True:
            if self.vertex_order == "sequential":
                for vertex in vertices:
                    yield vertex
            else:
                order = rng.permutation(len(vertices))
                for index in order:
                    yield vertices[0] + int(index)

    def trace(self, core_id: int) -> Iterator[TraceRecord]:
        self._build_graph()
        rng = self.rng_for_core(core_id).generator
        gap = max(1, int(self.mean_gap))
        target_pool: np.ndarray = self._vertex_targets(rng, 4096)
        pool_index = 0
        for vertex in self._vertex_iter(core_id, rng):
            degree = int(self._degrees[vertex])
            # Read the CSR row pointer (sequential over the offsets array).
            yield TraceRecord(gap, self.offsets_base + vertex * _WORD, False)
            edge_start = int(self._offsets[vertex])
            needed = degree * self.neighbor_reads_per_edge
            if pool_index + needed > len(target_pool):
                target_pool = self._vertex_targets(rng, max(4096, needed))
                pool_index = 0
            for edge in range(degree):
                # Read the edge list entry (sequential within the row).
                yield TraceRecord(gap, self.edges_base + (edge_start + edge) * _WORD, False)
                for _ in range(self.neighbor_reads_per_edge):
                    neighbor = int(target_pool[pool_index])
                    pool_index += 1
                    # Data-dependent read of the neighbour's state.
                    yield TraceRecord(gap, self.vertex_a_base + neighbor * _WORD, False)
            for _ in range(self.writes_per_vertex):
                # Update this vertex's state.
                yield TraceRecord(gap, self.vertex_b_base + vertex * _WORD, True)

    def trace_batches(self, core_id: int) -> Iterator[TraceBatch]:
        """Native column batches: the exact record stream of :meth:`trace`.

        Builds whole chunks of the per-vertex record pattern
        ``[row-pointer read][edge read, neighbour read(s)]*degree[write]*W``
        with vectorized numpy scatter-assignments instead of constructing one
        :class:`TraceRecord` per access — the per-record cost the batch
        engine exists to avoid.  The RNG draw schedule is replicated exactly
        (the same pool draws at the same vertices, the same permutation per
        random-order sweep), so the stream is record-for-record identical to
        :meth:`trace`; the property tests pin this.

        Chunks are cut at vertex boundaries (so they can run slightly past
        ``BATCH_RECORDS``), at pool-refill points and at sweep ends;
        consumers accept any chunk sizes.
        """
        self._build_graph()
        rng = self.rng_for_core(core_id).generator
        gap = max(1, int(self.mean_gap))
        reads = self.neighbor_reads_per_edge
        writes_per_vertex = self.writes_per_vertex
        rec_per_edge = 1 + reads
        degrees = self._degrees
        offsets = self._offsets
        vertex_range = self._vertex_range(core_id)
        sweep_base = vertex_range[0]
        sweep_len = len(vertex_range)
        sequential = self.vertex_order == "sequential"
        # trace() draws the initial pool before the first vertex.
        pool = self._vertex_targets(rng, 4096)
        pool_index = 0
        sequential_verts = np.arange(sweep_base, sweep_base + sweep_len, dtype=np.int64)
        while True:
            # One sweep over this core's vertex slice, mirroring _vertex_iter
            # (the permutation draw happens at the same point in the RNG
            # stream as the generator's).
            if sequential:
                verts_sweep = sequential_verts
            else:
                verts_sweep = sweep_base + rng.permutation(sweep_len).astype(np.int64)
            d_sweep = degrees[verts_sweep]
            needed_sweep = d_sweep * reads
            records_sweep = 1 + d_sweep * rec_per_edge + writes_per_vertex
            cum_needed = np.concatenate(([0], np.cumsum(needed_sweep)))
            cum_records = np.concatenate(([0], np.cumsum(records_sweep)))
            position = 0
            while position < sweep_len:
                # Vertices that fit the remaining pool (trace() refills when
                # a vertex's draws would run past the pool end).
                fit = int(np.searchsorted(
                    cum_needed, cum_needed[position] + (len(pool) - pool_index), side="right"
                )) - 1 - position
                if fit <= 0:
                    needed = int(needed_sweep[position])
                    pool = self._vertex_targets(rng, max(4096, needed))
                    pool_index = 0
                    continue
                # Cap the chunk at the vertex that crosses BATCH_RECORDS.
                count = int(np.searchsorted(
                    cum_records, cum_records[position] + BATCH_RECORDS, side="left"
                )) - position
                if count < 1:
                    count = 1
                if count > fit:
                    count = fit
                verts = verts_sweep[position:position + count]
                d = d_sweep[position:position + count]
                total = int(cum_records[position + count] - cum_records[position])
                starts = cum_records[position:position + count] - cum_records[position]
                edge_cum = np.concatenate(([0], np.cumsum(d)))
                num_edges = int(edge_cum[-1])
                addr = np.empty(total, dtype=np.int64)
                flag = np.zeros(total, dtype=bool)
                # Row-pointer reads, one per vertex.
                addr[starts] = self.offsets_base + verts * _WORD
                if num_edges:
                    vertex_of_edge = np.repeat(np.arange(count), d)
                    edge_rank = np.arange(num_edges) - edge_cum[vertex_of_edge]
                    pos_edge = starts[vertex_of_edge] + 1 + edge_rank * rec_per_edge
                    edge_index = offsets[verts][vertex_of_edge] + edge_rank
                    addr[pos_edge] = self.edges_base + edge_index * _WORD
                    if reads:
                        draws = pool[pool_index:pool_index + num_edges * reads]
                        neighbors = draws.reshape(num_edges, reads)
                        for read in range(reads):
                            addr[pos_edge + 1 + read] = (
                                self.vertex_a_base + neighbors[:, read] * _WORD
                            )
                        pool_index += num_edges * reads
                if writes_per_vertex:
                    write_starts = starts + 1 + d * rec_per_edge
                    write_addr = self.vertex_b_base + verts * _WORD
                    for write in range(writes_per_vertex):
                        addr[write_starts + write] = write_addr
                        flag[write_starts + write] = True
                position += count
                yield [gap] * total, addr.tolist(), flag.tolist()


class PageRankWorkload(GraphWorkload):
    """PageRank: sequential sweeps with random neighbour-value reads."""

    mean_gap = 8.0
    default_mlp = 8.0
    vertex_order = "sequential"
    neighbor_reads_per_edge = 1
    writes_per_vertex = 1
    target_page_alpha = 1.0

    def __init__(self, num_cores: int, scale: float = 1.0, seed: int = 1, page_size: int = 4096) -> None:
        super().__init__("pagerank", num_cores, num_vertices=1 << 18, avg_degree=4,
                         scale=scale, seed=seed, page_size=page_size)


class TriangleCountWorkload(GraphWorkload):
    """Triangle counting: many irregular adjacency intersections per vertex."""

    mean_gap = 8.0
    default_mlp = 7.0
    vertex_order = "sequential"
    neighbor_reads_per_edge = 2
    writes_per_vertex = 0
    target_page_alpha = 1.0

    def __init__(self, num_cores: int, scale: float = 1.0, seed: int = 1, page_size: int = 4096) -> None:
        super().__init__("tri_count", num_cores, num_vertices=1 << 17, avg_degree=6,
                         scale=scale, seed=seed, page_size=page_size)


class Graph500Bfs(GraphWorkload):
    """Graph500 BFS: random frontier order, visited-flag updates."""

    mean_gap = 9.0
    default_mlp = 6.0
    vertex_order = "random"
    neighbor_reads_per_edge = 1
    writes_per_vertex = 1
    target_page_alpha = 0.9

    def __init__(self, num_cores: int, scale: float = 1.0, seed: int = 1, page_size: int = 4096) -> None:
        super().__init__("graph500", num_cores, num_vertices=1 << 18, avg_degree=4,
                         scale=scale, seed=seed, page_size=page_size)


class SgdWorkload(GraphWorkload):
    """Matrix-factorisation SGD: streaming ratings, random factor rows, writes."""

    mean_gap = 14.0
    default_mlp = 6.0
    vertex_order = "random"
    neighbor_reads_per_edge = 1
    writes_per_vertex = 2
    target_page_alpha = 1.0

    def __init__(self, num_cores: int, scale: float = 1.0, seed: int = 1, page_size: int = 4096) -> None:
        super().__init__("sgd", num_cores, num_vertices=1 << 17, avg_degree=8,
                         scale=scale, seed=seed, page_size=page_size)


class LshWorkload(GraphWorkload):
    """Locality-sensitive hashing: streaming points, random hash-bucket probes."""

    mean_gap = 16.0
    default_mlp = 6.0
    vertex_order = "sequential"
    neighbor_reads_per_edge = 1
    writes_per_vertex = 0
    target_page_alpha = 0.9

    def __init__(self, num_cores: int, scale: float = 1.0, seed: int = 1, page_size: int = 4096) -> None:
        super().__init__("lsh", num_cores, num_vertices=1 << 17, avg_degree=5,
                         scale=scale, seed=seed, page_size=page_size)
