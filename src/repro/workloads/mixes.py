"""Heterogeneous (multi-programmed) SPEC mixes of Table 4.

Each core runs a different SPEC-like benchmark in its own address-space
slice, modelling the paper's multi-programming environment.  The paper's
mixes list 8 distinct benchmarks duplicated across 16 cores; with fewer
simulated cores the first ``num_cores`` entries of the list are used, which
preserves the character of the mix (a blend of streaming, irregular and
compute-bound programs sharing the DRAM cache).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

from repro.cpu.trace import TraceRecord
from repro.sim.config import GB
from repro.workloads.base import TraceBatch, Workload
from repro.workloads.spec import SpecWorkload

#: The benchmark lists of Table 4 ("gems" stands in for GemsFDTD,
#: "leslie" for leslie3d and "cactus" for cactusADM).
MIX_DEFINITIONS: Dict[str, List[str]] = {
    "mix1": ["libquantum", "mcf", "soplex", "milc", "bwaves", "lbm", "omnetpp", "gcc"],
    "mix2": ["libquantum", "mcf", "soplex", "milc", "lbm", "omnetpp", "gems", "bzip2"],
    "mix3": ["mcf", "soplex", "milc", "bwaves", "gcc", "lbm", "leslie", "cactus"],
}


class MixWorkload(Workload):
    """A multi-programmed mixture: one benchmark instance per core."""

    def __init__(self, mix_name: str, num_cores: int, scale: float = 1.0, seed: int = 1,
                 page_size: int = 4096) -> None:
        if mix_name not in MIX_DEFINITIONS:
            raise ValueError(f"unknown mix {mix_name!r}; known: {sorted(MIX_DEFINITIONS)}")
        benchmarks = MIX_DEFINITIONS[mix_name]
        assignment = [benchmarks[core % len(benchmarks)] for core in range(num_cores)]
        self._members: List[SpecWorkload] = [
            SpecWorkload(benchmark, num_cores=1, scale=scale, seed=seed + index, page_size=page_size)
            for index, benchmark in enumerate(assignment)
        ]
        footprint = sum(member.footprint_bytes for member in self._members)
        mlp = sum(member.mlp for member in self._members) / len(self._members)
        super().__init__(mix_name, num_cores, footprint_bytes=footprint, mlp=mlp,
                         page_size=page_size, seed=seed)
        self.assignment = assignment

    def trace(self, core_id: int) -> Iterator[TraceRecord]:
        """Each core runs its benchmark in a private 1 GB-aligned slice."""
        if not 0 <= core_id < self.num_cores:
            raise ValueError("core_id out of range")
        member = self._members[core_id]
        return member.trace(0, base=core_id * GB)

    def trace_batches(self, core_id: int) -> Iterator[TraceBatch]:
        """Column batches from the member generator (same slice as trace)."""
        if not 0 <= core_id < self.num_cores:
            raise ValueError("core_id out of range")
        member = self._members[core_id]
        return member.trace_batches(0, base=core_id * GB)

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["assignment"] = list(self.assignment)
        return info


def mix_names() -> Sequence[str]:
    """Names of the defined mixes."""
    return tuple(sorted(MIX_DEFINITIONS))
