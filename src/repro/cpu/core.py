"""Analytic core timing model.

ZSim models detailed out-of-order cores; at the scale of this reproduction
the relevant first-order behaviour is (a) how many non-memory instructions a
core retires per cycle and (b) how much of a long-latency memory access it
can overlap with other work.  :class:`CoreModel` captures both:

* non-memory instructions advance the core clock by ``gap / issue_width``;
* a memory access adds its hierarchy latency, with LLC-miss latency divided
  by the workload's memory-level parallelism (MLP) factor to model
  overlapping of outstanding misses.

This keeps memory-bound workloads bandwidth-limited (their performance is
dominated by DRAM latency under contention, exactly the regime the paper
studies) while compute-bound workloads stay core-limited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.config import CoreConfig


@dataclass
class CoreStats:
    """Per-core retirement and stall accounting."""

    instructions: int = 0
    memory_accesses: int = 0
    compute_cycles: float = 0.0
    memory_stall_cycles: float = 0.0
    os_stall_cycles: float = 0.0


class CoreModel:
    """One core's clock and timing rules."""

    def __init__(self, core_id: int, config: CoreConfig, mlp: Optional[float] = None) -> None:
        self.core_id = core_id
        self.config = config
        self.mlp = float(mlp) if mlp is not None else float(config.mlp)
        if self.mlp < 1.0:
            raise ValueError("MLP must be >= 1")
        self.clock: float = 0.0
        self.stats = CoreStats()
        self._pending_stall: float = 0.0
        # Level latencies hoisted out of the per-access path.  The float
        # conversions and config attribute chains are invariant, and
        # ``advance_memory`` runs once per trace record.
        self._l1_stall = float(config.l1_hit_latency)
        self._l2_stall = float(config.l2_hit_latency)
        self._l3_stall = float(config.l3_hit_latency)
        self._l3_hit_latency = config.l3_hit_latency
        self._issue_width = config.issue_width

    # ------------------------------------------------------------------ timing

    def advance_compute(self, instructions: int) -> None:
        """Retire ``instructions`` non-memory instructions."""
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        cycles = instructions / self._issue_width
        self.clock += cycles
        self.stats.instructions += instructions
        self.stats.compute_cycles += cycles

    def advance_memory(self, level: str, dram_latency: int = 0) -> None:
        """Account one memory access served by ``level``.

        ``dram_latency`` is only meaningful when ``level == "memory"``; it is
        divided by the MLP factor because an out-of-order core overlaps
        independent misses.
        """
        self.stats.memory_accesses += 1
        if level == "l1":
            stall = self._l1_stall
        elif level == "l2":
            stall = self._l2_stall
        elif level == "l3":
            stall = self._l3_stall
        elif level == "memory":
            stall = self._l3_hit_latency + dram_latency / self.mlp
        else:
            raise ValueError(f"unknown level {level!r}")
        self.clock += stall
        self.stats.memory_stall_cycles += stall

    def add_stall(self, cycles: float) -> None:
        """Queue an OS-induced stall (PTE update, shootdown, HMA freeze)."""
        if cycles < 0:
            raise ValueError("stall cycles must be non-negative")
        self._pending_stall += cycles

    def apply_pending_stalls(self) -> None:
        """Fold queued OS stalls into the clock (called by the engine)."""
        if self._pending_stall > 0:
            self.clock += self._pending_stall
            self.stats.os_stall_cycles += self._pending_stall
            self._pending_stall = 0.0

    # ------------------------------------------------------------------ results

    @property
    def ipc(self) -> float:
        """Instructions per cycle retired so far."""
        if self.clock <= 0:
            return 0.0
        return self.stats.instructions / self.clock
