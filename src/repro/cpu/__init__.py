"""CPU substrate: trace records and the analytic core timing model."""

from repro.cpu.core import CoreModel
from repro.cpu.trace import TraceRecord, TraceStats, TraceStream

__all__ = ["CoreModel", "TraceRecord", "TraceStats", "TraceStream"]
