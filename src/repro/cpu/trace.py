"""Memory trace representation.

A workload is a set of per-core streams of :class:`TraceRecord` tuples.  Each
record represents a short run of ``gap`` instructions whose last instruction
is a memory access to ``addr`` (read or write).  The gap distribution is how
workload generators control memory intensity (bytes per instruction), and the
address sequence is how they control spatial and temporal locality.

Records are plain tuples under the hood (``TraceRecord`` is a NamedTuple) so
that generating and iterating millions of them stays cheap in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, NamedTuple, Sequence, Set, Tuple


class TraceRecord(NamedTuple):
    """``gap`` instructions ending in one memory access."""

    gap: int
    addr: int
    is_write: bool


@dataclass
class TraceStats:
    """Summary statistics of a trace (used by tests and workload validation)."""

    records: int = 0
    instructions: int = 0
    reads: int = 0
    writes: int = 0
    unique_pages: int = 0
    footprint_bytes: int = 0
    #: Highest address touched (0 for an empty trace) — the address *reach*,
    #: which bounds placement decisions the way a sparse footprint cannot.
    max_addr: int = 0

    @property
    def write_fraction(self) -> float:
        """Fraction of memory accesses that are writes."""
        total = self.reads + self.writes
        return self.writes / total if total else 0.0

    @property
    def accesses_per_kilo_instruction(self) -> float:
        """Memory accesses per 1000 instructions (memory intensity)."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.records / self.instructions


class TraceStream:
    """An iterator over trace records that tracks summary statistics."""

    def __init__(self, records: Iterable[TraceRecord], page_size: int = 4096) -> None:
        self._records = iter(records)
        self.page_size = page_size
        self.stats = TraceStats()
        self._pages: set = set()

    def __iter__(self) -> Iterator[TraceRecord]:
        return self

    def __next__(self) -> TraceRecord:
        record = next(self._records)
        self.stats.records += 1
        self.stats.instructions += record.gap
        if record.is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        self._pages.add(record.addr // self.page_size)
        self.stats.unique_pages = len(self._pages)
        self.stats.footprint_bytes = self.stats.unique_pages * self.page_size
        if record.addr > self.stats.max_addr:
            self.stats.max_addr = record.addr
        return record

    @property
    def pages(self) -> Set[int]:
        """The set of page numbers touched so far (live view, do not mutate)."""
        return self._pages


def summarize(records: Iterable[TraceRecord], page_size: int = 4096) -> TraceStats:
    """Consume a record iterable and return its summary statistics."""
    stream = TraceStream(records, page_size=page_size)
    for _record in stream:
        pass
    return stream.stats


def summarize_streams(
    streams: Sequence[Iterable[TraceRecord]], page_size: int = 4096
) -> Tuple[TraceStats, List[TraceStats]]:
    """Summarise a multi-core trace: per-core stats plus a combined view.

    Counters (records, instructions, reads, writes) sum across cores, but
    ``unique_pages``/``footprint_bytes`` are computed over the *union* of the
    per-core page sets — graph workloads share vertex state between cores, so
    summing per-core footprints would double-count shared pages.  This is the
    accounting the trace subsystem stores in every capture's metadata.
    """
    per_core: List[TraceStats] = []
    union: Set[int] = set()
    for records in streams:
        stream = TraceStream(records, page_size=page_size)
        for _record in stream:
            pass
        union |= stream.pages
        per_core.append(stream.stats)
    return combine_stats(per_core, union, page_size), per_core


def combine_stats(per_core: Sequence[TraceStats], shared_pages: Set[int], page_size: int) -> TraceStats:
    """Fold per-core stats into one multi-core summary.

    ``shared_pages`` must be the union of the per-core page sets (per-core
    ``unique_pages`` counts cannot be summed — cores share pages).  Used by
    :func:`summarize_streams` and by the trace writer's stored metadata.
    """
    return TraceStats(
        records=sum(stats.records for stats in per_core),
        instructions=sum(stats.instructions for stats in per_core),
        reads=sum(stats.reads for stats in per_core),
        writes=sum(stats.writes for stats in per_core),
        unique_pages=len(shared_pages),
        footprint_bytes=len(shared_pages) * page_size,
        max_addr=max((stats.max_addr for stats in per_core), default=0),
    )
