"""Memory-controller routing.

Physical addresses are statically mapped to memory controllers at page
granularity (Section 2).  The set of controllers shares one DRAM-cache
scheme object; schemes that keep per-controller hardware (Banshee's tag
buffers) index their internal structures with the controller id returned by
:meth:`MemoryControllerSet.controller_for`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.memctrl.request import AccessResult, MemRequest
from repro.sim.config import SystemConfig

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.dramcache.base import DramCacheScheme


class MemoryControllerSet:
    """All memory controllers of the system."""

    def __init__(self, config: SystemConfig, scheme: "DramCacheScheme") -> None:
        self.config = config
        self.scheme = scheme
        self.num_controllers = config.num_mem_controllers
        # Bound method hoisted once: ``access`` runs for every LLC miss and
        # writeback, and the extra attribute hop is measurable at trace scale.
        self._scheme_access = scheme.access
        self.requests = 0
        self.writebacks = 0

    def controller_for(self, addr: int, page_size: int) -> int:
        """Memory controller owning ``addr`` (static page-granularity mapping)."""
        return (addr // page_size) % self.num_controllers

    def access(self, now: int, request: MemRequest) -> AccessResult:
        """Route one request to the DRAM-cache scheme."""
        self.requests += 1
        if request.is_writeback:
            self.writebacks += 1
        mc_id = self.controller_for(request.addr, request.page_size)
        return self._scheme_access(now, request, mc_id)
