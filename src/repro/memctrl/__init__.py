"""Memory-controller layer: request types and controller routing."""

from repro.memctrl.controller import MemoryControllerSet
from repro.memctrl.request import AccessResult, MappingInfo, MemRequest

__all__ = ["MemoryControllerSet", "AccessResult", "MappingInfo", "MemRequest"]
