"""Memory request and result types exchanged between the LLC and the MCs.

Every L1 miss in Banshee carries the PTE/TLB mapping bits (cached + way)
down the hierarchy (Section 3.2).  In this simulator only requests that
actually reach a memory controller matter, so :class:`MemRequest` carries the
mapping bits the TLB held when the access was issued.  LLC dirty evictions
(writebacks) do not carry mapping information — that is exactly the case the
tag buffer's clean entries and the DRAM-cache tag probe exist for.

These are hot-path objects — one (reused) request per LLC miss plus one per
writeback, and an :class:`AccessResult` per controller access — so they are
plain ``__slots__`` classes rather than dataclasses: no per-instance
``__dict__``, cheaper construction, and cheap in-place mutation for the
preallocated requests :class:`repro.sim.system.System` reuses.  (Manual
``__slots__`` because ``@dataclass(slots=True)`` needs Python 3.10 and
fields with defaults conflict with hand-written slots.)
"""

from __future__ import annotations

from typing import Optional, Tuple


class MappingInfo:
    """Banshee PTE/TLB extension bits carried by a request."""

    __slots__ = ("cached", "way")

    def __init__(self, cached: bool = False, way: int = 0) -> None:
        self.cached = cached
        self.way = way

    def as_tuple(self) -> Tuple[bool, int]:
        """The (cached, way) pair."""
        return (self.cached, self.way)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MappingInfo):
            return NotImplemented
        return self.cached == other.cached and self.way == other.way

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MappingInfo(cached={self.cached!r}, way={self.way!r})"


class MemRequest:
    """One request arriving at a memory controller."""

    __slots__ = ("addr", "is_write", "core_id", "is_writeback", "mapping", "page_size")

    def __init__(
        self,
        addr: int,
        is_write: bool,
        core_id: int,
        is_writeback: bool = False,
        mapping: Optional[MappingInfo] = None,
        page_size: int = 4096,
    ) -> None:
        if addr < 0:
            raise ValueError("address must be non-negative")
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.addr = addr
        self.is_write = is_write
        self.core_id = core_id
        self.is_writeback = is_writeback
        self.mapping = mapping
        self.page_size = page_size

    @property
    def page(self) -> int:
        """Page number of the request at its page size."""
        return self.addr // self.page_size

    @property
    def line(self) -> int:
        """64-byte line number of the request."""
        return self.addr // 64

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MemRequest(addr={self.addr:#x}, is_write={self.is_write!r}, "
            f"core_id={self.core_id!r}, is_writeback={self.is_writeback!r}, "
            f"mapping={self.mapping!r}, page_size={self.page_size!r})"
        )


class AccessResult:
    """Outcome of one memory-controller access."""

    __slots__ = ("latency", "dram_cache_hit", "served_by")

    def __init__(
        self,
        latency: int,
        dram_cache_hit: Optional[bool] = None,
        served_by: str = "off-package",
    ) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.latency = latency
        self.dram_cache_hit = dram_cache_hit
        self.served_by = served_by

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AccessResult(latency={self.latency!r}, "
            f"dram_cache_hit={self.dram_cache_hit!r}, served_by={self.served_by!r})"
        )
