"""Memory request and result types exchanged between the LLC and the MCs.

Every L1 miss in Banshee carries the PTE/TLB mapping bits (cached + way)
down the hierarchy (Section 3.2).  In this simulator only requests that
actually reach a memory controller matter, so :class:`MemRequest` carries the
mapping bits the TLB held when the access was issued.  LLC dirty evictions
(writebacks) do not carry mapping information — that is exactly the case the
tag buffer's clean entries and the DRAM-cache tag probe exist for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class MappingInfo:
    """Banshee PTE/TLB extension bits carried by a request."""

    cached: bool = False
    way: int = 0

    def as_tuple(self) -> tuple:
        """The (cached, way) pair."""
        return (self.cached, self.way)


@dataclass
class MemRequest:
    """One request arriving at a memory controller."""

    addr: int
    is_write: bool
    core_id: int
    is_writeback: bool = False
    mapping: Optional[MappingInfo] = None
    page_size: int = 4096

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError("address must be non-negative")
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")

    @property
    def page(self) -> int:
        """Page number of the request at its page size."""
        return self.addr // self.page_size

    @property
    def line(self) -> int:
        """64-byte line number of the request."""
        return self.addr // 64


@dataclass
class AccessResult:
    """Outcome of one memory-controller access."""

    latency: int
    dram_cache_hit: Optional[bool] = None
    served_by: str = "off-package"

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
