"""DRAM timing model.

Converts the DDR-style parameters of :class:`repro.sim.config.DramTimingConfig`
into CPU-cycle latencies and transfer occupancies.  The model is deliberately
simple — a fixed device access latency (activate + CAS) plus a transfer time
proportional to the number of bytes moved — because the paper's evaluation is
dominated by *bandwidth* (channel occupancy) rather than detailed bank-level
timing.  Row-buffer behaviour is approximated with a configurable hit
fraction that removes the activate component for that fraction of accesses.
"""

from __future__ import annotations

from repro.sim.config import DramTimingConfig


class DramTiming:
    """Precomputed CPU-cycle timing for one DRAM technology."""

    def __init__(
        self,
        timing: DramTimingConfig,
        cpu_freq_ghz: float,
        latency_scale: float = 1.0,
        bandwidth_scale: float = 1.0,
    ) -> None:
        if cpu_freq_ghz <= 0:
            raise ValueError("cpu_freq_ghz must be positive")
        self.config = timing
        self.cpu_freq_ghz = cpu_freq_ghz
        self.latency_scale = latency_scale
        self.bandwidth_scale = bandwidth_scale

        dram_cycle_ns = 1000.0 / timing.bus_mhz
        cpu_cycles_per_dram_cycle = dram_cycle_ns * cpu_freq_ghz

        # Row miss: precharge + activate + CAS.  Row hit: CAS only.
        self._row_miss_latency = (timing.trp + timing.trcd + timing.tcas) * cpu_cycles_per_dram_cycle
        self._row_hit_latency = timing.tcas * cpu_cycles_per_dram_cycle
        self._row_miss_latency *= latency_scale
        self._row_hit_latency *= latency_scale

        # DDR moves ``bus_width_bits`` per edge, i.e. two transfers per bus cycle.
        bytes_per_dram_cycle = (timing.bus_width_bits // 8) * 2.0 * bandwidth_scale
        self._cycles_per_byte = cpu_cycles_per_dram_cycle / bytes_per_dram_cycle

        # Integer latencies precomputed once: these run for every DRAM access
        # and the round/int/max dance is pure overhead when repeated.
        self._row_miss_cycles = max(1, int(round(self._row_miss_latency)))
        self._row_hit_cycles = max(1, int(round(self._row_hit_latency)))
        # Transfer-cycle memo: only a handful of distinct payload sizes occur
        # (line, line+tag, page, metadata), so cache the rounding result.
        self._transfer_cache: dict = {}

    @property
    def row_miss_latency_cycles(self) -> int:
        """Device latency (CPU cycles) for an access that misses the row buffer."""
        return self._row_miss_cycles

    @property
    def row_hit_latency_cycles(self) -> int:
        """Device latency (CPU cycles) for an access that hits the row buffer."""
        return self._row_hit_cycles

    def transfer_cycles(self, num_bytes: int) -> int:
        """Channel occupancy (CPU cycles) to move ``num_bytes``.

        Transfers are rounded up to the minimum transfer granularity of the
        technology (32 B for HBM-class links), which is exactly why a 64 B
        line plus an 8 B tag costs 96 B on the wire in the paper.
        """
        cached = self._transfer_cache.get(num_bytes)
        if cached is not None:
            return cached
        if num_bytes <= 0:
            cycles = 0
        else:
            granule = self.config.min_transfer_bytes
            effective = ((num_bytes + granule - 1) // granule) * granule
            cycles = max(1, int(round(effective * self._cycles_per_byte)))
        self._transfer_cache[num_bytes] = cycles
        return cycles

    def access_latency_cycles(self, row_hit: bool) -> int:
        """Device latency component for one access."""
        return self._row_hit_cycles if row_hit else self._row_miss_cycles
