"""DRAM substrate: timing conversion, channel bandwidth model, devices."""

from repro.dram.channel import DramChannel
from repro.dram.device import DramAccessResult, DramDevice
from repro.dram.timing import DramTiming

__all__ = ["DramChannel", "DramDevice", "DramAccessResult", "DramTiming"]
