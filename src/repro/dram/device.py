"""A DRAM device: a set of channels plus traffic accounting.

Two devices exist in a simulated system — the in-package DRAM (the cache)
and the off-package DRAM (backing memory).  Addresses are interleaved across
the device's channels at page granularity, matching the paper's assumption
that physical addresses map to memory controllers statically at page
granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dram.channel import DramChannel
from repro.dram.timing import DramTiming
from repro.sim.config import DramConfig
from repro.sim.stats import TrafficCategory, TrafficStats


@dataclass
class DramAccessResult:
    """Latency and accounting outcome of one device access."""

    __slots__ = ("latency", "queue_delay", "num_bytes", "channel_id")

    latency: int
    queue_delay: int
    num_bytes: int
    channel_id: int


class DramDevice:
    """One DRAM device (in-package or off-package)."""

    def __init__(
        self,
        config: DramConfig,
        cpu_freq_ghz: float,
        page_size: int = 4096,
        row_hit_fraction: float = 0.5,
    ) -> None:
        self.config = config
        self.page_size = page_size
        self.timing = DramTiming(
            config.timing,
            cpu_freq_ghz,
            latency_scale=config.latency_scale,
            bandwidth_scale=config.bandwidth_scale,
        )
        self.channels: List[DramChannel] = [
            DramChannel(i, self.timing, row_hit_fraction=row_hit_fraction) for i in range(config.num_channels)
        ]
        self._num_channels = config.num_channels
        self.traffic = TrafficStats(config.name)

    @property
    def name(self) -> str:
        """Device name ("in-package" or "off-package")."""
        return self.config.name

    def channel_for(self, addr: int) -> DramChannel:
        """Channel owning ``addr`` (page-granularity interleaving)."""
        page = addr // self.page_size
        return self.channels[page % len(self.channels)]

    def access(
        self, now: int, addr: int, num_bytes: int, category: TrafficCategory, background: bool = False
    ) -> DramAccessResult:
        """Perform one access of ``num_bytes`` at ``addr`` and record its traffic."""
        channel = self.channel_for(addr)
        outcome = channel.access(now, num_bytes, row=addr // 8192, background=background)
        self.traffic.record(category, num_bytes)
        return DramAccessResult(
            latency=outcome.latency,
            queue_delay=outcome.queue_delay,
            num_bytes=num_bytes,
            channel_id=channel.channel_id,
        )

    def access_latency(
        self, now: int, addr: int, num_bytes: int, category: TrafficCategory, background: bool = False
    ) -> int:
        """Allocation-free :meth:`access` returning only the latency.

        This is the path the DRAM-cache schemes drive for every LLC miss;
        it performs the same channel/traffic bookkeeping without building
        :class:`DramAccessResult`/:class:`ChannelAccess` objects.
        """
        channel = self.channels[(addr // self.page_size) % self._num_channels]
        latency = channel.access_latency(now, num_bytes, row=addr // 8192, background=background)
        self.traffic.record(category, num_bytes)
        return latency

    def record_only(self, num_bytes: int, category: TrafficCategory) -> None:
        """Record traffic without a timing effect (used for bulk background moves)."""
        self.traffic.record(category, num_bytes)

    def utilization(self, elapsed_cycles: int) -> float:
        """Average utilisation across channels."""
        if not self.channels:
            return 0.0
        return sum(channel.utilization(elapsed_cycles) for channel in self.channels) / len(self.channels)

    def reset(self) -> None:
        """Reset dynamic channel state and traffic counters."""
        for channel in self.channels:
            channel.reset()
        self.traffic = TrafficStats(self.config.name)
