"""A DRAM channel modelled as a busy-time (bandwidth) resource.

Each channel serialises the transfers routed to it.  A request arriving at
time ``now`` waits until the channel is free, then occupies it for the
transfer time of its payload.  The returned latency therefore includes
queueing delay, which is how bandwidth contention — the central quantity in
the Banshee evaluation — shows up as performance loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import DramTiming


@dataclass
class ChannelAccess:
    """Outcome of a single channel access."""

    __slots__ = ("latency", "queue_delay", "transfer_cycles", "completion_time")

    latency: int
    queue_delay: int
    transfer_cycles: int
    completion_time: int


class DramChannel:
    """One DRAM channel with a simple row-buffer locality approximation.

    Two priority classes are modelled, mirroring how memory controllers
    schedule traffic:

    * **demand** accesses (the line a core is waiting for) are serialised on
      the channel and see queueing delay when it is busy;
    * **background** transfers (cache fills, page replacement moves, dirty
      writebacks) are buffered and drained with lower priority: they consume
      bandwidth during idle gaps first, and only push back demand traffic
      once the buffer (``background_buffer_cycles``) is full.

    Without the second class a single 4 KB page move would block a later
    demand read for thousands of cycles, which is not how real controllers
    with read-priority scheduling behave.
    """

    def __init__(
        self,
        channel_id: int,
        timing: DramTiming,
        row_hit_fraction: float = 0.5,
        background_buffer_cycles: int = 4096,
    ) -> None:
        if not 0.0 <= row_hit_fraction <= 1.0:
            raise ValueError("row_hit_fraction must be in [0, 1]")
        if background_buffer_cycles < 0:
            raise ValueError("background_buffer_cycles must be non-negative")
        self.channel_id = channel_id
        self.timing = timing
        self.row_hit_fraction = row_hit_fraction
        self.background_buffer_cycles = background_buffer_cycles
        self.busy_until = 0
        self.total_busy_cycles = 0
        self.total_requests = 0
        self._background_backlog = 0
        self._last_row: int = -1
        # Row-hit threshold hoisted out of the per-access path.
        self._row_hit_percent = int(row_hit_fraction * 100)
        # Detail fields of the most recent ``access_latency`` call; the
        # :class:`ChannelAccess`-returning wrapper reads them back so the
        # hot path never allocates.
        self.last_queue_delay = 0
        self.last_transfer_cycles = 0
        self.last_completion_time = 0

    def _drain_background(self, now: int) -> None:
        """Use any idle time before ``now`` to drain buffered background work."""
        if self._background_backlog <= 0 or self.busy_until >= now:
            return
        idle = now - self.busy_until
        drained = min(idle, self._background_backlog)
        self.busy_until += drained
        self._background_backlog -= drained

    def access(self, now: int, num_bytes: int, row: int = -1, background: bool = False) -> ChannelAccess:
        """Issue one transfer of ``num_bytes`` at time ``now``.

        Args:
            now: current CPU cycle at the requesting core.
            num_bytes: payload size; occupancy is proportional to it.
            row: row identifier for row-buffer locality (-1 to use the
                statistical row-hit fraction instead).
            background: True for fills/replacement/writeback traffic that is
                not on any core's critical path.
        """
        latency = self.access_latency(now, num_bytes, row=row, background=background)
        return ChannelAccess(
            latency=latency,
            queue_delay=self.last_queue_delay,
            transfer_cycles=self.last_transfer_cycles,
            completion_time=self.last_completion_time,
        )

    def access_latency(self, now: int, num_bytes: int, row: int = -1, background: bool = False) -> int:
        """Allocation-free :meth:`access`: returns the latency only.

        The queue-delay / transfer / completion details of the call are left
        in ``last_queue_delay`` / ``last_transfer_cycles`` /
        ``last_completion_time`` for callers that need them.
        """
        if now < 0:
            raise ValueError("time must be non-negative")
        transfer = self.timing.transfer_cycles(num_bytes)
        if row >= 0:
            row_hit = row == self._last_row
            self._last_row = row
        else:
            # Statistical approximation: alternate deterministically around
            # the configured fraction so behaviour stays reproducible.
            row_hit = (self.total_requests % 100) < self._row_hit_percent
        device_latency = self.timing.access_latency_cycles(row_hit)

        self._drain_background(now)
        self.total_busy_cycles += transfer
        self.total_requests += 1
        self.last_transfer_cycles = transfer

        if background:
            self._background_backlog += transfer
            overflow = self._background_backlog - self.background_buffer_cycles
            if overflow > 0:
                # The fill/writeback buffers are full: the excess applies
                # back-pressure and delays demand traffic like any transfer.
                self.busy_until = max(self.busy_until, now) + overflow
                self._background_backlog = self.background_buffer_cycles
            self.last_queue_delay = 0
            self.last_completion_time = max(now, self.busy_until) + device_latency + transfer
            return device_latency + transfer

        start = max(now, self.busy_until)
        queue_delay = start - now
        self.last_queue_delay = queue_delay
        self.last_completion_time = start + device_latency + transfer
        self.busy_until = start + transfer
        return queue_delay + device_latency + transfer

    @property
    def background_backlog_cycles(self) -> int:
        """Buffered background work not yet charged to the channel timeline."""
        return self._background_backlog

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of ``elapsed_cycles`` this channel spent transferring data."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.total_busy_cycles / elapsed_cycles)

    def reset(self) -> None:
        """Clear all dynamic state (used between simulation phases)."""
        self.busy_until = 0
        self.total_busy_cycles = 0
        self.total_requests = 0
        self._background_backlog = 0
        self._last_row = -1
