"""A DRAM channel modelled as a busy-time (bandwidth) resource.

Each channel serialises the transfers routed to it.  A request arriving at
time ``now`` waits until the channel is free, then occupies it for the
transfer time of its payload.  The returned latency therefore includes
queueing delay, which is how bandwidth contention — the central quantity in
the Banshee evaluation — shows up as performance loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import DramTiming


@dataclass
class ChannelAccess:
    """Outcome of a single channel access."""

    latency: int
    queue_delay: int
    transfer_cycles: int
    completion_time: int


class DramChannel:
    """One DRAM channel with a simple row-buffer locality approximation.

    Two priority classes are modelled, mirroring how memory controllers
    schedule traffic:

    * **demand** accesses (the line a core is waiting for) are serialised on
      the channel and see queueing delay when it is busy;
    * **background** transfers (cache fills, page replacement moves, dirty
      writebacks) are buffered and drained with lower priority: they consume
      bandwidth during idle gaps first, and only push back demand traffic
      once the buffer (``background_buffer_cycles``) is full.

    Without the second class a single 4 KB page move would block a later
    demand read for thousands of cycles, which is not how real controllers
    with read-priority scheduling behave.
    """

    def __init__(
        self,
        channel_id: int,
        timing: DramTiming,
        row_hit_fraction: float = 0.5,
        background_buffer_cycles: int = 4096,
    ) -> None:
        if not 0.0 <= row_hit_fraction <= 1.0:
            raise ValueError("row_hit_fraction must be in [0, 1]")
        if background_buffer_cycles < 0:
            raise ValueError("background_buffer_cycles must be non-negative")
        self.channel_id = channel_id
        self.timing = timing
        self.row_hit_fraction = row_hit_fraction
        self.background_buffer_cycles = background_buffer_cycles
        self.busy_until = 0
        self.total_busy_cycles = 0
        self.total_requests = 0
        self._background_backlog = 0
        self._last_row: int = -1

    def _drain_background(self, now: int) -> None:
        """Use any idle time before ``now`` to drain buffered background work."""
        if self._background_backlog <= 0 or self.busy_until >= now:
            return
        idle = now - self.busy_until
        drained = min(idle, self._background_backlog)
        self.busy_until += drained
        self._background_backlog -= drained

    def access(self, now: int, num_bytes: int, row: int = -1, background: bool = False) -> ChannelAccess:
        """Issue one transfer of ``num_bytes`` at time ``now``.

        Args:
            now: current CPU cycle at the requesting core.
            num_bytes: payload size; occupancy is proportional to it.
            row: row identifier for row-buffer locality (-1 to use the
                statistical row-hit fraction instead).
            background: True for fills/replacement/writeback traffic that is
                not on any core's critical path.
        """
        if now < 0:
            raise ValueError("time must be non-negative")
        transfer = self.timing.transfer_cycles(num_bytes)
        if row >= 0:
            row_hit = row == self._last_row
            self._last_row = row
        else:
            # Statistical approximation: alternate deterministically around
            # the configured fraction so behaviour stays reproducible.
            row_hit = (self.total_requests % 100) < int(self.row_hit_fraction * 100)
        device_latency = self.timing.access_latency_cycles(row_hit)

        self._drain_background(now)
        self.total_busy_cycles += transfer
        self.total_requests += 1

        if background:
            self._background_backlog += transfer
            overflow = self._background_backlog - self.background_buffer_cycles
            if overflow > 0:
                # The fill/writeback buffers are full: the excess applies
                # back-pressure and delays demand traffic like any transfer.
                self.busy_until = max(self.busy_until, now) + overflow
                self._background_backlog = self.background_buffer_cycles
            return ChannelAccess(
                latency=device_latency + transfer,
                queue_delay=0,
                transfer_cycles=transfer,
                completion_time=max(now, self.busy_until) + device_latency + transfer,
            )

        start = max(now, self.busy_until)
        queue_delay = start - now
        completion = start + device_latency + transfer
        self.busy_until = start + transfer
        latency = queue_delay + device_latency + transfer
        return ChannelAccess(
            latency=latency,
            queue_delay=queue_delay,
            transfer_cycles=transfer,
            completion_time=completion,
        )

    @property
    def background_backlog_cycles(self) -> int:
        """Buffered background work not yet charged to the channel timeline."""
        return self._background_backlog

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of ``elapsed_cycles`` this channel spent transferring data."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.total_busy_cycles / elapsed_cycles)

    def reset(self) -> None:
        """Clear all dynamic state (used between simulation phases)."""
        self.busy_until = 0
        self.total_busy_cycles = 0
        self.total_requests = 0
        self._background_backlog = 0
        self._last_row = -1
