"""SRAM cache substrate: replacement policies, set-associative caches, hierarchy."""

from repro.cache.hierarchy import CacheHierarchy, HierarchyAccess
from repro.cache.replacement import FifoPolicy, LruPolicy, RandomPolicy, make_policy
from repro.cache.sram_cache import CacheAccessResult, Eviction, SramCache

__all__ = [
    "CacheHierarchy",
    "HierarchyAccess",
    "FifoPolicy",
    "LruPolicy",
    "RandomPolicy",
    "make_policy",
    "CacheAccessResult",
    "Eviction",
    "SramCache",
]
