"""Replacement policies for set-associative structures.

The policies operate on way indices within one set and are shared by the
SRAM caches, the TLBs and (for LRU) the Unison DRAM-cache baseline.  Each
policy keeps its own per-set ordering state, indexed by set number, so a
single policy object serves a whole cache.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.util.rng import DeterministicRng


class ReplacementPolicy(ABC):
    """Interface for per-set replacement policies."""

    def __init__(self, num_sets: int, num_ways: int) -> None:
        if num_sets <= 0 or num_ways <= 0:
            raise ValueError("num_sets and num_ways must be positive")
        self.num_sets = num_sets
        self.num_ways = num_ways

    @abstractmethod
    def on_access(self, set_index: int, way: int) -> None:
        """Record a hit on ``way`` of ``set_index``."""

    @abstractmethod
    def on_fill(self, set_index: int, way: int) -> None:
        """Record a fill into ``way`` of ``set_index``."""

    @abstractmethod
    def victim(self, set_index: int, valid_ways: List[bool]) -> int:
        """Choose a way to evict from ``set_index``.

        ``valid_ways[way]`` is True when the way currently holds data; invalid
        ways are always preferred as victims.
        """

    def _first_invalid(self, valid_ways: List[bool]) -> Optional[int]:
        for way, valid in enumerate(valid_ways):
            if not valid:
                return way
        return None


class LruPolicy(ReplacementPolicy):
    """Least-recently-used replacement."""

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        # recency[s] lists ways from most- to least-recently used.
        self._recency: List[List[int]] = [list(range(num_ways)) for _ in range(num_sets)]

    def on_access(self, set_index: int, way: int) -> None:
        order = self._recency[set_index]
        order.remove(way)
        order.insert(0, way)

    def on_fill(self, set_index: int, way: int) -> None:
        self.on_access(set_index, way)

    def victim(self, set_index: int, valid_ways: List[bool]) -> int:
        invalid = self._first_invalid(valid_ways)
        if invalid is not None:
            return invalid
        return self._recency[set_index][-1]

    def lru_order(self, set_index: int) -> List[int]:
        """Expose the MRU→LRU ordering (used by tests and the tag buffer)."""
        return list(self._recency[set_index])


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out replacement (used by the TDC baseline)."""

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._insert_order: List[List[int]] = [[] for _ in range(num_sets)]

    def on_access(self, set_index: int, way: int) -> None:
        # FIFO ignores hits.
        return None

    def on_fill(self, set_index: int, way: int) -> None:
        order = self._insert_order[set_index]
        if way in order:
            order.remove(way)
        order.append(way)

    def victim(self, set_index: int, valid_ways: List[bool]) -> int:
        invalid = self._first_invalid(valid_ways)
        if invalid is not None:
            return invalid
        order = self._insert_order[set_index]
        if not order:
            return 0
        return order[0]


class RandomPolicy(ReplacementPolicy):
    """Random replacement."""

    def __init__(self, num_sets: int, num_ways: int, rng: Optional[DeterministicRng] = None) -> None:
        super().__init__(num_sets, num_ways)
        self._rng = rng if rng is not None else DeterministicRng(0)

    def on_access(self, set_index: int, way: int) -> None:
        return None

    def on_fill(self, set_index: int, way: int) -> None:
        return None

    def victim(self, set_index: int, valid_ways: List[bool]) -> int:
        invalid = self._first_invalid(valid_ways)
        if invalid is not None:
            return invalid
        return self._rng.randint(0, self.num_ways)


def make_policy(
    name: str,
    num_sets: int,
    num_ways: int,
    rng: Optional[DeterministicRng] = None,
) -> ReplacementPolicy:
    """Instantiate a replacement policy by name ("lru", "fifo", "random")."""
    if name == "lru":
        return LruPolicy(num_sets, num_ways)
    if name == "fifo":
        return FifoPolicy(num_sets, num_ways)
    if name == "random":
        return RandomPolicy(num_sets, num_ways, rng=rng)
    raise ValueError(f"unknown replacement policy {name!r}")
