"""The on-chip cache hierarchy: per-core L1/L2 and a shared L3 (LLC).

The hierarchy is functional: it answers "which level served this access" and
produces the stream of dirty LLC writebacks that the memory controllers must
handle.  Latency numbers for each level come from the core configuration and
are applied by the core timing model.

Coherence between private caches is not modelled (see DESIGN.md §2): the
studied workloads are dominated by private data and the DRAM-cache schemes
under comparison are below the LLC, where coherence traffic is identical for
all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.sram_cache import Eviction, SramCache
from repro.sim.config import SystemConfig
from repro.util.rng import DeterministicRng


@dataclass
class HierarchyAccess:
    """Outcome of one access walking the hierarchy.

    Attributes:
        level: "l1", "l2", "l3" or "memory" — the level that served the access.
        llc_miss: True when the access must go to a memory controller.
        writebacks: dirty lines evicted from the LLC by this access (these
            become writeback requests to the memory controllers).
    """

    level: str
    llc_miss: bool
    writebacks: List[Eviction] = field(default_factory=list)


class CacheHierarchy:
    """Private L1/L2 per core plus a shared L3."""

    def __init__(self, config: SystemConfig, rng: Optional[DeterministicRng] = None) -> None:
        self.config = config
        rng = rng if rng is not None else DeterministicRng(config.seed)
        self.l1: List[SramCache] = [
            SramCache(f"l1-{core}", config.l1, rng=rng.fork(100 + core)) for core in range(config.num_cores)
        ]
        self.l2: List[SramCache] = [
            SramCache(f"l2-{core}", config.l2, rng=rng.fork(200 + core)) for core in range(config.num_cores)
        ]
        self.l3 = SramCache("l3", config.l3, rng=rng.fork(300))

    def access(self, core_id: int, addr: int, is_write: bool) -> HierarchyAccess:
        """Walk the hierarchy for one demand access from ``core_id``."""
        if not 0 <= core_id < self.config.num_cores:
            raise ValueError(f"core_id {core_id} out of range")
        writebacks: List[Eviction] = []

        l1 = self.l1[core_id]
        l1_result = l1.access(addr, is_write)
        if l1_result.hit:
            return HierarchyAccess(level="l1", llc_miss=False)
        if l1_result.eviction is not None and l1_result.eviction.dirty:
            # Dirty L1 victim is absorbed by the L2 (write-back).
            l2_evict = self.l2[core_id].fill(l1_result.eviction.addr, dirty=True)
            if l2_evict is not None and l2_evict.dirty:
                writebacks.extend(self._fill_llc(l2_evict.addr, dirty=True))

        l2 = self.l2[core_id]
        l2_result = l2.access(addr, is_write)
        if l2_result.eviction is not None and l2_result.eviction.dirty:
            writebacks.extend(self._fill_llc(l2_result.eviction.addr, dirty=True))
        if l2_result.hit:
            return HierarchyAccess(level="l2", llc_miss=False, writebacks=writebacks)

        l3_result = self.l3.access(addr, is_write)
        if l3_result.eviction is not None and l3_result.eviction.dirty:
            writebacks.append(l3_result.eviction)
        if l3_result.hit:
            return HierarchyAccess(level="l3", llc_miss=False, writebacks=writebacks)
        return HierarchyAccess(level="memory", llc_miss=True, writebacks=writebacks)

    def _fill_llc(self, addr: int, dirty: bool) -> List[Eviction]:
        evicted = self.l3.fill(addr, dirty=dirty)
        if evicted is not None and evicted.dirty:
            return [evicted]
        return []

    def flush_page(self, page_addr: int, page_size: int) -> List[Eviction]:
        """Scrub one page from every cache level, returning dirty lines.

        This is the "address consistency" operation that PTE/TLB remapping
        schemes with separate address spaces must perform; in Banshee it is
        only needed for large-page reconfiguration.
        """
        dirty: List[Eviction] = []
        for cache in self.l1 + self.l2 + [self.l3]:
            dirty.extend(cache.flush_page(page_addr, page_size))
        return dirty

    def stats(self) -> dict:
        """Aggregate hit/miss counters for all levels."""
        return {
            "l1_hits": sum(c.hits for c in self.l1),
            "l1_misses": sum(c.misses for c in self.l1),
            "l2_hits": sum(c.hits for c in self.l2),
            "l2_misses": sum(c.misses for c in self.l2),
            "l3_hits": self.l3.hits,
            "l3_misses": self.l3.misses,
            "l3_dirty_evictions": self.l3.dirty_evictions,
        }
