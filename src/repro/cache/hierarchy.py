"""The on-chip cache hierarchy: per-core L1/L2 and a shared L3 (LLC).

The hierarchy is functional: it answers "which level served this access" and
produces the stream of dirty LLC writebacks that the memory controllers must
handle.  Latency numbers for each level come from the core configuration and
are applied by the core timing model.

Coherence between private caches is not modelled (see DESIGN.md §2): the
studied workloads are dominated by private data and the DRAM-cache schemes
under comparison are below the LLC, where coherence traffic is identical for
all of them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.sram_cache import Eviction, SramCache
from repro.sim.config import SystemConfig
from repro.util.rng import DeterministicRng


class HierarchyAccess:
    """Outcome of one access walking the hierarchy.

    A plain ``__slots__`` class (not a dataclass): one of these is produced
    for every trace record, and the fast path reuses preallocated instances.

    Attributes:
        level: "l1", "l2", "l3" or "memory" — the level that served the access.
        llc_miss: True when the access must go to a memory controller.
        writebacks: dirty lines evicted from the LLC by this access (these
            become writeback requests to the memory controllers).
    """

    __slots__ = ("level", "llc_miss", "writebacks")

    def __init__(self, level: str, llc_miss: bool, writebacks: Optional[List[Eviction]] = None) -> None:
        self.level = level
        self.llc_miss = llc_miss
        self.writebacks = writebacks if writebacks is not None else []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HierarchyAccess(level={self.level!r}, llc_miss={self.llc_miss!r}, "
            f"writebacks={self.writebacks!r})"
        )


class CacheHierarchy:
    """Private L1/L2 per core plus a shared L3."""

    def __init__(self, config: SystemConfig, rng: Optional[DeterministicRng] = None) -> None:
        self.config = config
        rng = rng if rng is not None else DeterministicRng(config.seed)
        self.l1: List[SramCache] = [
            SramCache(f"l1-{core}", config.l1, rng=rng.fork(100 + core)) for core in range(config.num_cores)
        ]
        self.l2: List[SramCache] = [
            SramCache(f"l2-{core}", config.l2, rng=rng.fork(200 + core)) for core in range(config.num_cores)
        ]
        self.l3 = SramCache("l3", config.l3, rng=rng.fork(300))

        # Reused outcome objects for the per-record fast path.  ``_l1_hit``
        # is returned for every L1 hit (by far the common case) without
        # touching its always-empty writeback list; ``_scratch`` is reused
        # for every deeper walk, its writeback list cleared in place.
        self._l1_hit = HierarchyAccess(level="l1", llc_miss=False, writebacks=[])
        self._scratch = HierarchyAccess(level="memory", llc_miss=True, writebacks=[])
        # Eviction pool for the scratch writeback list: one access produces at
        # most three LLC writebacks (L1-victim chain, L2 victim, L3 victim),
        # so three reused records cover every path without allocating.
        self._wb_pool = [Eviction(addr=0, dirty=True) for _ in range(3)]

    def access(self, core_id: int, addr: int, is_write: bool) -> HierarchyAccess:
        """Walk the hierarchy for one demand access from ``core_id``."""
        if not 0 <= core_id < self.config.num_cores:
            raise ValueError(f"core_id {core_id} out of range")
        outcome = self.access_reused(core_id, addr, is_write)
        # Copy the pooled Eviction records too: the pool is reused on the
        # next access, and this composed API promises caller-owned results.
        return HierarchyAccess(
            level=outcome.level,
            llc_miss=outcome.llc_miss,
            writebacks=[Eviction(addr=wb.addr, dirty=wb.dirty) for wb in outcome.writebacks],
        )

    def access_reused(self, core_id: int, addr: int, is_write: bool) -> HierarchyAccess:
        """Allocation-free :meth:`access` for the per-record hot path.

        The returned :class:`HierarchyAccess` (and its writeback list) is
        owned by the hierarchy and only valid until the next call; callers
        must consume it immediately and must not mutate or retain it.
        ``core_id`` is trusted to be in range.
        """
        l1 = self.l1[core_id]
        if l1.access_fast(addr, is_write):
            return self._l1_hit

        outcome = self._scratch
        writebacks = outcome.writebacks
        del writebacks[:]
        wb_pool = self._wb_pool
        l3 = self.l3
        if l1.victim_addr is not None and l1.victim_dirty:
            # Dirty L1 victim is absorbed by the L2 (write-back).
            l2 = self.l2[core_id]
            l2.fill_fast(l1.victim_addr, dirty=True)
            if l2.victim_addr is not None and l2.victim_dirty:
                l3.fill_fast(l2.victim_addr, dirty=True)
                if l3.victim_addr is not None and l3.victim_dirty:
                    eviction = wb_pool[len(writebacks)]
                    eviction.addr = l3.victim_addr
                    writebacks.append(eviction)

        l2 = self.l2[core_id]
        l2_hit = l2.access_fast(addr, is_write)
        if not l2_hit and l2.victim_addr is not None and l2.victim_dirty:
            l3.fill_fast(l2.victim_addr, dirty=True)
            if l3.victim_addr is not None and l3.victim_dirty:
                eviction = wb_pool[len(writebacks)]
                eviction.addr = l3.victim_addr
                writebacks.append(eviction)
        if l2_hit:
            outcome.level = "l2"
            outcome.llc_miss = False
            return outcome

        l3_hit = l3.access_fast(addr, is_write)
        if not l3_hit and l3.victim_addr is not None and l3.victim_dirty:
            eviction = wb_pool[len(writebacks)]
            eviction.addr = l3.victim_addr
            writebacks.append(eviction)
        if l3_hit:
            outcome.level = "l3"
            outcome.llc_miss = False
            return outcome
        outcome.level = "memory"
        outcome.llc_miss = True
        return outcome

    def flush_page(self, page_addr: int, page_size: int) -> List[Eviction]:
        """Scrub one page from every cache level, returning dirty lines.

        This is the "address consistency" operation that PTE/TLB remapping
        schemes with separate address spaces must perform; in Banshee it is
        only needed for large-page reconfiguration.
        """
        dirty: List[Eviction] = []
        for cache in self.l1 + self.l2 + [self.l3]:
            dirty.extend(cache.flush_page(page_addr, page_size))
        return dirty

    def stats(self) -> Dict[str, int]:
        """Aggregate hit/miss counters for all levels."""
        return {
            "l1_hits": sum(c.hits for c in self.l1),
            "l1_misses": sum(c.misses for c in self.l1),
            "l2_hits": sum(c.hits for c in self.l2),
            "l2_misses": sum(c.misses for c in self.l2),
            "l3_hits": self.l3.hits,
            "l3_misses": self.l3.misses,
            "l3_dirty_evictions": self.l3.dirty_evictions,
        }
