"""A set-associative SRAM cache model.

The model is purely functional (hit/miss + evictions); timing is handled by
the hierarchy and the core model.  Lines are identified by their line-aligned
address, and dirty state is tracked so that dirty LLC evictions can be routed
to the memory controllers (which matters a great deal for the DRAM-cache
schemes: Banshee's tag-probe path and Alloy's BEAR writeback probe both exist
to serve exactly these requests).

Each set is an :class:`collections.OrderedDict` mapping line tag -> dirty
bit.  For the LRU policy the dict order is recency order (MRU at the end);
for FIFO it is insertion order; for random the victim is drawn from the
keys.  This representation keeps the per-access cost low, which matters
because three caches are consulted for every trace record.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.sim.config import CacheLevelConfig
from repro.util.bits import log2_exact
from repro.util.rng import DeterministicRng


@dataclass
class Eviction:
    """A line evicted from a cache."""

    __slots__ = ("addr", "dirty")

    addr: int
    dirty: bool


@dataclass
class CacheAccessResult:
    """Outcome of one cache access."""

    __slots__ = ("hit", "eviction")

    hit: bool
    eviction: Optional[Eviction]


class SramCache:
    """Set-associative write-back, write-allocate SRAM cache."""

    def __init__(self, name: str, config: CacheLevelConfig, rng: Optional[DeterministicRng] = None) -> None:
        self.name = name
        self.config = config
        self.num_sets = config.num_sets
        self.num_ways = config.ways
        self.line_size = config.line_size
        self.policy = config.replacement
        self._line_bits = log2_exact(config.line_size)
        self._set_mask = self.num_sets - 1
        self._sets: List["OrderedDict[int, bool]"] = [OrderedDict() for _ in range(self.num_sets)]
        self._rng = rng if rng is not None else DeterministicRng(0)
        # Policy flags hoisted out of the per-access path (string comparisons
        # in ``access``/``_fill`` show up in profiles at trace scale).
        self._lru = self.policy == "lru"
        self._random = self.policy == "random"

        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

        # Victim of the most recent ``access_fast``/``fill_fast`` call.
        # ``victim_addr is None`` means nothing was evicted; ``victim_dirty``
        # is only meaningful when ``victim_addr`` is set.  Out-parameters
        # instead of :class:`Eviction` objects keep the fast path
        # allocation-free.
        self.victim_addr: Optional[int] = None
        self.victim_dirty: bool = False

        # Set indices whose membership changed, appended on fill/invalidate.
        # ``None`` (the default) disables logging entirely; the batch
        # engine's vectorized front end installs a list here so it can
        # refresh only the touched rows of its flat tag mirror.  Hits never
        # log — they cannot change membership.
        self._dirty_sets: Optional[List[int]] = None

    # ------------------------------------------------------------------ address math

    def line_addr(self, addr: int) -> int:
        """Line-aligned address containing ``addr``."""
        return addr >> self._line_bits << self._line_bits

    # ------------------------------------------------------------------ operations

    def lookup(self, addr: int) -> bool:
        """Check for presence without updating replacement state."""
        line = addr >> self._line_bits
        return line in self._sets[line & self._set_mask]

    def access(self, addr: int, is_write: bool) -> CacheAccessResult:
        """Access ``addr``; allocate on miss; return hit status and any eviction."""
        if self.access_fast(addr, is_write):
            return CacheAccessResult(hit=True, eviction=None)
        eviction = None
        if self.victim_addr is not None:
            eviction = Eviction(addr=self.victim_addr, dirty=self.victim_dirty)
        return CacheAccessResult(hit=False, eviction=eviction)

    def access_fast(self, addr: int, is_write: bool) -> bool:
        """Allocation-free :meth:`access`: returns the hit flag.

        On a miss the victim (if any) is exposed via ``victim_addr`` /
        ``victim_dirty`` instead of an :class:`Eviction`; on a hit the victim
        fields are left stale and must not be read.  This is what the
        per-record hot path uses — three of these run per trace record.
        """
        line = addr >> self._line_bits
        bucket = self._sets[line & self._set_mask]
        if line in bucket:
            self.hits += 1
            if is_write:
                bucket[line] = True
            if self._lru:
                bucket.move_to_end(line)
            return True
        self.misses += 1
        self._fill_fast(bucket, line, is_write)
        return False

    def fill(self, addr: int, dirty: bool = False) -> Optional[Eviction]:
        """Insert ``addr`` without counting a demand access (e.g. writeback fill)."""
        self.fill_fast(addr, dirty)
        if self.victim_addr is not None:
            return Eviction(addr=self.victim_addr, dirty=self.victim_dirty)
        return None

    def fill_fast(self, addr: int, dirty: bool = False) -> None:
        """Allocation-free :meth:`fill`; victim reported via ``victim_addr``."""
        line = addr >> self._line_bits
        bucket = self._sets[line & self._set_mask]
        if line in bucket:
            if dirty:
                bucket[line] = True
            if self._lru:
                bucket.move_to_end(line)
            self.victim_addr = None
            return
        self._fill_fast(bucket, line, dirty)

    def _fill_fast(self, bucket: "OrderedDict[int, bool]", line: int, dirty: bool) -> None:
        if len(bucket) >= self.num_ways:
            if self._random:
                # Advance an iterator instead of materialising the key list;
                # the draw and the chosen victim are identical (dict iteration
                # order is the order list(bucket.keys()) would have).
                index = self._rng.randint(0, len(bucket))
                iterator = iter(bucket)
                for _ in range(index):
                    next(iterator)
                victim = next(iterator)
                victim_dirty = bucket.pop(victim)
            else:
                # LRU keeps recency order, FIFO keeps insertion order; both
                # evict the oldest entry, i.e. the front of the dict.
                victim, victim_dirty = bucket.popitem(last=False)
            self.victim_addr = victim << self._line_bits
            self.victim_dirty = victim_dirty
            self.evictions += 1
            if victim_dirty:
                self.dirty_evictions += 1
        else:
            self.victim_addr = None
        bucket[line] = dirty
        if self._dirty_sets is not None:
            self._dirty_sets.append(line & self._set_mask)

    def invalidate(self, addr: int) -> Optional[Eviction]:
        """Remove ``addr`` if present, returning it as an eviction if dirty."""
        line = addr >> self._line_bits
        bucket = self._sets[line & self._set_mask]
        if line in bucket:
            dirty = bucket.pop(line)
            if self._dirty_sets is not None:
                self._dirty_sets.append(line & self._set_mask)
            if dirty:
                return Eviction(addr=line << self._line_bits, dirty=True)
        return None

    def flush_page(self, page_addr: int, page_size: int) -> List[Eviction]:
        """Invalidate all lines of a page, returning the dirty ones.

        Used when the OS reconfigures large pages (Section 4.3) and by the
        HMA baseline when it remaps pages (address-consistency scrubbing).
        """
        evictions: List[Eviction] = []
        for offset in range(0, page_size, self.line_size):
            evicted = self.invalidate(page_addr + offset)
            if evicted is not None:
                evictions.append(evicted)
        return evictions

    # ------------------------------------------------------------------ introspection

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(bucket) for bucket in self._sets)

    @property
    def capacity_lines(self) -> int:
        """Total number of line frames."""
        return self.num_sets * self.num_ways

    @property
    def miss_rate(self) -> float:
        """Demand miss rate since construction."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def resident_lines(self) -> List[int]:
        """Addresses of all currently valid lines (test helper)."""
        lines = []
        for bucket in self._sets:
            lines.extend(line << self._line_bits for line in bucket)
        return lines
