"""Hot-path throughput measurement.

One benchmark *cell* is a fresh :class:`~repro.sim.system.System` +
:class:`~repro.sim.engine.SimulationEngine` driven for a fixed record
budget; the metric is trace records simulated per wall-clock second.  Each
cell runs ``repeats`` times and reports the best (minimum-time) repeat —
the standard way to suppress scheduler noise in microbenchmarks.

The matrix deliberately mixes scheme cost profiles: ``nocache`` is the
pipeline floor (every LLC miss is a single off-package access), ``alloy``
and ``unison`` exercise the tag-probe paths, and ``banshee`` exercises the
tag buffer + frequency-counter machinery.  ``gcc`` is cache-friendly (L1
hits dominate, stressing the record pipeline itself), ``mcf`` is
miss-heavy (stressing the controller/scheme/DRAM path), and ``pagerank``
sits in between.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.dramcache.variants import available_scheme_names, is_known_scheme
from repro.sim.config import SystemConfig
from repro.sim.engine import SimulationEngine
from repro.sim.results import geometric_mean
from repro.sim.system import System
from repro.workloads.registry import available_workloads, get_workload

#: Default benchmark matrix (see module docstring for the rationale).
DEFAULT_SCHEMES: List[str] = ["nocache", "alloy", "unison", "banshee"]
DEFAULT_WORKLOADS: List[str] = ["gcc", "mcf", "pagerank"]


def validate_matrix(schemes: List[str], workloads: List[str]) -> None:
    """Reject unknown scheme/variant or workload names before any cell runs.

    Raises ``ValueError`` listing the available names, so the CLI fails in
    milliseconds with an actionable message instead of deep inside a
    simulation cell.
    """
    unknown = [name for name in schemes if not is_known_scheme(name)]
    if unknown:
        raise ValueError(
            f"unknown scheme(s)/variant(s) {', '.join(unknown)}; "
            f"available: {', '.join(available_scheme_names())}"
        )
    known_workloads = available_workloads()
    unknown = [name for name in workloads if name not in known_workloads]
    if unknown:
        raise ValueError(
            f"unknown workload(s) {', '.join(unknown)}; "
            f"available: {', '.join(known_workloads)}"
        )


@dataclass
class BenchCell:
    """Throughput measurement for one scheme × workload cell."""

    scheme: str
    workload: str
    records: int
    repeats: int
    best_seconds: float
    records_per_sec: float
    instructions: int
    cycles: float

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def _build_config(preset: str, scheme: str, num_cores: int, seed: int) -> SystemConfig:
    if preset == "scaled":
        return SystemConfig.scaled_default(scheme=scheme, num_cores=num_cores, seed=seed)
    if preset == "tiny":
        return SystemConfig.tiny(scheme=scheme, num_cores=num_cores, seed=seed)
    if preset == "paper":
        return SystemConfig.paper_default(scheme=scheme)
    raise ValueError(f"unknown preset {preset!r}; expected scaled, tiny or paper")


def run_cell(
    scheme: str,
    workload_name: str,
    records_per_core: int,
    num_cores: int = 2,
    scale: float = 0.1,
    seed: int = 1,
    repeats: int = 3,
    preset: str = "scaled",
) -> BenchCell:
    """Benchmark one cell; returns the best of ``repeats`` fresh runs.

    Every repeat builds a fresh system so repeats are identical simulations
    (identical record counts and results) that differ only in wall time.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    best_seconds = float("inf")
    records = 0
    instructions = 0
    cycles = 0.0
    for _ in range(repeats):
        config = _build_config(preset, scheme, num_cores, seed)
        # Build the workload at the scheme's page size so page-size variants
        # simulate a consistent system (page table, TLBs and cache agree).
        workload = get_workload(
            workload_name, num_cores, scale=scale, seed=seed,
            page_size=config.dram_cache.page_size,
        )
        engine = SimulationEngine(System(config, workload))
        start = time.perf_counter()
        result = engine.run(records_per_core)
        elapsed = time.perf_counter() - start
        if elapsed < best_seconds:
            best_seconds = elapsed
        records = engine.records_processed
        instructions = result.instructions
        cycles = result.cycles
    return BenchCell(
        scheme=scheme,
        workload=workload_name,
        records=records,
        repeats=repeats,
        best_seconds=best_seconds,
        records_per_sec=records / best_seconds if best_seconds > 0 else 0.0,
        instructions=instructions,
        cycles=cycles,
    )


def run_benchmark(
    schemes: Optional[List[str]] = None,
    workloads: Optional[List[str]] = None,
    records_per_core: int = 10000,
    num_cores: int = 2,
    scale: float = 0.1,
    seed: int = 1,
    repeats: int = 3,
    preset: str = "scaled",
    progress=None,
) -> Dict[str, object]:
    """Run the full matrix and return the JSON-ready payload.

    Args:
        progress: optional callback invoked with each finished
            :class:`BenchCell` (the CLI uses it to print a live table).
    """
    schemes = schemes if schemes else list(DEFAULT_SCHEMES)
    workloads = workloads if workloads else list(DEFAULT_WORKLOADS)
    validate_matrix(schemes, workloads)
    cells: List[BenchCell] = []
    started = time.perf_counter()
    for scheme in schemes:
        for workload_name in workloads:
            cell = run_cell(
                scheme,
                workload_name,
                records_per_core,
                num_cores=num_cores,
                scale=scale,
                seed=seed,
                repeats=repeats,
                preset=preset,
            )
            cells.append(cell)
            if progress is not None:
                progress(cell)
    total_seconds = time.perf_counter() - started
    return {
        "name": "hotpath",
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "params": {
            "preset": preset,
            "records_per_core": records_per_core,
            "num_cores": num_cores,
            "scale": scale,
            "seed": seed,
            "repeats": repeats,
            "schemes": schemes,
            "workloads": workloads,
        },
        "cells": [cell.to_dict() for cell in cells],
        "aggregate": {
            "geomean_records_per_sec": geometric_mean([cell.records_per_sec for cell in cells]),
            "min_records_per_sec": min((cell.records_per_sec for cell in cells), default=0.0),
            "total_records": sum(cell.records for cell in cells),
            "total_wall_seconds": total_seconds,
        },
    }


def write_report(payload: Dict[str, object], path: str) -> None:
    """Write the benchmark payload as indented, key-sorted JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
