"""Hot-path throughput measurement.

One benchmark *cell* is a fresh :class:`~repro.sim.system.System` +
:class:`~repro.sim.engine.SimulationEngine` driven for a fixed record
budget; the metric is trace records simulated per wall-clock second.  Each
cell runs ``repeats`` times and reports the best (minimum-time) repeat —
the standard way to suppress scheduler noise in microbenchmarks.

The default matrix targets the *record-pipeline-bound* regime, which is
what the engine itself controls: single core, small footprint (high
TLB/L1 hit rates), and the sequential-sweep graph workloads of the
paper's throughput-computing suite (``pagerank``, ``tri_count``,
``lsh``).  In miss-bound cells (``mcf``, large scales, random-order
graph workloads) wall time is dominated by the shared miss machinery —
page walks, hierarchy fills, DRAM-cache scheme bookkeeping, channel
timing — which every engine mode pays identically, so engine-level
optimisations are structurally invisible there no matter how fast the
record loop gets.  Both regimes are one ``--workloads``/``--scale`` flag
away; ``python -m repro.perf --compare`` reports per-cell ratios so a
mixed matrix never hides behind a single geomean.

The scheme axis still mixes cost profiles: ``nocache`` is the pipeline
floor (every LLC miss is a single off-package access), ``alloy`` and
``unison`` exercise the tag-probe paths, and ``banshee`` exercises the
tag buffer + frequency-counter machinery.
"""

from __future__ import annotations

import cProfile
import itertools
import json
import platform
import pstats
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.dramcache.variants import available_scheme_names, is_known_scheme
from repro.sim.config import SystemConfig
from repro.sim.engine import DEFAULT_ENGINE_MODE, ENGINE_MODES, SimulationEngine
from repro.sim.results import geometric_mean
from repro.sim.system import System
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload, trace_path, validate_workload_name

#: Default benchmark matrix (see module docstring for the rationale).
DEFAULT_SCHEMES: List[str] = ["nocache", "alloy", "unison", "banshee"]
DEFAULT_WORKLOADS: List[str] = ["pagerank", "tri_count", "lsh"]

#: Default cell parameters (single pipeline-bound core, see module docstring).
DEFAULT_RECORDS_PER_CORE = 20000
DEFAULT_NUM_CORES = 1
DEFAULT_SCALE = 0.01


def validate_matrix(
    schemes: List[str], workloads: List[str], records_per_core: Optional[int] = None
) -> None:
    """Reject unknown scheme/variant or workload names before any cell runs.

    Raises ``ValueError`` listing the available names, so the CLI fails in
    milliseconds with an actionable message instead of deep inside a
    simulation cell.  Workloads may be registry names or ``trace:<path>``
    replays (the file is opened and its header checked here; with
    ``records_per_core`` given, a trace too short for the budget is also
    rejected up front rather than mid-matrix).
    """
    unknown = [name for name in schemes if not is_known_scheme(name)]
    if unknown:
        raise ValueError(
            f"unknown scheme(s)/variant(s) {', '.join(unknown)}; "
            f"available: {', '.join(available_scheme_names())}"
        )
    for name in workloads:
        validate_workload_name(name)
        path = trace_path(name)
        if path is not None and records_per_core is not None:
            from repro.trace.format import read_meta

            available = min(read_meta(path).records_per_core)
            if records_per_core > available:
                raise ValueError(
                    f"trace workload {name!r} holds only {available} records per "
                    f"core, --records {records_per_core} requested"
                )


@dataclass
class BenchCell:
    """Throughput measurement for one scheme × workload cell.

    ``best_seconds`` times the whole engine loop, which pulls records from
    the workload generator inline — so it includes record generation.
    ``generation_seconds`` times a standalone pass over the same record
    budget (fresh workload, no simulation), giving the generation vs.
    simulation split; for ``trace:`` workloads it measures file decode
    instead of generator cost, which is the saving trace capture buys.
    """

    scheme: str
    workload: str
    records: int
    repeats: int
    best_seconds: float
    records_per_sec: float
    instructions: int
    cycles: float
    generation_seconds: float = 0.0
    #: Engine mode the cell was timed with (``scalar``/``batch``/``numpy``);
    #: all modes are bit-identical, so cells differ only in wall time.
    engine_mode: str = DEFAULT_ENGINE_MODE
    #: Top cumulative-time functions from an extra profiled (non-timed) run;
    #: ``None`` unless the cell ran with ``profile_top`` set.
    profile: Optional[List[Dict]] = None

    @property
    def simulation_seconds(self) -> float:
        """Best wall time minus the measured record-generation share."""
        return max(self.best_seconds - self.generation_seconds, 0.0)

    @property
    def generation_fraction(self) -> float:
        """Share of the best repeat spent generating (or decoding) records.

        Clamped to [0, 1]: at smoke-sized budgets the standalone generation
        pass can measure marginally slower than the whole best repeat.
        """
        if self.best_seconds <= 0:
            return 0.0
        return min(self.generation_seconds / self.best_seconds, 1.0)

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["simulation_seconds"] = self.simulation_seconds
        payload["generation_fraction"] = self.generation_fraction
        if self.profile is None:
            # Keep the committed BENCH_hotpath.json schema unchanged when
            # profiling is off.
            payload.pop("profile")
        return payload


def _build_config(preset: str, scheme: str, num_cores: int, seed: int) -> SystemConfig:
    if preset == "scaled":
        return SystemConfig.scaled_default(scheme=scheme, num_cores=num_cores, seed=seed)
    if preset == "tiny":
        return SystemConfig.tiny(scheme=scheme, num_cores=num_cores, seed=seed)
    if preset == "paper":
        return SystemConfig.paper_default(scheme=scheme)
    raise ValueError(f"unknown preset {preset!r}; expected scaled, tiny or paper")


def measure_generation(
    workload: Workload, records_per_core: int, engine_mode: str = DEFAULT_ENGINE_MODE
) -> float:
    """Time a pure record-generation pass (no simulation) over the budget.

    Drains each core's stream for ``records_per_core`` records exactly the
    way the engine would — per-record objects for the scalar engine, column
    batches for the batch engines — so the measurement covers generator
    arithmetic (or trace-file decode) plus iteration overhead, and nothing
    else.
    """
    start = time.perf_counter()
    if engine_mode == "scalar":
        for core_id in range(workload.num_cores):
            for _record in itertools.islice(workload.trace(core_id), records_per_core):
                pass
    else:
        for core_id in range(workload.num_cores):
            drained = 0
            for _gaps, addrs, _writes in workload.trace_batches(core_id):
                drained += len(addrs)
                if drained >= records_per_core:
                    break
    return time.perf_counter() - start


def _profile_rows(profiler: cProfile.Profile, top: int) -> List[Dict]:
    """The ``top`` cumulative-time functions of a finished profiler run."""
    stats = pstats.Stats(profiler)
    entries = sorted(stats.stats.items(), key=lambda item: item[1][3], reverse=True)
    rows: List[Dict] = []
    for (filename, line, name), (_cc, ncalls, tottime, cumtime, _callers) in entries[:top]:
        where = name if line == 0 else f"{Path(filename).name}:{line}:{name}"
        rows.append({
            "function": where,
            "ncalls": ncalls,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        })
    return rows


def run_cell(
    scheme: str,
    workload_name: str,
    records_per_core: int,
    num_cores: int = DEFAULT_NUM_CORES,
    scale: float = DEFAULT_SCALE,
    seed: int = 1,
    repeats: int = 3,
    preset: str = "scaled",
    profile_top: Optional[int] = None,
    engine_mode: str = DEFAULT_ENGINE_MODE,
) -> BenchCell:
    """Benchmark one cell; returns the best of ``repeats`` fresh runs.

    Every repeat builds a fresh system so repeats are identical simulations
    (identical record counts and results) that differ only in wall time.
    One extra fresh workload is drained without simulating to measure the
    record-generation share of the cell (see :class:`BenchCell`).

    ``profile_top`` adds one *extra* run wrapped in :mod:`cProfile` after
    the timed repeats (profiling overhead must never touch the reported
    times) and attaches its ``profile_top`` hottest functions by cumulative
    time to the cell.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if engine_mode not in ENGINE_MODES:
        raise ValueError(f"unknown engine mode {engine_mode!r}; choose one of {ENGINE_MODES}")
    best_seconds = float("inf")
    records = 0
    instructions = 0
    cycles = 0.0
    generation_seconds = 0.0
    for repeat in range(repeats):
        config = _build_config(preset, scheme, num_cores, seed)
        # Build the workload at the scheme's page size so page-size variants
        # simulate a consistent system (page table, TLBs and cache agree).
        workload = get_workload(
            workload_name, num_cores, scale=scale, seed=seed,
            page_size=config.dram_cache.page_size,
        )
        if repeat == 0:
            generation_seconds = measure_generation(
                get_workload(
                    workload_name, num_cores, scale=scale, seed=seed,
                    page_size=config.dram_cache.page_size,
                ),
                records_per_core,
                engine_mode=engine_mode,
            )
        engine = SimulationEngine(System(config, workload), mode=engine_mode)
        start = time.perf_counter()
        result = engine.run(records_per_core)
        elapsed = time.perf_counter() - start
        if elapsed < best_seconds:
            best_seconds = elapsed
        records = engine.records_processed
        instructions = result.instructions
        cycles = result.cycles
    profile = None
    if profile_top:
        config = _build_config(preset, scheme, num_cores, seed)
        workload = get_workload(
            workload_name, num_cores, scale=scale, seed=seed,
            page_size=config.dram_cache.page_size,
        )
        engine = SimulationEngine(System(config, workload), mode=engine_mode)
        profiler = cProfile.Profile()
        profiler.enable()
        engine.run(records_per_core)
        profiler.disable()
        profile = _profile_rows(profiler, profile_top)
    return BenchCell(
        scheme=scheme,
        workload=workload_name,
        records=records,
        repeats=repeats,
        best_seconds=best_seconds,
        records_per_sec=records / best_seconds if best_seconds > 0 else 0.0,
        instructions=instructions,
        cycles=cycles,
        generation_seconds=generation_seconds,
        engine_mode=engine_mode,
        profile=profile,
    )


def aggregate_profile(cells: List[BenchCell], top: int) -> List[Dict]:
    """Merge per-cell profiles into one top-``top`` cumulative-time table.

    Summing cumtime across cells weights each function by how much of the
    whole matrix it cost — the number to look at before optimising.
    """
    merged: Dict[str, Dict] = {}
    for cell in cells:
        for row in cell.profile or []:
            entry = merged.setdefault(
                row["function"],
                {"function": row["function"], "ncalls": 0, "tottime": 0.0, "cumtime": 0.0},
            )
            entry["ncalls"] += row["ncalls"]
            entry["tottime"] = round(entry["tottime"] + row["tottime"], 6)
            entry["cumtime"] = round(entry["cumtime"] + row["cumtime"], 6)
    return sorted(merged.values(), key=lambda row: row["cumtime"], reverse=True)[:top]


def run_benchmark(
    schemes: Optional[List[str]] = None,
    workloads: Optional[List[str]] = None,
    records_per_core: int = DEFAULT_RECORDS_PER_CORE,
    num_cores: int = DEFAULT_NUM_CORES,
    scale: float = DEFAULT_SCALE,
    seed: int = 1,
    repeats: int = 3,
    preset: str = "scaled",
    progress=None,
    profile_top: Optional[int] = None,
    engine_mode: str = DEFAULT_ENGINE_MODE,
) -> Dict[str, object]:
    """Run the full matrix and return the JSON-ready payload.

    Args:
        progress: optional callback invoked with each finished
            :class:`BenchCell` (the CLI uses it to print a live table).
        profile_top: profile each cell (one extra untimed run under
            cProfile) and add the matrix-wide top-N cumulative-time
            functions to the payload under ``"profile"``.
    """
    schemes = schemes if schemes else list(DEFAULT_SCHEMES)
    workloads = workloads if workloads else list(DEFAULT_WORKLOADS)
    validate_matrix(schemes, workloads, records_per_core=records_per_core)
    cells: List[BenchCell] = []
    started = time.perf_counter()
    for scheme in schemes:
        for workload_name in workloads:
            cell = run_cell(
                scheme,
                workload_name,
                records_per_core,
                num_cores=num_cores,
                scale=scale,
                seed=seed,
                repeats=repeats,
                preset=preset,
                profile_top=profile_top,
                engine_mode=engine_mode,
            )
            cells.append(cell)
            if progress is not None:
                progress(cell)
    total_seconds = time.perf_counter() - started
    # Per-workload generation vs. simulation split, averaged over schemes
    # (generation cost is a property of the workload, not the scheme; the
    # small per-scheme spread is measurement noise).
    workload_split: Dict[str, Dict[str, float]] = {}
    for workload_name in workloads:
        group = [cell for cell in cells if cell.workload == workload_name]
        gen = sum(cell.generation_seconds for cell in group) / len(group)
        best = sum(cell.best_seconds for cell in group) / len(group)
        workload_split[workload_name] = {
            "generation_seconds": gen,
            "simulation_seconds": max(best - gen, 0.0),
            "generation_fraction": min(gen / best, 1.0) if best > 0 else 0.0,
        }
    payload_profile = (
        {"top": profile_top, "functions": aggregate_profile(cells, profile_top)}
        if profile_top else None
    )
    payload = {
        "name": "hotpath",
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "params": {
            "preset": preset,
            "records_per_core": records_per_core,
            "num_cores": num_cores,
            "scale": scale,
            "seed": seed,
            "repeats": repeats,
            "schemes": schemes,
            "workloads": workloads,
            "engine_mode": engine_mode,
        },
        "cells": [cell.to_dict() for cell in cells],
        "workload_time_split": workload_split,
        "aggregate": {
            "geomean_records_per_sec": geometric_mean([cell.records_per_sec for cell in cells]),
            "min_records_per_sec": min((cell.records_per_sec for cell in cells), default=0.0),
            "total_records": sum(cell.records for cell in cells),
            "total_wall_seconds": total_seconds,
        },
    }
    if payload_profile is not None:
        payload["profile"] = payload_profile
    return payload


def write_report(payload: Dict[str, object], path: str) -> None:
    """Write the benchmark payload as indented, key-sorted JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
