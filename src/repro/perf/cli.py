"""``python -m repro.perf`` — hot-path throughput benchmark.

Times records/second for a scheme × workload matrix and writes
``BENCH_hotpath.json`` (JSON, see :func:`repro.perf.harness.run_benchmark`
for the schema) so the throughput trajectory is tracked across PRs.
``--engine`` selects the engine mode being timed (all modes produce
bit-identical simulation results; only wall time differs).

``--compare OLD.json NEW.json`` switches to A/B mode: no benchmark runs,
the two payloads are diffed cell by cell with a noise band (``--noise``)
so only real regressions/improvements are flagged.

``--smoke`` runs a tiny record budget — it exists for CI, where the point
is catching hot-path regressions loudly and cheaply, not producing stable
absolute numbers.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.dramcache.variants import available_scheme_names
from repro.perf.compare import (
    DEFAULT_NOISE,
    compare_payloads,
    format_comparison,
    load_payload,
)
from repro.perf.harness import (
    DEFAULT_NUM_CORES,
    DEFAULT_RECORDS_PER_CORE,
    DEFAULT_SCALE,
    DEFAULT_SCHEMES,
    DEFAULT_WORKLOADS,
    BenchCell,
    run_benchmark,
    validate_matrix,
    write_report,
)
from repro.sim.engine import DEFAULT_ENGINE_MODE, ENGINE_MODES
from repro.workloads.registry import available_workloads

SMOKE_RECORDS_PER_CORE = 500
DEFAULT_OUTPUT = "BENCH_hotpath.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Benchmark per-record simulation throughput (records/sec).",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "available schemes and variants:\n  "
            + "\n  ".join(available_scheme_names())
            + "\n\navailable workloads:\n  "
            + "\n  ".join(available_workloads())
            + "\n  trace:<path>.rtrace (replay a captured trace, "
            "see python -m repro.trace)"
        ),
    )
    parser.add_argument("--schemes", nargs="+", default=None,
                        help=f"schemes or variants to time (default: {' '.join(DEFAULT_SCHEMES)}; "
                             "see the list below, validated before any cell runs)")
    parser.add_argument("--workloads", nargs="+", default=None,
                        help=f"workloads to time (default: {' '.join(DEFAULT_WORKLOADS)}; "
                             "registry names or trace:<path> replays)")
    parser.add_argument("--records", type=int, default=DEFAULT_RECORDS_PER_CORE,
                        help=f"trace records per core per cell (default {DEFAULT_RECORDS_PER_CORE})")
    parser.add_argument("--cores", type=int, default=DEFAULT_NUM_CORES,
                        help=f"simulated cores (default {DEFAULT_NUM_CORES})")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help=f"workload footprint scale (default {DEFAULT_SCALE})")
    parser.add_argument("--engine", choices=list(ENGINE_MODES), default=DEFAULT_ENGINE_MODE,
                        help=f"engine mode to time (default {DEFAULT_ENGINE_MODE}; all modes "
                             "are bit-identical, only wall time differs)")
    parser.add_argument("--seed", type=int, default=1, help="RNG seed (default 1)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats per cell; best time is reported (default 3)")
    parser.add_argument("--preset", choices=["scaled", "tiny", "paper"], default="scaled",
                        help="system configuration preset (default scaled)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--smoke", action="store_true",
                        help=f"CI smoke mode: {SMOKE_RECORDS_PER_CORE} records/core, 1 repeat")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile each cell (one extra untimed run) and report the "
                             "hottest functions by cumulative time")
    parser.add_argument("--profile-top", type=int, default=15, metavar="N",
                        help="functions to keep per profile (default 15)")
    parser.add_argument("--quiet", action="store_true", help="suppress the per-cell table")
    parser.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
                        help="compare two benchmark payloads cell by cell instead of "
                             "running a benchmark; ratios outside the noise band are flagged")
    parser.add_argument("--noise", type=float, default=DEFAULT_NOISE, metavar="FRAC",
                        help=f"half-width of the --compare noise band (default {DEFAULT_NOISE})")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.compare is not None:
        old_path, new_path = args.compare
        try:
            report = compare_payloads(
                load_payload(old_path), load_payload(new_path), noise=args.noise
            )
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_comparison(report, old_path, new_path))
        return 0
    records = args.records
    repeats = args.repeats
    if args.smoke:
        records = min(records, SMOKE_RECORDS_PER_CORE)
        repeats = 1

    def progress(cell: BenchCell) -> None:
        if not args.quiet:
            print(
                f"{cell.scheme:10s} {cell.workload:10s} "
                f"{cell.records:>8d} rec  {cell.best_seconds:8.3f} s  "
                f"{cell.records_per_sec:>12,.0f} rec/s  "
                f"gen {cell.generation_fraction:5.1%}"
            )

    schemes = args.schemes if args.schemes else list(DEFAULT_SCHEMES)
    workloads = args.workloads if args.workloads else list(DEFAULT_WORKLOADS)
    try:
        # Only name validation is caught here: a failure mid-benchmark is a
        # bug and should surface with its traceback, not a two-line error.
        validate_matrix(schemes, workloads, records_per_core=records)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if not args.quiet:
        print(f"# hot-path benchmark: {records} records/core, "
              f"{args.cores} cores, {repeats} repeat(s), preset={args.preset}, "
              f"engine={args.engine}")
    payload = run_benchmark(
        schemes=schemes,
        workloads=workloads,
        records_per_core=records,
        num_cores=args.cores,
        scale=args.scale,
        seed=args.seed,
        repeats=repeats,
        preset=args.preset,
        progress=progress,
        profile_top=args.profile_top if args.profile else None,
        engine_mode=args.engine,
    )
    write_report(payload, args.output)
    aggregate = payload["aggregate"]
    print(
        f"geomean {aggregate['geomean_records_per_sec']:,.0f} rec/s over "
        f"{len(payload['cells'])} cells "
        f"({aggregate['total_records']} records in {aggregate['total_wall_seconds']:.1f} s)"
    )
    for name, split in payload["workload_time_split"].items():
        print(
            f"  {name}: generation {split['generation_seconds']:.3f} s, "
            f"simulation {split['simulation_seconds']:.3f} s "
            f"({split['generation_fraction']:.1%} generating records)"
        )
    if "profile" in payload:
        print(f"\n# top {payload['profile']['top']} functions by cumulative time "
              "(summed over all cells)")
        print(f"{'cumtime':>9s} {'tottime':>9s} {'ncalls':>10s}  function")
        for row in payload["profile"]["functions"]:
            print(f"{row['cumtime']:9.3f} {row['tottime']:9.3f} "
                  f"{row['ncalls']:>10d}  {row['function']}")
    print(f"wrote {args.output}")
    return 0
