"""Microbenchmark harness for the per-record hot path.

``python -m repro.perf`` times records/second for a scheme × workload
matrix and writes the numbers to ``BENCH_hotpath.json`` at the repo root,
so the simulator's raw-run throughput is tracked as a first-class
trajectory across PRs (the same way the campaign store tracks result
trajectories).
"""

from repro.perf.compare import compare_payloads, format_comparison
from repro.perf.harness import (
    DEFAULT_SCHEMES,
    DEFAULT_WORKLOADS,
    BenchCell,
    run_benchmark,
)

__all__ = [
    "BenchCell",
    "DEFAULT_SCHEMES",
    "DEFAULT_WORKLOADS",
    "compare_payloads",
    "format_comparison",
    "run_benchmark",
]
