"""Noise-aware A/B comparison of two hot-path benchmark payloads.

``python -m repro.perf --compare OLD.json NEW.json`` matches cells by
(scheme, workload), reports the per-cell throughput ratio and the geomean
delta, and flags only the cells whose ratio falls outside the noise band
``[1/(1+noise), 1+noise]`` — so a 2 % wobble on a noisy host doesn't read
as a regression, and a real one can't hide inside a matrix-wide average.

The comparison is deliberately dumb about *why* two payloads differ: it
prints each side's engine mode and cell parameters and leaves the judgement
to the reader.  Comparing payloads with different record budgets or scales
is allowed (the ratio is records/second, already normalised), but the
parameter block makes such apples-to-oranges runs visible.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple

#: Default half-width of the noise band (5 %): per-cell ratios within
#: [1/1.05, 1.05] are considered measurement noise.
DEFAULT_NOISE = 0.05


def _cell_key(cell: Dict[str, object]) -> Tuple[str, str]:
    return str(cell["scheme"]), str(cell["workload"])


def _params_summary(payload: Dict[str, object]) -> Dict[str, object]:
    params = payload.get("params", {})
    if not isinstance(params, dict):
        return {}
    keep = ("engine_mode", "records_per_core", "num_cores", "scale", "repeats", "preset")
    return {key: params[key] for key in keep if key in params}


def compare_payloads(
    old: Dict[str, object], new: Dict[str, object], noise: float = DEFAULT_NOISE
) -> Dict[str, object]:
    """Build the comparison report for two benchmark payloads.

    Returns a dict with per-cell ``rows`` (ratio = new/old records/sec,
    ``flag`` one of ``"faster"``/``"slower"``/``""``), the geomean ratio
    over matched cells, each side's parameter summary, and the cells
    present on only one side.  Raises ``ValueError`` when no cells match
    (nothing to compare) or ``noise`` is negative.
    """
    if noise < 0:
        raise ValueError("noise must be non-negative")
    old_cells = {_cell_key(cell): cell for cell in old.get("cells", [])}  # type: ignore[union-attr]
    new_cells = {_cell_key(cell): cell for cell in new.get("cells", [])}  # type: ignore[union-attr]
    matched = [key for key in old_cells if key in new_cells]
    if not matched:
        raise ValueError("no (scheme, workload) cells in common; nothing to compare")
    upper = 1.0 + noise
    lower = 1.0 / upper
    rows: List[Dict[str, object]] = []
    log_sum = 0.0
    for key in matched:
        old_rps = float(old_cells[key]["records_per_sec"])  # type: ignore[arg-type]
        new_rps = float(new_cells[key]["records_per_sec"])  # type: ignore[arg-type]
        ratio = new_rps / old_rps if old_rps > 0 else float("inf")
        if ratio > upper:
            flag = "faster"
        elif ratio < lower:
            flag = "slower"
        else:
            flag = ""
        rows.append({
            "scheme": key[0],
            "workload": key[1],
            "old_records_per_sec": old_rps,
            "new_records_per_sec": new_rps,
            "ratio": ratio,
            "flag": flag,
            "old_engine_mode": old_cells[key].get("engine_mode", "scalar"),
            "new_engine_mode": new_cells[key].get("engine_mode", "scalar"),
        })
        log_sum += math.log(ratio) if 0 < ratio < float("inf") else 0.0
    rows.sort(key=lambda row: (row["scheme"], row["workload"]))
    geomean_ratio = math.exp(log_sum / len(matched))
    return {
        "noise": noise,
        "geomean_ratio": geomean_ratio,
        "geomean_delta_percent": (geomean_ratio - 1.0) * 100.0,
        "rows": rows,
        "old_params": _params_summary(old),
        "new_params": _params_summary(new),
        "only_in_old": sorted(key for key in old_cells if key not in new_cells),
        "only_in_new": sorted(key for key in new_cells if key not in old_cells),
        "flagged": sum(1 for row in rows if row["flag"]),
    }


def format_comparison(report: Dict[str, object], old_name: str, new_name: str) -> str:
    """Render the comparison report as the CLI's text table."""
    lines: List[str] = []
    lines.append(f"# hot-path comparison: {old_name} -> {new_name}")
    lines.append(f"  old params: {report['old_params']}")
    lines.append(f"  new params: {report['new_params']}")
    noise = report["noise"]
    lines.append(
        f"{'scheme':10s} {'workload':10s} {'old rec/s':>12s} {'new rec/s':>12s} "
        f"{'ratio':>7s}  flag (noise band ±{noise:.0%})"
    )
    for row in report["rows"]:  # type: ignore[union-attr]
        modes = ""
        if row["old_engine_mode"] != row["new_engine_mode"]:
            modes = f" [{row['old_engine_mode']} -> {row['new_engine_mode']}]"
        lines.append(
            f"{row['scheme']:10s} {row['workload']:10s} "
            f"{row['old_records_per_sec']:>12,.0f} {row['new_records_per_sec']:>12,.0f} "
            f"{row['ratio']:>6.2f}x  {row['flag']}{modes}"
        )
    for key in report["only_in_old"]:  # type: ignore[union-attr]
        lines.append(f"{key[0]:10s} {key[1]:10s} {'(only in old payload)':>33s}")
    for key in report["only_in_new"]:  # type: ignore[union-attr]
        lines.append(f"{key[0]:10s} {key[1]:10s} {'(only in new payload)':>33s}")
    lines.append(
        f"geomean ratio {report['geomean_ratio']:.2f}x "
        f"({report['geomean_delta_percent']:+.1f}%) over "
        f"{len(report['rows'])} matched cells, "  # type: ignore[arg-type]
        f"{report['flagged']} outside the noise band"
    )
    return "\n".join(lines)


def load_payload(path: str) -> Dict[str, object]:
    """Read one benchmark payload (as written by :func:`write_report`)."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "cells" not in payload:
        raise ValueError(f"{path} is not a hot-path benchmark payload (no 'cells')")
    return payload
