"""Deterministic fault injection: seeded chaos for campaign robustness.

A :class:`FaultPlan` describes exactly where a run should break — "SIGKILL
the worker at cell 3", "hang after 10k records", "truncate the store line
mid-append" — so that the supervisor's recovery machinery (lease
revocation, retry with backoff, quarantine, mid-cell snapshot resume) is
testable in CI instead of only observable in overnight runs.

Plans are compact strings, e.g.::

    kill@cell=3
    hang@records=10k
    kill@cell=0:records=600:times=2
    error@cell=1
    truncate-store@put=2
    drop-heartbeat@cell=0

``<kind>@<field>=<value>[:<field>=<value>...]`` entries separated by
``;``.  ``times`` bounds how often a fault fires (default 1); counts with
``k``/``m`` suffixes are accepted.  Injection rides two environment
variables — :data:`PLAN_ENV` carries the plan string and
:data:`STATE_ENV` a directory of fired-claim marker files — so worker
processes (fork or spawn) inherit the plan, and "fire once" is once
*globally across all processes*: the first process to reach the trigger
claims the firing by atomically creating the marker file (``O_EXCL``).

Fire sites (each checked by the code that owns the failure point):

``cell``
    a worker is about to simulate campaign cell ``cell`` (pending order).
``records``
    a running cell crossed ``records`` processed records (fired from a
    run-controller edge, so kills land *between* two records —
    deterministic, and exactly where snapshots cut).
``store``
    the result store is about to append its ``put``-th record.

Fault kinds: ``kill`` (SIGKILL this process), ``hang`` (stop making
progress — and stop heartbeating — until killed), ``error`` (raise
:class:`FaultInjected`, exercising the per-cell error path),
``truncate-store`` (write half the pending store line, then die — a crash
mid-append), ``drop-heartbeat`` (silence this worker's heartbeat file from
here on, exercising stale-lease revocation).

Everything here is stdlib-only and deliberately free of any simulator
dependency, so the store, the heartbeat writer and the runner can call
:func:`fire` unconditionally — with no plan loaded it is one ``None``
check.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Dict, List, Optional, Sequence, Union

#: Environment variable carrying the serialized plan into worker processes.
PLAN_ENV = "REPRO_FAULTS"
#: Environment variable naming the shared fired-claim state directory.
STATE_ENV = "REPRO_FAULTS_STATE"

#: Recognised fault kinds.
FAULT_KINDS = ("kill", "hang", "error", "truncate-store", "drop-heartbeat")

#: Recognised trigger fields (``times`` bounds firings, the rest match sites).
_FIELDS = ("cell", "records", "put", "times")

#: How long one ``hang`` sleep slice lasts; the hang loops until killed.
_HANG_SLICE_SECONDS = 0.25


class FaultInjected(RuntimeError):
    """Raised by the ``error`` fault kind (caught by per-cell isolation)."""


def _parse_count(text: str) -> int:
    """Parse ``600`` / ``10k`` / ``2m`` into an integer."""
    text = text.strip().lower()
    factor = 1
    if text.endswith("k"):
        factor, text = 1_000, text[:-1]
    elif text.endswith("m"):
        factor, text = 1_000_000, text[:-1]
    return int(text) * factor


class FaultSpec:
    """One fault: a kind plus the trigger coordinates that fire it."""

    __slots__ = ("kind", "cell", "records", "put", "times")

    def __init__(
        self,
        kind: str,
        cell: Optional[int] = None,
        records: Optional[int] = None,
        put: Optional[int] = None,
        times: int = 1,
    ) -> None:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}")
        if cell is None and records is None and put is None:
            raise ValueError(f"fault {kind!r} needs a trigger (cell=, records= or put=)")
        if times <= 0:
            raise ValueError("times must be positive")
        self.kind = kind
        self.cell = cell
        self.records = records
        self.put = put
        self.times = times

    @property
    def site(self) -> str:
        """Which fire site this spec listens on."""
        if self.put is not None:
            return "store"
        if self.records is not None:
            return "records"
        return "cell"

    def matches(self, site: str, cell: Optional[int] = None,
                records: Optional[int] = None, put: Optional[int] = None) -> bool:
        """Whether a :func:`fire` call at ``site`` triggers this spec."""
        if site != self.site:
            return False
        if site == "store":
            return put == self.put
        if self.cell is not None and cell != self.cell:
            return False
        if site == "records":
            return records is not None and self.records is not None and records >= self.records
        return True

    def __str__(self) -> str:
        parts = []
        for name in ("cell", "records", "put"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        if self.times != 1:
            parts.append(f"times={self.times}")
        return f"{self.kind}@{':'.join(parts)}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultSpec({str(self)!r})"

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        text = text.strip()
        if "@" not in text:
            raise ValueError(f"fault spec {text!r} must look like kind@field=value[:field=value]")
        kind, _, rest = text.partition("@")
        fields: Dict[str, int] = {}
        for part in rest.split(":"):
            part = part.strip()
            if not part:
                continue
            name, eq, value = part.partition("=")
            name = name.strip()
            if not eq or name not in _FIELDS:
                raise ValueError(
                    f"bad fault field {part!r} in {text!r}; expected one of {_FIELDS}"
                )
            fields[name] = _parse_count(value)
        return cls(kind.strip(), **fields)


class FaultPlan:
    """An ordered list of :class:`FaultSpec` entries."""

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self.specs = list(specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __str__(self) -> str:
        return ";".join(str(spec) for spec in self.specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        entries = [entry for entry in text.split(";") if entry.strip()]
        if not entries:
            raise ValueError("empty fault plan")
        return cls([FaultSpec.parse(entry) for entry in entries])

    def record_triggers(self, cell: Optional[int]) -> List[int]:
        """Processed-record counts at which a controller edge must fire for
        ``cell`` (specs bound to another cell index are excluded)."""
        triggers = []
        for spec in self.specs:
            if spec.records is None:
                continue
            if spec.cell is not None and cell != spec.cell:
                continue
            triggers.append(spec.records)
        return sorted(set(triggers))


class FaultInjector:
    """Evaluates a plan at fire sites, claiming firings atomically.

    ``state_dir`` makes claims global across processes: firing slot ``t``
    of spec ``i`` creates ``<state_dir>/fault-<i>.<t>`` with ``O_EXCL``;
    whoever creates it fires.  Without a state directory (unit tests),
    claims are process-local counters.
    """

    def __init__(self, plan: FaultPlan, state_dir: Optional[str] = None) -> None:
        self.plan = plan
        self.state_dir = state_dir
        if state_dir is not None:
            os.makedirs(state_dir, exist_ok=True)
        self._local_fired: Dict[int, int] = {}
        self.heartbeats_dropped = False

    def _claim(self, index: int, spec: FaultSpec) -> bool:
        if self.state_dir is None:
            fired = self._local_fired.get(index, 0)
            if fired >= spec.times:
                return False
            self._local_fired[index] = fired + 1
            return True
        for slot in range(spec.times):
            marker = os.path.join(self.state_dir, f"fault-{index}.{slot}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def fire(self, site: str, cell: Optional[int] = None, records: Optional[int] = None,
             put: Optional[int] = None, store_path: Optional[str] = None,
             store_line: Optional[str] = None) -> None:
        """Evaluate every spec against one fire site; execute what claims."""
        for index, spec in enumerate(self.plan.specs):
            if not spec.matches(site, cell=cell, records=records, put=put):
                continue
            if not self._claim(index, spec):
                continue
            self._execute(spec, store_path=store_path, store_line=store_line)

    def record_triggers(self, cell: Optional[int]) -> List[int]:
        return self.plan.record_triggers(cell)

    # ------------------------------------------------------------------ actions

    def _execute(self, spec: FaultSpec, store_path: Optional[str],
                 store_line: Optional[str]) -> None:
        if spec.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif spec.kind == "hang":
            # Stop progressing (and heartbeating) until the supervisor kills
            # this process; sliced sleeps keep signals responsive.
            while True:  # pragma: no cover - exits only via a signal
                time.sleep(_HANG_SLICE_SECONDS)
        elif spec.kind == "error":
            raise FaultInjected(f"injected fault: {spec}")
        elif spec.kind == "truncate-store":
            # A crash mid-append: half the line lands on disk, no newline,
            # and the process dies before it can finish the write.
            if store_path is not None and store_line is not None:
                with open(store_path, "a", encoding="utf-8") as handle:
                    handle.write(store_line[: max(1, len(store_line) // 2)])
                    handle.flush()
                    os.fsync(handle.fileno())
            os._exit(1)
        elif spec.kind == "drop-heartbeat":
            self.heartbeats_dropped = True


# ---------------------------------------------------------------------------
# process-global injector (loaded lazily from the environment)
# ---------------------------------------------------------------------------

_INJECTOR: Optional[FaultInjector] = None
_LOADED = False
_CURRENT_CELL: Optional[int] = None


def active_injector() -> Optional[FaultInjector]:
    """The process's injector, parsed once from the environment (or None)."""
    global _INJECTOR, _LOADED
    if not _LOADED:
        _LOADED = True
        text = os.environ.get(PLAN_ENV)
        if text:
            _INJECTOR = FaultInjector(FaultPlan.parse(text), os.environ.get(STATE_ENV))
    return _INJECTOR


def install(plan: Union[str, FaultPlan, None], state_dir: Optional[str] = None) -> None:
    """Install (or, with ``None``, clear) this process's injector directly.

    Accepts a plan string or an already-parsed :class:`FaultPlan`.  Also
    exports/clears the environment so child worker processes inherit the
    same plan; the CLI's ``--inject`` lands here.
    """
    global _INJECTOR, _LOADED
    _LOADED = True
    if plan is None:
        _INJECTOR = None
        os.environ.pop(PLAN_ENV, None)
        os.environ.pop(STATE_ENV, None)
        return
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _INJECTOR = FaultInjector(plan, state_dir)
    os.environ[PLAN_ENV] = str(plan)
    if state_dir is not None:
        os.environ[STATE_ENV] = state_dir


def reset() -> None:
    """Forget any loaded injector (tests re-read the environment next call)."""
    global _INJECTOR, _LOADED, _CURRENT_CELL
    _INJECTOR = None
    _LOADED = False
    _CURRENT_CELL = None


def set_current_cell(index: Optional[int]) -> None:
    """Record which campaign cell this process is executing (fire context)."""
    global _CURRENT_CELL
    _CURRENT_CELL = index


def current_cell() -> Optional[int]:
    return _CURRENT_CELL


def fire(site: str, cell: Optional[int] = None, records: Optional[int] = None,
         put: Optional[int] = None, store_path: Optional[str] = None,
         store_line: Optional[str] = None) -> None:
    """Module-level fire hook: one ``None`` check when no plan is loaded."""
    injector = active_injector()
    if injector is None:
        return
    if cell is None:
        cell = _CURRENT_CELL
    injector.fire(site, cell=cell, records=records, put=put,
                  store_path=store_path, store_line=store_line)


def heartbeat_dropped() -> bool:
    """Whether the ``drop-heartbeat`` fault has silenced this process."""
    injector = _INJECTOR
    return injector is not None and injector.heartbeats_dropped
