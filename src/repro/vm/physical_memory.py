"""Physical frame allocation.

The simulator normally runs with identity virtual→physical mapping (the
address streams emitted by the workload generators are already physical-like)
but the allocator exists so that non-identity mappings and page aliasing can
be exercised by tests and by the HMA baseline.
"""

from __future__ import annotations


class FrameAllocator:
    """Monotonic physical frame allocator with a free list."""

    def __init__(self, first_frame: int = 0) -> None:
        if first_frame < 0:
            raise ValueError("first_frame must be non-negative")
        self._next = first_frame
        self._free: list = []
        self.allocated = 0

    def allocate(self) -> int:
        """Allocate one physical frame number."""
        self.allocated += 1
        if self._free:
            return self._free.pop()
        frame = self._next
        self._next += 1
        return frame

    def free(self, frame: int) -> None:
        """Return a frame to the allocator."""
        if frame < 0:
            raise ValueError("frame must be non-negative")
        self.allocated -= 1
        self._free.append(frame)

    @property
    def live_frames(self) -> int:
        """Number of frames currently allocated."""
        return self.allocated
