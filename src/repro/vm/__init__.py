"""Virtual-memory substrate: page tables, TLBs, frame allocation, reverse mapping."""

from repro.vm.page_table import PageTable, PageTableEntry
from repro.vm.physical_memory import FrameAllocator
from repro.vm.reverse_mapping import ReverseMapping
from repro.vm.shootdown import ShootdownCostModel
from repro.vm.tlb import Tlb, TlbEntry

__all__ = [
    "PageTable",
    "PageTableEntry",
    "FrameAllocator",
    "ReverseMapping",
    "ShootdownCostModel",
    "Tlb",
    "TlbEntry",
]
