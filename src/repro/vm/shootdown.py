"""TLB shootdown cost model.

Banshee performs one system-wide TLB shootdown per tag-buffer flush
(Section 3.4).  The paper charges the initiating core 4 µs and every other
core 1 µs (Table 3, citing DiDi).  This module converts those costs into
cycles so the system can add them to the affected cores' clocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.util.units import cycles_from_us


@dataclass
class ShootdownCost:
    """Per-core cycle penalties for one shootdown."""

    initiator_core: int
    per_core_cycles: List[int]

    @property
    def total_cycles(self) -> int:
        """Sum of all per-core penalties."""
        return sum(self.per_core_cycles)


class ShootdownCostModel:
    """Computes per-core penalties for TLB shootdowns and PTE update batches."""

    def __init__(
        self,
        num_cores: int,
        freq_ghz: float,
        initiator_us: float,
        slave_us: float,
    ) -> None:
        if num_cores <= 0:
            raise ValueError("num_cores must be positive")
        self.num_cores = num_cores
        self.initiator_cycles = cycles_from_us(initiator_us, freq_ghz)
        self.slave_cycles = cycles_from_us(slave_us, freq_ghz)
        self.shootdowns = 0

    def shootdown(self, initiator_core: int) -> ShootdownCost:
        """Cost of one system-wide shootdown initiated by ``initiator_core``."""
        if not 0 <= initiator_core < self.num_cores:
            raise ValueError("initiator core out of range")
        self.shootdowns += 1
        per_core = [self.slave_cycles] * self.num_cores
        per_core[initiator_core] = self.initiator_cycles
        return ShootdownCost(initiator_core=initiator_core, per_core_cycles=per_core)
