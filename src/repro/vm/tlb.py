"""Per-core TLB with the Banshee mapping-bit extension.

The TLB caches PTEs, including the (cached, way) extension bits.  Because
Banshee updates PTEs lazily, TLB copies of the extension bits may be *stale*;
the memory controller's tag buffer holds the authoritative mapping for any
page whose remap has not yet been pushed to the page table, so stale bits are
harmless for correctness.  A system-wide shootdown (invalidate_all) is issued
after each batched PTE update.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.sim.config import TlbConfig
from repro.vm.page_table import PageTableEntry


class TlbEntry:
    """One TLB entry: a cached translation plus Banshee's extension bits.

    A plain ``__slots__`` class (not a dataclass): one entry exists per
    resident translation and the hot path reads its fields on every record,
    so dict-backed instances would waste space and indirection.
    """

    __slots__ = ("vpn", "ppn", "cached", "way", "large", "generation")

    def __init__(
        self,
        vpn: int,
        ppn: int,
        cached: bool,
        way: int,
        large: bool = False,
        generation: int = 0,
    ) -> None:
        self.vpn = vpn
        self.ppn = ppn
        self.cached = cached
        self.way = way
        self.large = large
        self.generation = generation

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TlbEntry(vpn={self.vpn!r}, ppn={self.ppn!r}, cached={self.cached!r}, "
            f"way={self.way!r}, large={self.large!r}, generation={self.generation!r})"
        )


class Tlb:
    """A small fully-associative TLB with LRU replacement.

    Real L1 TLBs are set-associative; full associativity with LRU is a
    conventional simulator simplification that slightly under-counts TLB
    misses and is identical across all compared schemes.
    """

    def __init__(self, core_id: int, config: TlbConfig) -> None:
        self.core_id = core_id
        self.config = config
        self._entries: "OrderedDict[int, TlbEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: Bumped on every membership change (fill / invalidate / shootdown).
        #: The batch engine's vectorized front end rebuilds its flat key
        #: mirror only when this moves, so hit bursts pay nothing for it.
        self.version = 0

    def lookup(self, vpn: int) -> Optional[TlbEntry]:
        """Return the entry for ``vpn`` or None on a TLB miss."""
        entry = self._entries.get(vpn)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(vpn)
            return entry
        self.misses += 1
        return None

    def fill(self, pte: PageTableEntry) -> TlbEntry:
        """Install a translation after a page walk."""
        if len(self._entries) >= self.config.entries and pte.vpn not in self._entries:
            self._entries.popitem(last=False)
        # The entry is retained in the TLB and only built on a TLB miss (per
        # page walk, not per record).  # repro: allow[hotpath-alloc]
        entry = TlbEntry(
            vpn=pte.vpn,
            ppn=pte.ppn,
            cached=pte.cached,
            way=pte.way,
            large=pte.large,
            generation=pte.generation,
        )
        self._entries[pte.vpn] = entry
        self._entries.move_to_end(pte.vpn)
        self.version += 1
        return entry

    def invalidate_all(self) -> int:
        """TLB shootdown: drop every entry, returning how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self.invalidations += 1
        self.version += 1
        return dropped

    def invalidate(self, vpn: int) -> bool:
        """Drop a single entry (used by HMA's per-page remaps)."""
        if self._entries.pop(vpn, None) is not None:
            self.version += 1
            return True
        return False

    @property
    def occupancy(self) -> int:
        """Number of resident translations."""
        return len(self._entries)

    @property
    def miss_rate(self) -> float:
        """TLB miss rate since construction."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
