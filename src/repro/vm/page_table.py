"""Page table with Banshee's PTE extension.

Each PTE carries the normal virtual→physical translation plus the Banshee
extension of Section 3.2: a *cached* bit saying whether the page is resident
in the in-package DRAM cache and *way* bits saying which way of its set it
occupies.  Crucially (and unlike TDC/HMA), remapping a page in Banshee does
**not** change its physical address — only these extension bits change — so
on-chip caches never need to be scrubbed for address consistency.

Large (2 MB) pages are supported: a large PTE covers ``large_page_size /
page_size`` small-page frames and carries a ``large`` flag that the TLB and
memory requests propagate (Section 4.3).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.vm.physical_memory import FrameAllocator
from repro.vm.reverse_mapping import ReverseMapping


class PageTableEntry:
    """One page-table entry (with the Banshee extension bits).

    A plain ``__slots__`` class (not a dataclass): one entry exists per
    mapped page and the translation hot path touches them constantly, so
    dict-backed instances would dominate the page table's footprint.
    """

    __slots__ = ("vpn", "ppn", "cached", "way", "large", "generation")

    def __init__(
        self,
        vpn: int,
        ppn: int,
        cached: bool = False,
        way: int = 0,
        large: bool = False,
        generation: int = 0,
    ) -> None:
        self.vpn = vpn
        self.ppn = ppn
        self.cached = cached
        self.way = way
        self.large = large
        self.generation = generation

    @property
    def mapping_bits(self) -> Tuple[bool, int]:
        """The (cached, way) pair copied into TLB entries and memory requests."""
        return (self.cached, self.way)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PageTableEntry(vpn={self.vpn!r}, ppn={self.ppn!r}, cached={self.cached!r}, "
            f"way={self.way!r}, large={self.large!r}, generation={self.generation!r})"
        )


class PageTable:
    """A per-workload page table with on-demand allocation.

    The table is shared by all cores (one address space), which matches the
    multi-threaded graph workloads and is a conservative simplification for
    the multi-programmed SPEC mixes (each core's virtual ranges are disjoint
    there, so sharing the table changes nothing).
    """

    def __init__(
        self,
        page_size: int,
        allocator: Optional[FrameAllocator] = None,
        reverse_mapping: Optional[ReverseMapping] = None,
        identity: bool = True,
    ) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self.identity = identity
        self.allocator = allocator if allocator is not None else FrameAllocator()
        self.reverse_mapping = reverse_mapping if reverse_mapping is not None else ReverseMapping()
        self._entries: Dict[int, PageTableEntry] = {}
        self.walks = 0
        self.update_batches = 0
        self.updated_ptes = 0

    # ------------------------------------------------------------------ translation

    def vpn_of(self, vaddr: int) -> int:
        """Virtual page number containing ``vaddr``."""
        return vaddr // self.page_size

    def translate(self, vaddr: int) -> PageTableEntry:
        """Translate ``vaddr``, allocating a frame on first touch."""
        vpn = self.vpn_of(vaddr)
        entry = self._entries.get(vpn)
        if entry is None:
            entry = self._allocate(vpn)
        self.walks += 1
        return entry

    def entry_for_vpn(self, vpn: int) -> PageTableEntry:
        """Return (allocating if needed) the PTE for ``vpn``."""
        entry = self._entries.get(vpn)
        if entry is None:
            entry = self._allocate(vpn)
        return entry

    def _allocate(self, vpn: int) -> PageTableEntry:
        if self.identity:
            ppn = vpn
        else:
            ppn = self.allocator.allocate()
        # The PTE is retained for the life of the mapping and only built on a
        # page fault (first touch).  # repro: allow[hotpath-alloc]
        entry = PageTableEntry(vpn=vpn, ppn=ppn)
        self._entries[vpn] = entry
        self.reverse_mapping.add(ppn, vpn)
        return entry

    # ------------------------------------------------------------------ Banshee PTE updates

    def entries_for_ppn(self, ppn: int) -> Iterable[PageTableEntry]:
        """All PTEs mapping ``ppn`` (via the OS reverse mapping, Section 3.4)."""
        for vpn in self.reverse_mapping.vpns_for(ppn):
            entry = self._entries.get(vpn)
            if entry is not None:
                yield entry

    def apply_mapping(self, ppn: int, cached: bool, way: int) -> int:
        """Update the extension bits of every PTE mapping ``ppn``.

        Returns the number of PTEs touched.  This is the software routine that
        the tag-buffer-full interrupt triggers.
        """
        count = 0
        for entry in self.entries_for_ppn(ppn):
            entry.cached = cached
            entry.way = way
            entry.generation += 1
            count += 1
        self.updated_ptes += count
        return count

    def record_update_batch(self) -> None:
        """Count one batched PTE-update invocation (tag buffer flush)."""
        self.update_batches += 1

    # ------------------------------------------------------------------ introspection

    def mapped_pages(self) -> int:
        """Number of pages allocated so far."""
        return len(self._entries)

    def alias(self, vpn: int, target_vpn: int) -> PageTableEntry:
        """Create a page-aliasing mapping: ``vpn`` maps to ``target_vpn``'s frame.

        Exists to exercise the reverse-mapping path that an inverted page
        table (the TDC proposal) cannot handle; tests use it to show that
        Banshee's PTE update touches every alias.
        """
        target = self.entry_for_vpn(target_vpn)
        entry = PageTableEntry(vpn=vpn, ppn=target.ppn, cached=target.cached, way=target.way)
        self._entries[vpn] = entry
        self.reverse_mapping.add(target.ppn, vpn)
        return entry
