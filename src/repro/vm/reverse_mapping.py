"""Reverse mapping: physical frame → set of virtual pages mapping it.

Banshee's PTE-update routine (Section 3.4) relies on the OS reverse-mapping
mechanism (as Linux's rmap does) rather than a hardware inverted page table,
because reverse mapping handles page aliasing — multiple VPNs mapping one
physical frame — which an inverted page table cannot.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Set


class ReverseMapping:
    """Physical-to-virtual reverse map."""

    def __init__(self) -> None:
        self._map: Dict[int, Set[int]] = defaultdict(set)

    def add(self, ppn: int, vpn: int) -> None:
        """Record that ``vpn`` maps to physical frame ``ppn``."""
        self._map[ppn].add(vpn)

    def remove(self, ppn: int, vpn: int) -> None:
        """Remove one mapping; silently ignores absent pairs.

        The frame's entry is pruned when its last mapping goes away —
        otherwise a long-running simulation with page churn accumulates one
        permanently-empty set per frame ever touched (and ``__len__`` had to
        skip them on every call).
        """
        vpns = self._map.get(ppn)
        if vpns is None:
            return
        vpns.discard(vpn)
        if not vpns:
            del self._map[ppn]

    def vpns_for(self, ppn: int) -> Iterable[int]:
        """All virtual pages currently mapping ``ppn``."""
        return tuple(self._map.get(ppn, ()))

    def alias_count(self, ppn: int) -> int:
        """Number of virtual pages sharing ``ppn``."""
        return len(self._map.get(ppn, ()))

    def __len__(self) -> int:
        return len(self._map)
