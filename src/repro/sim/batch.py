"""The batch engine kernel: column buffers plus run-length core scheduling.

The scalar engine moves one ``TraceRecord`` object per iteration through an
iterator and a heap.  This kernel moves *columns*: each core pulls
``(gaps, addrs, writes)`` batches from :meth:`Workload.trace_batches` and the
scheduler processes whole **runs** — maximal record sequences one core can
execute before any other core's clock could interleave — without touching a
heap or constructing a single record object.

Order preservation
------------------

The heap invariant of the scalar engine is that every live core holds exactly
one ``(clock, core_id)`` entry, keyed by its clock *after its previous
record* (0.0 before its first).  The next record therefore always belongs to
the core with the minimum key, ties broken by core id.  This scheduler keeps
those keys in a flat list and picks ``c = argmin (key, id)`` directly; with
``B = (b_clock, b_core)`` the minimum over the *other* live cores, core ``c``
may keep executing records while its evolving clock satisfies
``(clock, c) < B`` — exactly the condition under which the heap would pop it
again.  The first record of a run needs no check (``c`` is the minimum), and
the run is cut at warmup/observer-window/budget boundaries so those fire at
the same processed counts as the scalar loop.  Pending OS stalls only apply
when the stalled core executes its next record (both engines), so no other
core's key can change while ``c`` runs.  The interleaving — and therefore
DRAM channel contention — is provably identical, and all results are
bit-identical to the scalar engine.

Within a run, records that hit both the TLB and the L1 with no pending OS
stall touch only core-private state; they are executed by an inlined copy of
:meth:`System.process_record_cols`'s hit path (same float operations, same
order).  Everything else falls back to ``process_record_cols`` itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

from repro.workloads.base import TraceBatch

if TYPE_CHECKING:
    from repro.obs.events import EventLog
    from repro.obs.timeline import TimelineObserver
    from repro.sim.system import System
    from repro.sim.vector import VectorFrontEnd

#: Records per scalar stretch between vectorized-filter retries.  Only used
#: when the numpy front end is attached; a pure-Python run is one stretch.
_SCALAR_STRETCH = 32


class EngineCursor:
    """Read-only view of engine progress handed to controller edges.

    ``consumed_per_core`` counts the records each core has consumed *within
    the current run* — workload streams restart per run, so these are
    exactly the fast-forward distances a snapshot resume needs.
    """

    __slots__ = ("system", "processed", "consumed_per_core", "measurement_started")

    def __init__(
        self,
        system: "System",
        processed: int,
        consumed_per_core: List[int],
        measurement_started: bool,
    ) -> None:
        self.system = system
        self.processed = processed
        self.consumed_per_core = consumed_per_core
        self.measurement_started = measurement_started


class RunController:
    """Steers a running engine from outside the per-record loop.

    A controller names the next processed-record count it wants control at
    (:meth:`next_stop`) and the engine cuts its runs there, calling
    :meth:`on_edge` with an :class:`EngineCursor` — exactly the mechanism
    warmup/observer/budget boundaries already use, so a controller costs the
    detached engine nothing and an attached one only extra run cuts.
    ``on_edge`` may block (pause), mutate its own state, capture snapshots,
    or return ``True`` to stop the run early.  :meth:`on_finish` fires once
    after the last record (or after an early stop).
    """

    def next_stop(self, processed: int) -> Optional[int]:
        """Next processed count to fire an edge at; None = no more edges."""
        return None

    def on_edge(self, cursor: EngineCursor) -> bool:
        """Handle an edge; return True to stop the run early."""
        return False

    def on_finish(self, cursor: EngineCursor) -> None:
        """Called once when the run ends (normally or via an early stop)."""
        return None


def _controller_stop(controller: "RunController", processed: int) -> float:
    """Normalize a controller's next stop to a comparable, progressing bound."""
    stop = controller.next_stop(processed)
    if stop is None:
        return float("inf")
    # Clamp to at least one record of progress so a stale stop cannot stall
    # the loop.
    return float(stop) if stop > processed else float(processed + 1)


def _edge(
    controller: "RunController",
    system: "System",
    processed: int,
    consumed: List[int],
    measurement_started: bool,
) -> bool:
    """Fire a controller edge; returns True when the run should stop."""
    cursor = EngineCursor(system, processed, list(consumed), measurement_started)
    return bool(controller.on_edge(cursor))


def _fast_forward(source: _CoreSource, count: int) -> int:
    """Skip ``count`` already-consumed records; returns the records skipped."""
    skipped = 0
    while count > 0:
        if source.pos >= source.length and not source.refill():
            break
        step = source.length - source.pos
        if step > count:
            step = count
        source.pos += step
        count -= step
        skipped += step
    return skipped


class _CoreSource:
    """One core's column buffers, refilled batch-by-batch from the workload."""

    __slots__ = ("batches", "gaps", "addrs", "writes", "pos", "length",
                 "const_gap", "np_gaps", "np_addrs", "np_writes")

    def __init__(self, batches: Iterator[TraceBatch]) -> None:
        self.batches = batches
        self.gaps: List[int] = []
        self.addrs: List[int] = []
        self.writes: List[bool] = []
        self.pos = 0
        self.length = 0
        # The batch's gap when every record shares it (fixed-rate workloads:
        # all the graph generators), else None.  Lets the inline hit path
        # reuse one precomputed gap/issue_width quotient instead of indexing
        # and dividing per record; the quotient is the same float either way.
        self.const_gap: Optional[int] = None
        # numpy views of the current batch, built lazily by the vectorized
        # front end (None in pure-Python batch mode).
        self.np_gaps: Any = None
        self.np_addrs: Any = None
        self.np_writes: Any = None

    def refill(self) -> bool:
        """Load the next non-empty batch; False when the stream is exhausted."""
        while True:
            try:
                gaps, addrs, writes = next(self.batches)
            except StopIteration:
                return False
            if gaps:
                self.gaps = gaps
                self.addrs = addrs
                self.writes = writes
                self.pos = 0
                self.length = len(gaps)
                gap0 = gaps[0]
                self.const_gap = gap0 if gaps.count(gap0) == len(gaps) else None
                self.np_gaps = None
                self.np_addrs = None
                self.np_writes = None
                return True


class BatchRunner:
    """One run of the batch engine (constructed per :meth:`SimulationEngine.run`)."""

    def __init__(self, system: "System", vectorize: bool = False) -> None:
        self._system = system
        self._process_cols = system.process_record_cols
        # The inline hit path replicates process_record_cols's TLB-hit +
        # L1-hit branch, which is only reachable when no per-record hook is
        # attached (HMA's cycle notifications, the observer's latency
        # histogram, a watchpoint hook).  With a hook attached every record
        # takes the full path.
        self._fast_ok = (
            system._notify_cycle is None
            and system._obs_latency_hook is None
            and system._obs_watch_hook is None
        )
        self._sources: List[_CoreSource] = []
        self._vector: Optional["VectorFrontEnd"] = None
        if vectorize and self._fast_ok:
            from repro.sim.vector import VectorFrontEnd

            self._vector = VectorFrontEnd(system)

    def detach(self) -> None:
        """Release per-run hooks installed on the system (mirror logs)."""
        if self._vector is not None:
            self._vector.detach()
            self._vector = None

    # ------------------------------------------------------------------ scheduling

    def _init_schedule(
        self,
        max_records_per_core: int,
        resume: Optional[Dict[str, Any]],
    ) -> Tuple[List[int], List[int], List[float], List[int], int]:
        """Build (consumed, remaining, keys, live, processed) for the run.

        On a fresh run the scheduling keys mirror the scalar engine's heap
        entries: 0.0 before a core's first record (even on a reused engine),
        the core's clock after its latest record otherwise.  On a resume the
        sources are fast-forwarded by the snapshot's consumed counts and the
        keys come from the restored core clocks — exactly the keys the
        original run held at the snapshot edge.
        """
        system = self._system
        num_cores = system.config.num_cores
        if resume is None:
            consumed = [0] * num_cores
            processed = 0
        else:
            consumed = [int(count) for count in resume["consumed_per_core"]]
            processed = int(resume["processed"])
            for core_id, count in enumerate(consumed):
                skipped = _fast_forward(self._sources[core_id], count)
                if skipped != count:
                    raise ValueError(
                        f"cannot resume: core {core_id} stream holds {skipped} "
                        f"records, snapshot consumed {count}; the workload does "
                        "not match the snapshot"
                    )
        remaining = [max_records_per_core - count for count in consumed]
        cores = system.cores
        keys = [
            cores[core_id].clock if consumed[core_id] > 0 else 0.0
            for core_id in range(num_cores)
        ]
        live = [core_id for core_id in range(num_cores) if remaining[core_id] > 0]
        return consumed, remaining, keys, live, processed

    def run(
        self,
        max_records_per_core: int,
        total_budget: float,
        warmup_threshold: int,
        measurement_started: bool,
        observer: Optional["TimelineObserver"],
        events: Optional["EventLog"],
        controller: Optional["RunController"] = None,
        resume: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Drive the whole simulation; returns the records processed."""
        system = self._system
        num_cores = system.config.num_cores
        workload = system.workload
        self._sources = [
            _CoreSource(workload.trace_batches(core_id)) for core_id in range(num_cores)
        ]
        if self._vector is None:
            return self._run_plain(
                max_records_per_core, total_budget, warmup_threshold,
                measurement_started, observer, events, controller, resume,
            )
        sources = self._sources
        cores = system.cores
        consumed, remaining, keys, live, processed = self._init_schedule(
            max_records_per_core, resume
        )
        observing = observer is not None
        next_window = processed + observer.interval if observer is not None else 0
        infinity = float("inf")
        controlling = controller is not None
        ctrl_next = _controller_stop(controller, processed) if controller is not None else infinity

        while live and processed < total_budget:
            best = -1
            best_key = 0.0
            b_core = -1
            b_key = 0.0
            for core_id in live:
                key = keys[core_id]
                if best < 0 or key < best_key:
                    b_core = best
                    b_key = best_key
                    best = core_id
                    best_key = key
                elif b_core < 0 or key < b_key:
                    b_core = core_id
                    b_key = key
            source = sources[best]
            if source.pos >= source.length and not source.refill():
                # Matches the scalar engine's StopIteration handling: the
                # minimum core is dropped at the moment it would next run.
                remaining[best] = 0
                live.remove(best)
                continue
            if b_core < 0:
                b_key = infinity
                b_core = num_cores
            # Cut the run at every boundary the scalar loop checks per
            # record, so warmup/windows/budget fire at identical counts.
            cap = remaining[best]
            avail = source.length - source.pos
            if avail < cap:
                cap = avail
            budget_left = total_budget - processed
            if budget_left < cap:
                cap = int(budget_left)
            if not measurement_started:
                warmup_left = warmup_threshold - processed
                if warmup_left < cap:
                    cap = warmup_left
            if observing:
                window_left = next_window - processed
                if window_left < cap:
                    cap = window_left
            if controlling:
                ctrl_left = ctrl_next - processed
                if ctrl_left < cap:
                    cap = int(ctrl_left)
            done = self._run_core(best, cap, b_key, b_core)
            processed += done
            remaining[best] -= done
            consumed[best] += done
            keys[best] = cores[best].clock
            if not measurement_started and processed >= warmup_threshold:
                system.begin_measurement()
                measurement_started = True
                if observer is not None:
                    observer.start_measurement(processed)
                    next_window = processed + observer.interval
                if events is not None:
                    events.emit("warmup_end", records=processed)
            if observer is not None and processed >= next_window:
                observer.snapshot(processed)
                next_window = processed + observer.interval
            if controller is not None and processed >= ctrl_next:
                stop_run = _edge(controller, system, processed, consumed, measurement_started)
                ctrl_next = _controller_stop(controller, processed)
                if stop_run:
                    break
            if remaining[best] <= 0:
                live.remove(best)
        if controller is not None:
            controller.on_finish(
                EngineCursor(system, processed, list(consumed), measurement_started)
            )
        return processed

    def _run_plain(
        self,
        max_records_per_core: int,
        total_budget: float,
        warmup_threshold: int,
        measurement_started: bool,
        observer: Optional["TimelineObserver"],
        events: Optional["EventLog"],
        controller: Optional["RunController"] = None,
        resume: Optional[Dict[str, Any]] = None,
    ) -> int:
        """The pure-Python batch loop: scheduler and record loop fully inlined.

        Multicore interleave runs average only a couple of records (cores
        advance their clocks at similar rates), so per-run overhead is paid
        almost per record; this loop therefore hoists all per-core state into
        context tuples built once per run() and keeps the three float
        accumulators (core clock, compute cycles, memory stall cycles) in
        locals, flushing them only around slow-path calls and at run ends.
        The flushes preserve the exact per-record addition order, so results
        stay bit-identical (see the module docstring for the order proof).
        """
        system = self._system
        num_cores = system.config.num_cores
        sources = self._sources
        process_cols = self._process_cols
        fast_ok = self._fast_ok
        page_size = system.page_size
        # The inline path computes vpns with a shift; a non-power-of-two page
        # size (no shipped config has one) just disables the inline path and
        # every record takes process_record_cols — still bit-identical.
        page_shift = page_size.bit_length() - 1
        if (1 << page_shift) != page_size:
            fast_ok = False
        # Per-core invariant context, resolved once: (core, tlb, l1,
        # tlb entries, tlb move_to_end, l1 sets, set mask, line bits,
        # lru flag, issue width, l1 stall, stats).
        contexts: List[Any] = []
        for core_id in range(num_cores):
            core = system.cores[core_id]
            tlb = system.tlbs[core_id]
            l1 = system.hierarchy.l1[core_id]
            contexts.append((
                core, tlb, l1, tlb._entries, tlb._entries.move_to_end,
                l1._sets, l1._set_mask, l1._line_bits, l1._lru,
                core._issue_width, core._l1_stall, core.stats,
            ))
        consumed, remaining, keys, live, processed = self._init_schedule(
            max_records_per_core, resume
        )
        observing = observer is not None
        next_window = processed + observer.interval if observer is not None else 0
        infinity = float("inf")
        controlling = controller is not None
        ctrl_next = _controller_stop(controller, processed) if controller is not None else infinity

        while live and processed < total_budget:
            if len(live) == 1:
                best = live[0]
                b_clock = infinity
                b_core = num_cores
            else:
                best = -1
                best_key = 0.0
                b_core = -1
                b_clock = 0.0
                for core_id in live:
                    key = keys[core_id]
                    if best < 0 or key < best_key:
                        b_core = best
                        b_clock = best_key
                        best = core_id
                        best_key = key
                    elif b_core < 0 or key < b_clock:
                        b_core = core_id
                        b_clock = key
            source = sources[best]
            pos = source.pos
            if pos >= source.length:
                if not source.refill():
                    # Matches the scalar engine's StopIteration handling: the
                    # minimum core is dropped when it would next run.
                    remaining[best] = 0
                    live.remove(best)
                    continue
                pos = 0
            # Cut the run at every boundary the scalar loop checks per
            # record, so warmup/windows/budget fire at identical counts.
            cap = remaining[best]
            avail = source.length - pos
            if avail < cap:
                cap = avail
            if processed + cap > total_budget:
                cap = int(total_budget - processed)
            if not measurement_started:
                warmup_left = warmup_threshold - processed
                if warmup_left < cap:
                    cap = warmup_left
            if observing:
                window_left = next_window - processed
                if window_left < cap:
                    cap = window_left
            if controlling:
                ctrl_left = ctrl_next - processed
                if ctrl_left < cap:
                    cap = int(ctrl_left)
            (core, tlb, l1, tlb_entries, tlb_move, l1_sets, set_mask,
             line_bits, l1_lru, issue_width, l1_stall, stats) = contexts[best]
            gaps = source.gaps
            addrs = source.addrs
            writes = source.writes
            const_gap = source.const_gap
            cycles_const = const_gap / issue_width if const_gap is not None else 0.0
            tie_lt = best < b_core
            start = pos
            end = pos + cap
            clock = core.clock
            cc = stats.compute_cycles
            ms = stats.memory_stall_cycles
            instructions = 0
            fast_count = 0
            # The inline hit path cannot set a pending stall, so the check
            # holds across fast records and is only re-evaluated after a
            # slow-path call (which can trigger OS events).
            fast_here = fast_ok and core._pending_stall == 0.0
            while pos < end:  # repro: hotpath
                addr = addrs[pos]
                if fast_here:
                    vpn = addr >> page_shift
                    if vpn in tlb_entries:
                        line = addr >> line_bits
                        bucket = l1_sets[line & set_mask]
                        if line in bucket:
                            # Inline TLB-hit + L1-hit path: identical
                            # operations in identical order to
                            # process_record_cols, so bit-identical.
                            if const_gap is None:
                                gap = gaps[pos]
                                cycles = gap / issue_width
                            else:
                                gap = const_gap
                                cycles = cycles_const
                            tlb_move(vpn)
                            if writes[pos]:
                                bucket[line] = True
                            if l1_lru:
                                bucket.move_to_end(line)
                            clock += cycles
                            cc += cycles
                            clock += l1_stall
                            ms += l1_stall
                            instructions += gap
                            fast_count += 1
                            pos += 1
                            if clock < b_clock or (clock == b_clock and tie_lt):
                                continue
                            break
                # Slow path: flush the float accumulators (their per-record
                # addition order must be preserved), call, reload.
                core.clock = clock
                stats.compute_cycles = cc
                stats.memory_stall_cycles = ms
                clock = process_cols(best, gaps[pos], addr, writes[pos])
                cc = stats.compute_cycles
                ms = stats.memory_stall_cycles
                fast_here = fast_ok and core._pending_stall == 0.0
                pos += 1
                if clock < b_clock or (clock == b_clock and tie_lt):
                    continue
                break
            done = pos - start
            source.pos = pos
            core.clock = clock
            stats.compute_cycles = cc
            stats.memory_stall_cycles = ms
            stats.instructions += instructions
            stats.memory_accesses += fast_count
            tlb.hits += fast_count
            l1.hits += fast_count
            keys[best] = clock
            processed += done
            remaining[best] -= done
            consumed[best] += done
            if not measurement_started and processed >= warmup_threshold:
                system.begin_measurement()
                measurement_started = True
                if observer is not None:
                    observer.start_measurement(processed)
                    next_window = processed + observer.interval
                if events is not None:
                    events.emit("warmup_end", records=processed)
            if observer is not None and processed >= next_window:
                observer.snapshot(processed)
                next_window = processed + observer.interval
            if controller is not None and processed >= ctrl_next:
                stop_run = _edge(controller, system, processed, consumed, measurement_started)
                ctrl_next = _controller_stop(controller, processed)
                if stop_run:
                    break
            if remaining[best] <= 0:
                live.remove(best)
        if controller is not None:
            controller.on_finish(
                EngineCursor(system, processed, list(consumed), measurement_started)
            )
        return processed

    def _run_core(self, core_id: int, cap: int, b_clock: float, b_core: int) -> int:
        """Execute up to ``cap`` records of one core's run; returns the count."""
        vector = self._vector
        if vector is None:
            return self._scalar_stretch(core_id, cap, b_clock, b_core)
        core = self._system.cores[core_id]
        tie_lt = core_id < b_core
        n = 0
        while n < cap:
            done = vector.try_bulk(core_id, self._sources[core_id], cap - n, b_clock, b_core)
            if done:
                n += done
                if n >= cap:
                    break
                clock = core.clock
                if not (clock < b_clock or (clock == b_clock and tie_lt)):
                    break
            # The next record is a TLB/L1 miss, a pending stall, or the bulk
            # filter is backed off: take a bounded scalar stretch, then give
            # the bulk filter another look.
            step = cap - n
            if step > _SCALAR_STRETCH:
                step = _SCALAR_STRETCH
            done = self._scalar_stretch(core_id, step, b_clock, b_core)
            n += done
            if done < step:
                break  # crossed the interleave boundary
        return n

    # ------------------------------------------------------------------ per-record

    def _scalar_stretch(self, core_id: int, stretch: int, b_clock: float, b_core: int) -> int:
        """Process up to ``stretch`` buffered records for one core.

        Stops early only when the core's clock crosses the interleave
        boundary ``(b_clock, b_core)``.  Records that hit both the TLB and
        the L1 with no pending OS stall run through an inlined copy of the
        ``process_record_cols`` hit path (identical operations in identical
        order, so results are bit-identical); everything else falls back to
        ``process_record_cols``.
        """
        system = self._system
        source = self._sources[core_id]
        core = system.cores[core_id]
        tlb = system.tlbs[core_id]
        l1 = system.hierarchy.l1[core_id]
        tlb_entries = tlb._entries
        tlb_move = tlb_entries.move_to_end
        l1_sets = l1._sets
        set_mask = l1._set_mask
        line_bits = l1._line_bits
        l1_lru = l1._lru
        page_size = system.page_size
        issue_width = core._issue_width
        l1_stall = core._l1_stall
        stats = core.stats
        process_cols = self._process_cols
        fast_ok = self._fast_ok
        tie_lt = core_id < b_core
        gaps = source.gaps
        addrs = source.addrs
        writes = source.writes
        pos = source.pos
        clock = core.clock
        # Exact integer counters commute, so they accumulate in locals and
        # flush once per stretch; the float accumulators (clock and the
        # cycle stats) must stay per-record to keep the summation order —
        # and therefore the rounded results — bit-identical to the scalar
        # engine.
        tlb_hits = 0
        l1_hits = 0
        instructions = 0
        accesses = 0
        n = 0
        while n < stretch:  # repro: hotpath
            gap = gaps[pos]
            addr = addrs[pos]
            is_write = writes[pos]
            if fast_ok and core._pending_stall == 0.0:
                vpn = addr // page_size
                if tlb_entries.get(vpn) is not None:
                    line = addr >> line_bits
                    bucket = l1_sets[line & set_mask]
                    if line in bucket:
                        tlb_hits += 1
                        tlb_move(vpn)
                        l1_hits += 1
                        if is_write:
                            bucket[line] = True
                        if l1_lru:
                            bucket.move_to_end(line)
                        cycles = gap / issue_width
                        clock += cycles
                        instructions += gap
                        stats.compute_cycles += cycles
                        accesses += 1
                        clock += l1_stall
                        stats.memory_stall_cycles += l1_stall
                        core.clock = clock
                        pos += 1
                        n += 1
                        if clock < b_clock or (clock == b_clock and tie_lt):
                            continue
                        break
            clock = process_cols(core_id, gap, addr, is_write)
            pos += 1
            n += 1
            if clock < b_clock or (clock == b_clock and tie_lt):
                continue
            break
        source.pos = pos
        tlb.hits += tlb_hits
        l1.hits += l1_hits
        stats.instructions += instructions
        stats.memory_accesses += accesses
        return n
