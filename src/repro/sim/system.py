"""System assembly: cores, TLBs, caches, memory controllers, DRAM devices.

:class:`System` wires together every substrate around the configured
DRAM-cache scheme and exposes a single entry point,
:meth:`System.process_record`, that the simulation engine drives with trace
records.  It also implements the :class:`repro.dramcache.base.OsServices`
callbacks — the software half of Banshee's software/hardware co-design — on
top of the page table, TLBs and core models.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.core import CoreModel
from repro.cpu.trace import TraceRecord
from repro.dram.device import DramDevice
from repro.dramcache.base import DramCacheScheme, OsServices
from repro.dramcache.factory import create_scheme
from repro.memctrl.controller import MemoryControllerSet
from repro.memctrl.request import MappingInfo, MemRequest
from repro.sim.config import SystemConfig
from repro.sim.results import SimulationResults
from repro.util.rng import DeterministicRng
from repro.util.units import cycles_from_us
from repro.vm.page_table import PageTable
from repro.vm.shootdown import ShootdownCostModel
from repro.vm.tlb import Tlb
from repro.workloads.base import Workload


class _SystemOsServices(OsServices):
    """The OS-side callbacks used by the DRAM-cache schemes."""

    def __init__(self, system: "System") -> None:
        self.system = system
        self.pte_update_batches = 0
        self.pte_updates = 0
        self.core_stall_events = 0

    def pte_update_batch(self, initiator_core: int, updates: List[Tuple[int, bool, int]]) -> None:
        system = self.system
        for page, cached, way in updates:
            system.page_table.apply_mapping(page, cached, way)
        system.page_table.record_update_batch()
        self.pte_update_batches += 1
        self.pte_updates += len(updates)

        # Software routine cost on the initiating core, then a system-wide
        # TLB shootdown (Section 3.4 / Table 3).
        initiator = initiator_core % system.config.num_cores
        system.cores[initiator].add_stall(system.pte_update_cost_cycles)
        shootdown = system.shootdown_model.shootdown(initiator)
        for core_id, cycles in enumerate(shootdown.per_core_cycles):
            system.cores[core_id].add_stall(cycles)
        for tlb in system.tlbs:
            tlb.invalidate_all()

    def stall_all_cores(self, cycles: int) -> None:
        self.core_stall_events += 1
        for core in self.system.cores:
            core.add_stall(cycles)

    def flush_page_from_caches(self, page_addr: int, page_size: int) -> int:
        dirty = self.system.hierarchy.flush_page(page_addr, page_size)
        return len(dirty)


class System:
    """A fully assembled simulated system for one workload and one scheme."""

    def __init__(self, config: SystemConfig, workload: Workload) -> None:
        self.config = config
        self.workload = workload
        self.rng = DeterministicRng(config.seed)
        self.page_size = workload.page_size

        self.hierarchy = CacheHierarchy(config, rng=self.rng.fork(1))
        self.page_table = PageTable(page_size=self.page_size)
        self.tlbs = [Tlb(core_id, config.tlb) for core_id in range(config.num_cores)]
        self.cores = [CoreModel(core_id, config.core, mlp=workload.mlp) for core_id in range(config.num_cores)]
        self.shootdown_model = ShootdownCostModel(
            num_cores=config.num_cores,
            freq_ghz=config.core.freq_ghz,
            initiator_us=config.dram_cache.tlb_shootdown_initiator_us,
            slave_us=config.dram_cache.tlb_shootdown_slave_us,
        )
        self.pte_update_cost_cycles = cycles_from_us(
            config.dram_cache.tag_buffer_flush_cost_us, config.core.freq_ghz
        )

        self.in_dram = DramDevice(config.in_package_dram, config.core.freq_ghz, page_size=self.page_size)
        self.off_dram = DramDevice(config.off_package_dram, config.core.freq_ghz, page_size=self.page_size)
        self.os_services = _SystemOsServices(self)
        self.scheme = create_scheme(config, self.in_dram, self.off_dram, rng=self.rng.fork(2))
        self.scheme.set_os_services(self.os_services)
        self.controllers = MemoryControllerSet(config, self.scheme)

        self.llc_misses = 0
        self.llc_writebacks = 0
        self._baseline = None

        # ---- hot-path state, hoisted out of the per-record loop ----------
        # Preallocated request/mapping objects, mutated in place per record:
        # schemes consume requests synchronously inside ``access`` and never
        # retain them, so reuse is safe and saves two allocations per LLC
        # miss plus one per writeback.
        self._mapping = MappingInfo()
        self._demand_request = MemRequest(
            addr=0, is_write=False, core_id=0, mapping=self._mapping, page_size=self.page_size
        )
        self._wb_request = MemRequest(
            addr=0, is_write=True, core_id=0, is_writeback=True, page_size=self.page_size
        )
        # Invariant lookups: bound methods and config scalars resolved once.
        self._hierarchy_access = self.hierarchy.access_reused
        self._controllers_access = self.controllers.access
        self._page_table_translate = self.page_table.translate
        self._page_walk_cycles = config.tlb.page_walk_cycles
        # ``notify_cycle`` is a no-op for every scheme except HMA; skip the
        # per-record dynamic dispatch entirely when it is not overridden.
        self._notify_cycle = (
            self.scheme.notify_cycle
            if type(self.scheme).notify_cycle is not DramCacheScheme.notify_cycle
            else None
        )
        # Optional per-record latency observer (repro.obs timeline); None
        # whenever no observer is attached, so the disabled cost is one
        # ``is None`` check per record and the observer only ever *reads*
        # state — results stay bit-identical either way.
        self._obs_latency_hook = None
        # Optional per-record watchpoint hook (repro.obs watch); same
        # contract as the latency hook: None when detached (one check per
        # record), read-only when attached, so results stay bit-identical.
        self._obs_watch_hook = None

    # ------------------------------------------------------------------ per-record processing

    def process_record(self, core_id: int, record: TraceRecord) -> float:
        """Process one trace record for ``core_id``; returns the new core clock."""
        return self.process_record_cols(core_id, record.gap, record.addr, record.is_write)

    def process_record_cols(self, core_id: int, gap: int, addr: int, is_write: bool) -> float:
        """Process one record given as its three columns; returns the new core clock.

        This is the simulator's innermost loop — one call per trace record
        (via :meth:`process_record` in the scalar engine, directly from the
        column buffers in the batch engine) — so the translate /
        hierarchy-walk / timing steps are inlined against preallocated
        objects rather than composed from the public per-call APIs (which
        remain for tests and non-hot callers).  The arithmetic is identical
        to the composed path, so results stay bit-identical.
        """
        core = self.cores[core_id]
        if core._pending_stall > 0.0:
            core.apply_pending_stalls()

        # Compute phase (CoreModel.advance_compute, inlined).
        stats = core.stats
        cycles = gap / core._issue_width
        core.clock += cycles
        stats.instructions += gap
        stats.compute_cycles += cycles

        # Address translation (System._translate, inlined).
        entry = self.tlbs[core_id].lookup(addr // self.page_size)
        if entry is None:
            entry = self.tlbs[core_id].fill(self._page_table_translate(addr))
            core.clock += self._page_walk_cycles

        # Hierarchy walk + timing (CoreModel.advance_memory, inlined).
        outcome = self._hierarchy_access(core_id, addr, is_write)
        stats.memory_accesses += 1
        if outcome.llc_miss:
            self.llc_misses += 1
            mapping = self._mapping
            mapping.cached = entry.cached
            mapping.way = entry.way
            request = self._demand_request
            request.addr = addr
            request.is_write = is_write
            request.core_id = core_id
            result = self._controllers_access(int(core.clock), request)
            stall = core._l3_hit_latency + result.latency / core.mlp
        else:
            level = outcome.level
            if level == "l1":
                stall = core._l1_stall
            elif level == "l2":
                stall = core._l2_stall
            else:
                stall = core._l3_stall
        core.clock += stall
        stats.memory_stall_cycles += stall
        if self._obs_latency_hook is not None:
            self._obs_latency_hook(stall)

        if outcome.writebacks:
            wb_request = self._wb_request
            wb_request.core_id = core_id
            now = int(core.clock)
            for writeback in outcome.writebacks:
                self.llc_writebacks += 1
                wb_request.addr = writeback.addr
                self._controllers_access(now, wb_request)
        if self._notify_cycle is not None:
            self._notify_cycle(int(core.clock))
        if self._obs_watch_hook is not None:
            self._obs_watch_hook(core_id, addr, is_write, outcome)
        return core.clock

    def _translate(self, core_id: int, addr: int, core: CoreModel) -> MappingInfo:
        """TLB lookup (with page-walk cost on a miss); returns the carried mapping."""
        tlb = self.tlbs[core_id]
        vpn = addr // self.page_size
        entry = tlb.lookup(vpn)
        if entry is None:
            pte = self.page_table.translate(addr)
            entry = tlb.fill(pte)
            core.clock += self.config.tlb.page_walk_cycles
        return MappingInfo(cached=entry.cached, way=entry.way)

    # ------------------------------------------------------------------ results

    def finalize(self) -> None:
        """End-of-run hook (flush outstanding Banshee remaps, etc.)."""
        now = int(max(core.clock for core in self.cores))
        self.scheme.finalize(now)

    def begin_measurement(self) -> None:
        """Snapshot all counters so results cover only the post-warmup phase.

        Warmup lets the DRAM-cache contents reach (an approximation of) steady
        state before measurement, which matters most for Banshee: its
        frequency-based policy intentionally caches pages slowly, so a cold
        start under-reports its hit rate relative to the paper's 100-billion-
        instruction runs.

        Every counter that :meth:`collect_results` reports is snapshotted
        here — including ``scheme_stats`` and ``hierarchy_stats`` — so all
        reported statistics are consistently post-warmup deltas.
        """
        self._baseline = {
            "instructions": sum(core.stats.instructions for core in self.cores),
            "accesses": sum(core.stats.memory_accesses for core in self.cores),
            "cycles": max((core.clock for core in self.cores), default=0.0),
            "per_core_cycles": [core.clock for core in self.cores],
            "hits": self.scheme.stats.get("dram_cache_hits"),
            "misses": self.scheme.stats.get("dram_cache_misses"),
            "llc_misses": self.llc_misses,
            "llc_writebacks": self.llc_writebacks,
            "tlb_misses": sum(tlb.misses for tlb in self.tlbs),
            "in_traffic": dict(self.in_dram.traffic.breakdown()),
            "off_traffic": dict(self.off_dram.traffic.breakdown()),
            "os_stall": sum(core.stats.os_stall_cycles for core in self.cores),
            "scheme_stats": self.scheme.stats.as_dict(),
            "hierarchy_stats": self.hierarchy.stats(),
        }

    def collect_results(self, wall_time_seconds: float = 0.0) -> SimulationResults:
        """Assemble a :class:`SimulationResults` snapshot (post-warmup deltas)."""
        base = self._baseline or {
            "instructions": 0,
            "accesses": 0,
            "cycles": 0.0,
            "per_core_cycles": [0.0] * self.config.num_cores,
            "hits": 0,
            "misses": 0,
            "llc_misses": 0,
            "llc_writebacks": 0,
            "tlb_misses": 0,
            "in_traffic": {},
            "off_traffic": {},
            "os_stall": 0.0,
            "scheme_stats": {},
            "hierarchy_stats": {},
        }
        instructions = sum(core.stats.instructions for core in self.cores) - base["instructions"]
        accesses = sum(core.stats.memory_accesses for core in self.cores) - base["accesses"]
        cycles = max((core.clock for core in self.cores), default=0.0) - base["cycles"]
        in_traffic = {
            key: value - base["in_traffic"].get(key, 0)
            for key, value in self.in_dram.traffic.breakdown().items()
        }
        off_traffic = {
            key: value - base["off_traffic"].get(key, 0)
            for key, value in self.off_dram.traffic.breakdown().items()
        }
        return SimulationResults(
            workload=self.workload.name,
            scheme=self.scheme.name,
            num_cores=self.config.num_cores,
            instructions=instructions,
            memory_accesses=accesses,
            cycles=cycles,
            per_core_cycles=[
                core.clock - prev for core, prev in zip(self.cores, base["per_core_cycles"])
            ],
            dram_cache_hits=int(self.scheme.stats.get("dram_cache_hits") - base["hits"]),
            dram_cache_misses=int(self.scheme.stats.get("dram_cache_misses") - base["misses"]),
            llc_misses=self.llc_misses - base["llc_misses"],
            llc_writebacks=self.llc_writebacks - base["llc_writebacks"],
            tlb_misses=sum(tlb.misses for tlb in self.tlbs) - base["tlb_misses"],
            in_traffic_bytes=in_traffic,
            off_traffic_bytes=off_traffic,
            scheme_stats={
                key: value - base["scheme_stats"].get(key, 0)
                for key, value in self.scheme.stats.as_dict().items()
            },
            hierarchy_stats={
                key: value - base["hierarchy_stats"].get(key, 0)
                for key, value in self.hierarchy.stats().items()
            },
            os_stall_cycles=sum(core.stats.os_stall_cycles for core in self.cores) - base["os_stall"],
            wall_time_seconds=wall_time_seconds,
        )
