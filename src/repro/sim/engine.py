"""The simulation engine.

The engine drives one :class:`repro.sim.system.System` with the per-core
trace streams of a workload.  Cores are interleaved in global time order:
the core with the smallest local clock always executes its next trace record
first.  This is what makes DRAM channel contention meaningful — a core that
is stalled on a congested channel falls behind, and the other cores' requests
arrive at the channels in front of its next one.

Three engine modes drive that identical interleaving:

* ``"scalar"`` — the reference loop: one record object at a time through an
  iterator and a heap (heap-free when there is only one core).
* ``"batch"`` (default) — column batches and run-length scheduling
  (:mod:`repro.sim.batch`): whole runs of the minimum-clock core execute
  without heap traffic, and TLB+L1 hits take an inlined fast path.
* ``"numpy"`` — the batch engine plus the vectorized front-end filter
  (:mod:`repro.sim.vector`), which classifies runs in bulk against flat
  TLB/L1 mirrors.  Requires numpy (``pip install repro[fast]``).

All modes are bit-identical: same record order, same arithmetic, same
results (the hot-path golden tests pin this for every scheme).
"""

from __future__ import annotations

import heapq
import time
from itertools import islice
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.sim.batch import BatchRunner, EngineCursor, RunController, _controller_stop
from repro.sim.results import SimulationResults
from repro.sim.system import System

if TYPE_CHECKING:
    from repro.obs.events import EventLog
    from repro.obs.snapshot import EngineSnapshot
    from repro.obs.timeline import TimelineObserver

__all__ = [
    "DEFAULT_ENGINE_MODE",
    "ENGINE_MODES",
    "EngineCursor",
    "RunController",
    "SimulationEngine",
]

#: Engine modes accepted by :class:`SimulationEngine`.
ENGINE_MODES = ("scalar", "batch", "numpy")

#: Mode used when none is requested.
DEFAULT_ENGINE_MODE = "batch"


def _edge_single(
    controller: RunController,
    system: System,
    processed: int,
    consumed0: int,
    measurement_started: bool,
) -> bool:
    """Fire a controller edge from the single-core scalar loop."""
    cursor = EngineCursor(system, processed, [consumed0], measurement_started)
    return bool(controller.on_edge(cursor))


def _edge_from_remaining(
    controller: RunController,
    system: System,
    processed: int,
    max_records: int,
    remaining: List[int],
    shortfall: List[int],
    measurement_started: bool,
) -> bool:
    """Fire a controller edge from the multi-core scalar loop.

    Consumed counts are derived on demand so the per-record path never
    maintains them: ``consumed = max - remaining - shortfall``, where
    ``shortfall`` is the unconsumed remainder of a stream that exhausted
    early (the only case where ``remaining`` over-counts consumption).
    """
    consumed = [
        max_records - remaining[core_id] - shortfall[core_id]
        for core_id in range(len(remaining))
    ]
    cursor = EngineCursor(system, processed, consumed, measurement_started)
    return bool(controller.on_edge(cursor))


class SimulationEngine:
    """Trace-driven multicore simulation loop."""

    def __init__(self, system: System, mode: Optional[str] = None) -> None:
        if mode is None:
            mode = DEFAULT_ENGINE_MODE
        if mode not in ENGINE_MODES:
            raise ValueError(f"unknown engine mode {mode!r}; choose one of {ENGINE_MODES}")
        self.system = system
        self.mode = mode
        #: Records processed by the most recent :meth:`run` (reset per run).
        #: After a :meth:`restore`, this includes the restored prefix — it is
        #: the run-level count, matching what the uninterrupted run reports.
        self.records_processed = 0
        #: Records processed across every :meth:`run` on this engine.
        self.total_records_processed = 0
        # Progress loaded by restore(); consumed by the next run().
        self._resume: Optional[Dict[str, Any]] = None

    def restore(self, snapshot: "EngineSnapshot") -> None:
        """Load ``snapshot`` into the system; the next :meth:`run` resumes it.

        The snapshot must have been captured under the same configuration
        (validated by config hash) and the engine's workload must match the
        one the snapshot was taken from.  The next ``run()`` call — with the
        same ``max_records_per_core``/warmup/budget arguments as the
        original — fast-forwards each core's stream by the snapshot's
        consumed counts and continues bit-identically to the uninterrupted
        run, in every engine mode.
        """
        snapshot.restore_into(self.system)
        progress = snapshot.progress
        consumed = [int(count) for count in progress["consumed_per_core"]]
        num_cores = self.system.config.num_cores
        if len(consumed) != num_cores:
            raise ValueError(
                f"snapshot covers {len(consumed)} cores, system has {num_cores}"
            )
        self._resume = {
            "processed": int(progress["processed"]),
            "consumed_per_core": consumed,
            "measurement_started": bool(progress["measurement_started"]),
        }

    def run(
        self,
        max_records_per_core: int,
        max_total_records: Optional[int] = None,
        warmup_records_per_core: int = 0,
        observer: Optional["TimelineObserver"] = None,
        events: Optional["EventLog"] = None,
        controller: Optional[RunController] = None,
    ) -> SimulationResults:
        """Run the simulation and return its results.

        Args:
            max_records_per_core: trace records to execute on each core
                (including warmup).  All schemes compared on a workload must
                use the same value so their instruction counts match.
            max_total_records: optional global cap (safety valve for tests).
            warmup_records_per_core: records per core executed before the
                measurement window starts; statistics are reported for the
                post-warmup portion only.
            observer: optional :class:`~repro.obs.timeline.TimelineObserver`;
                when given, windowed metric deltas are snapshotted every
                ``observer.interval`` records (with a boundary forced at the
                warmup edge) and the resulting timeline is attached to
                ``results.timeline``.  Detached, the hot loop pays a single
                boolean check per record and results are bit-identical.
            events: optional :class:`~repro.obs.events.EventLog`; run
                start/end and the warmup boundary are emitted as structured
                events (never from inside the per-record loop).
            controller: optional :class:`~repro.sim.batch.RunController`;
                the run is cut at the controller's requested processed
                counts and ``on_edge`` fires there with an
                :class:`~repro.sim.batch.EngineCursor` (pause, snapshot,
                watch-flush, early stop).  Detached, the loops pay one
                boolean check.
        """
        if max_records_per_core <= 0:
            raise ValueError("max_records_per_core must be positive")
        if not 0 <= warmup_records_per_core < max_records_per_core:
            raise ValueError(
                f"warmup_records_per_core must be in [0, max_records_per_core), "
                f"got {warmup_records_per_core} with max_records_per_core={max_records_per_core}"
            )
        # Wall time is reported, never simulated: it feeds the results'
        # wall_time_seconds diagnostic only.  # repro: allow[determinism]
        start_time = time.perf_counter()
        system = self.system
        workload = system.workload
        available = workload.max_records_per_core
        if available is not None and max_records_per_core > available:
            raise ValueError(
                f"workload {workload.name!r} holds only {available} records per core, "
                f"{max_records_per_core} requested; shorten the run or capture a "
                "longer trace"
            )
        num_cores = system.config.num_cores
        if events is not None:
            events.emit(
                "run_start",
                workload=workload.name,
                scheme=system.scheme.name,
                num_cores=num_cores,
                records_per_core=max_records_per_core,
                warmup_records_per_core=warmup_records_per_core,
            )

        measurement_started = warmup_records_per_core <= 0
        warmup_threshold = num_cores * warmup_records_per_core
        total_budget = max_total_records if max_total_records is not None else float("inf")

        # Resume state loaded by restore(): the run continues from the
        # snapshot's processed counts (with the same run arguments as the
        # original run, for bit-identity).
        resume = self._resume
        self._resume = None
        start_record = 0
        if resume is not None:
            measurement_started = bool(resume["measurement_started"])
            start_record = int(resume["processed"])
            for core_id, count in enumerate(resume["consumed_per_core"]):
                if count > max_records_per_core:
                    raise ValueError(
                        f"snapshot consumed {count} records on core {core_id}, "
                        f"beyond max_records_per_core={max_records_per_core}"
                    )

        # The per-run counter must start at zero: a reused engine otherwise
        # trips the warmup threshold immediately and burns the whole
        # ``max_total_records`` budget before processing a single record.
        # The cumulative count lives in ``total_records_processed``.
        self.records_processed = 0

        observing = observer is not None
        if observer is not None:
            observer.begin(
                system, warmup=not measurement_started, start_record=start_record
            )

        if self.mode == "scalar":
            processed = self._run_scalar(
                max_records_per_core, total_budget, warmup_threshold,
                measurement_started, observer, events, controller, resume,
            )
        else:
            runner = BatchRunner(system, vectorize=self.mode == "numpy")
            try:
                processed = runner.run(
                    max_records_per_core, total_budget, warmup_threshold,
                    measurement_started, observer, events, controller, resume,
                )
            finally:
                runner.detach()

        self.records_processed = processed
        self.total_records_processed += processed
        if observer is not None:
            observer.finish(processed)
        system.finalize()
        elapsed = time.perf_counter() - start_time  # repro: allow[determinism]
        results = system.collect_results(wall_time_seconds=elapsed)
        if observing and observer is not None:
            results.timeline = observer.timeline.to_dict()
        if events is not None:
            events.emit(
                "run_end",
                workload=workload.name,
                scheme=system.scheme.name,
                records=processed,
                wall_seconds=round(elapsed, 6),
            )
        return results

    def _run_scalar(
        self,
        max_records_per_core: int,
        total_budget: float,
        warmup_threshold: int,
        measurement_started: bool,
        observer: Optional["TimelineObserver"],
        events: Optional["EventLog"],
        controller: Optional[RunController] = None,
        resume: Optional[Dict[str, Any]] = None,
    ) -> int:
        """The reference per-record loop; returns the records processed."""
        system = self.system
        workload = system.workload
        num_cores = system.config.num_cores
        processed = int(resume["processed"]) if resume is not None else 0

        # Observer state: ``observing`` is the single boolean the disabled
        # path pays per record; window boundaries are plain int compares.
        observing = observer is not None
        next_window = processed + observer.interval if observer is not None else 0
        controlling = controller is not None
        ctrl_next = (
            _controller_stop(controller, processed)
            if controller is not None
            else float("inf")
        )

        # Hot loop: everything it touches per record is a local.
        process_cols = system.process_record_cols

        if num_cores == 1:
            # Single-core fast path: with one core there is nothing to
            # interleave, so the heap (and its per-record tuple allocation)
            # is pure overhead.  The processing order is trivially identical.
            iterator = workload.trace(0)
            remaining0 = max_records_per_core
            if resume is not None:
                remaining0 -= self._skip(iterator, 0, resume["consumed_per_core"][0])
            while remaining0 > 0 and processed < total_budget:  # repro: hotpath
                try:
                    gap, addr, is_write = next(iterator)
                except StopIteration:
                    break
                process_cols(0, gap, addr, is_write)
                remaining0 -= 1
                processed += 1
                if not measurement_started and processed >= warmup_threshold:
                    system.begin_measurement()
                    measurement_started = True
                    if observer is not None:
                        observer.start_measurement(processed)
                        next_window = processed + observer.interval
                    if events is not None:
                        events.emit("warmup_end", records=processed)
                if observing and processed >= next_window and observer is not None:
                    observer.snapshot(processed)
                    next_window = processed + observer.interval
                if controlling and processed >= ctrl_next and controller is not None:
                    stop_run = _edge_single(
                        controller, system, processed,
                        max_records_per_core - remaining0, measurement_started,
                    )
                    ctrl_next = _controller_stop(controller, processed)
                    if stop_run:
                        break
            if controller is not None:
                controller.on_finish(EngineCursor(
                    system, processed, [max_records_per_core - remaining0],
                    measurement_started,
                ))
            return processed

        iterators = [workload.trace(core_id) for core_id in range(num_cores)]
        remaining = [max_records_per_core] * num_cores
        # Unconsumed remainder of streams that exhausted early — the one
        # case where ``remaining`` over-counts a core's consumption (see
        # _edge_from_remaining); only ever touched on the exhaustion path.
        shortfall = [0] * num_cores
        if resume is None:
            heap = [(0.0, core_id) for core_id in range(num_cores)]
        else:
            # Resumed heap keys mirror the straight run's invariant: 0.0
            # before a core's first record, its clock afterwards.
            heap = []
            for core_id in range(num_cores):
                count = self._skip(
                    iterators[core_id], core_id, resume["consumed_per_core"][core_id]
                )
                remaining[core_id] -= count
                if remaining[core_id] > 0:
                    key = system.cores[core_id].clock if count > 0 else 0.0
                    heap.append((key, core_id))
        heapq.heapify(heap)
        heappush = heapq.heappush
        heappop = heapq.heappop
        while heap and processed < total_budget:  # repro: hotpath
            _clock, core_id = heappop(heap)
            if remaining[core_id] <= 0:
                continue
            try:
                gap, addr, is_write = next(iterators[core_id])
            except StopIteration:
                shortfall[core_id] = remaining[core_id]
                remaining[core_id] = 0
                continue
            new_clock = process_cols(core_id, gap, addr, is_write)
            remaining[core_id] -= 1
            processed += 1
            if not measurement_started and processed >= warmup_threshold:
                system.begin_measurement()
                measurement_started = True
                if observer is not None:
                    # Force a window boundary exactly at the warmup edge so
                    # the first measured window starts at begin_measurement.
                    observer.start_measurement(processed)
                    next_window = processed + observer.interval
                if events is not None:
                    events.emit("warmup_end", records=processed)
            if observing and processed >= next_window and observer is not None:
                observer.snapshot(processed)
                next_window = processed + observer.interval
            if remaining[core_id] > 0:
                # heapq's API requires a fresh (clock, core) entry; this is
                # the loop's one deliberate per-record allocation.
                heappush(heap, (new_clock, core_id))  # repro: allow[hotpath-alloc]
            if controlling and processed >= ctrl_next and controller is not None:
                stop_run = _edge_from_remaining(
                    controller, system, processed, max_records_per_core,
                    remaining, shortfall, measurement_started,
                )
                ctrl_next = _controller_stop(controller, processed)
                if stop_run:
                    break
        if controller is not None:
            consumed = [
                max_records_per_core - remaining[core_id] - shortfall[core_id]
                for core_id in range(num_cores)
            ]
            controller.on_finish(
                EngineCursor(system, processed, consumed, measurement_started)
            )
        return processed

    @staticmethod
    def _skip(iterator: Any, core_id: int, count: int) -> int:
        """Fast-forward a resumed core's stream by its consumed count."""
        count = int(count)
        skipped = sum(1 for _ in islice(iterator, count))
        if skipped != count:
            raise ValueError(
                f"cannot resume: core {core_id} stream holds {skipped} records, "
                f"snapshot consumed {count}; the workload does not match the snapshot"
            )
        return count
