"""The simulation engine.

The engine drives one :class:`repro.sim.system.System` with the per-core
trace streams of a workload.  Cores are interleaved in global time order:
the core with the smallest local clock always executes its next trace record
first.  This is what makes DRAM channel contention meaningful — a core that
is stalled on a congested channel falls behind, and the other cores' requests
arrive at the channels in front of its next one.
"""

from __future__ import annotations

import heapq
import time
from typing import Optional

from repro.sim.results import SimulationResults
from repro.sim.system import System


class SimulationEngine:
    """Trace-driven multicore simulation loop."""

    def __init__(self, system: System) -> None:
        self.system = system
        #: Records processed by the most recent :meth:`run` (reset per run).
        self.records_processed = 0
        #: Records processed across every :meth:`run` on this engine.
        self.total_records_processed = 0

    def run(
        self,
        max_records_per_core: int,
        max_total_records: Optional[int] = None,
        warmup_records_per_core: int = 0,
    ) -> SimulationResults:
        """Run the simulation and return its results.

        Args:
            max_records_per_core: trace records to execute on each core
                (including warmup).  All schemes compared on a workload must
                use the same value so their instruction counts match.
            max_total_records: optional global cap (safety valve for tests).
            warmup_records_per_core: records per core executed before the
                measurement window starts; statistics are reported for the
                post-warmup portion only.
        """
        if max_records_per_core <= 0:
            raise ValueError("max_records_per_core must be positive")
        if not 0 <= warmup_records_per_core < max_records_per_core:
            raise ValueError(
                f"warmup_records_per_core must be in [0, max_records_per_core), "
                f"got {warmup_records_per_core} with max_records_per_core={max_records_per_core}"
            )
        start_time = time.perf_counter()
        system = self.system
        workload = system.workload
        available = workload.max_records_per_core
        if available is not None and max_records_per_core > available:
            raise ValueError(
                f"workload {workload.name!r} holds only {available} records per core, "
                f"{max_records_per_core} requested; shorten the run or capture a "
                "longer trace"
            )
        num_cores = system.config.num_cores

        iterators = [workload.trace(core_id) for core_id in range(num_cores)]
        remaining = [max_records_per_core] * num_cores
        heap = [(0.0, core_id) for core_id in range(num_cores)]
        heapq.heapify(heap)

        measurement_started = warmup_records_per_core <= 0
        warmup_threshold = num_cores * warmup_records_per_core
        total_budget = max_total_records if max_total_records is not None else float("inf")

        # The per-run counter must start at zero: a reused engine otherwise
        # trips the warmup threshold immediately and burns the whole
        # ``max_total_records`` budget before processing a single record.
        # The cumulative count lives in ``total_records_processed``.
        self.records_processed = 0
        processed = 0

        # Hot loop: everything it touches per record is a local.
        process_record = system.process_record
        heappush = heapq.heappush
        heappop = heapq.heappop
        while heap and processed < total_budget:
            _clock, core_id = heappop(heap)
            if remaining[core_id] <= 0:
                continue
            try:
                record = next(iterators[core_id])
            except StopIteration:
                remaining[core_id] = 0
                continue
            new_clock = process_record(core_id, record)
            remaining[core_id] -= 1
            processed += 1
            if not measurement_started and processed >= warmup_threshold:
                system.begin_measurement()
                measurement_started = True
            if remaining[core_id] > 0:
                heappush(heap, (new_clock, core_id))

        self.records_processed = processed
        self.total_records_processed += processed
        system.finalize()
        elapsed = time.perf_counter() - start_time
        return system.collect_results(wall_time_seconds=elapsed)
