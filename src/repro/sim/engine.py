"""The simulation engine.

The engine drives one :class:`repro.sim.system.System` with the per-core
trace streams of a workload.  Cores are interleaved in global time order:
the core with the smallest local clock always executes its next trace record
first.  This is what makes DRAM channel contention meaningful — a core that
is stalled on a congested channel falls behind, and the other cores' requests
arrive at the channels in front of its next one.
"""

from __future__ import annotations

import heapq
import time
from typing import TYPE_CHECKING, Optional

from repro.sim.results import SimulationResults
from repro.sim.system import System

if TYPE_CHECKING:
    from repro.obs.events import EventLog
    from repro.obs.timeline import TimelineObserver


class SimulationEngine:
    """Trace-driven multicore simulation loop."""

    def __init__(self, system: System) -> None:
        self.system = system
        #: Records processed by the most recent :meth:`run` (reset per run).
        self.records_processed = 0
        #: Records processed across every :meth:`run` on this engine.
        self.total_records_processed = 0

    def run(
        self,
        max_records_per_core: int,
        max_total_records: Optional[int] = None,
        warmup_records_per_core: int = 0,
        observer: Optional["TimelineObserver"] = None,
        events: Optional["EventLog"] = None,
    ) -> SimulationResults:
        """Run the simulation and return its results.

        Args:
            max_records_per_core: trace records to execute on each core
                (including warmup).  All schemes compared on a workload must
                use the same value so their instruction counts match.
            max_total_records: optional global cap (safety valve for tests).
            warmup_records_per_core: records per core executed before the
                measurement window starts; statistics are reported for the
                post-warmup portion only.
            observer: optional :class:`~repro.obs.timeline.TimelineObserver`;
                when given, windowed metric deltas are snapshotted every
                ``observer.interval`` records (with a boundary forced at the
                warmup edge) and the resulting timeline is attached to
                ``results.timeline``.  Detached, the hot loop pays a single
                boolean check per record and results are bit-identical.
            events: optional :class:`~repro.obs.events.EventLog`; run
                start/end and the warmup boundary are emitted as structured
                events (never from inside the per-record loop).
        """
        if max_records_per_core <= 0:
            raise ValueError("max_records_per_core must be positive")
        if not 0 <= warmup_records_per_core < max_records_per_core:
            raise ValueError(
                f"warmup_records_per_core must be in [0, max_records_per_core), "
                f"got {warmup_records_per_core} with max_records_per_core={max_records_per_core}"
            )
        # Wall time is reported, never simulated: it feeds the results'
        # wall_time_seconds diagnostic only.  # repro: allow[determinism]
        start_time = time.perf_counter()
        system = self.system
        workload = system.workload
        available = workload.max_records_per_core
        if available is not None and max_records_per_core > available:
            raise ValueError(
                f"workload {workload.name!r} holds only {available} records per core, "
                f"{max_records_per_core} requested; shorten the run or capture a "
                "longer trace"
            )
        num_cores = system.config.num_cores
        if events is not None:
            events.emit(
                "run_start",
                workload=workload.name,
                scheme=system.scheme.name,
                num_cores=num_cores,
                records_per_core=max_records_per_core,
                warmup_records_per_core=warmup_records_per_core,
            )

        iterators = [workload.trace(core_id) for core_id in range(num_cores)]
        remaining = [max_records_per_core] * num_cores
        heap = [(0.0, core_id) for core_id in range(num_cores)]
        heapq.heapify(heap)

        measurement_started = warmup_records_per_core <= 0
        warmup_threshold = num_cores * warmup_records_per_core
        total_budget = max_total_records if max_total_records is not None else float("inf")

        # The per-run counter must start at zero: a reused engine otherwise
        # trips the warmup threshold immediately and burns the whole
        # ``max_total_records`` budget before processing a single record.
        # The cumulative count lives in ``total_records_processed``.
        self.records_processed = 0
        processed = 0

        # Observer state: ``observing`` is the single boolean the disabled
        # path pays per record; window boundaries are plain int compares.
        observing = observer is not None
        next_window = 0
        if observing:
            observer.begin(system, warmup=not measurement_started)
            next_window = observer.interval

        # Hot loop: everything it touches per record is a local.
        process_record = system.process_record
        heappush = heapq.heappush
        heappop = heapq.heappop
        while heap and processed < total_budget:  # repro: hotpath
            _clock, core_id = heappop(heap)
            if remaining[core_id] <= 0:
                continue
            try:
                record = next(iterators[core_id])
            except StopIteration:
                remaining[core_id] = 0
                continue
            new_clock = process_record(core_id, record)
            remaining[core_id] -= 1
            processed += 1
            if not measurement_started and processed >= warmup_threshold:
                system.begin_measurement()
                measurement_started = True
                if observing:
                    # Force a window boundary exactly at the warmup edge so
                    # the first measured window starts at begin_measurement.
                    observer.start_measurement(processed)
                    next_window = processed + observer.interval
                if events is not None:
                    events.emit("warmup_end", records=processed)
            if observing and processed >= next_window:
                observer.snapshot(processed)
                next_window = processed + observer.interval
            if remaining[core_id] > 0:
                # heapq's API requires a fresh (clock, core) entry; this is
                # the loop's one deliberate per-record allocation.
                heappush(heap, (new_clock, core_id))  # repro: allow[hotpath-alloc]

        self.records_processed = processed
        self.total_records_processed += processed
        if observing:
            observer.finish(processed)
        system.finalize()
        elapsed = time.perf_counter() - start_time  # repro: allow[determinism]
        results = system.collect_results(wall_time_seconds=elapsed)
        if observing:
            results.timeline = observer.timeline.to_dict()
        if events is not None:
            events.emit(
                "run_end",
                workload=workload.name,
                scheme=system.scheme.name,
                records=processed,
                wall_seconds=round(elapsed, 6),
            )
        return results
