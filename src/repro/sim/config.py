"""Configuration dataclasses for the simulated system.

The configuration tree mirrors Table 2 and Table 3 of the Banshee paper.
Two presets are provided:

* :meth:`SystemConfig.paper_default` — the parameters of Table 2 / Table 3
  (16 cores, 1 GB in-package DRAM, 8 MB LLC, ...).  Running at this scale in
  a pure-Python simulator is possible but slow; it is provided for fidelity.
* :meth:`SystemConfig.scaled_default` — a proportionally scaled-down system
  (see DESIGN.md §2) used by the test suite and the benchmark harness.

Every dataclass validates itself in ``__post_init__`` so that a bad
configuration fails loudly at construction time rather than mid-simulation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.util.bits import is_power_of_two
from repro.util.units import GB, KB, MB

CACHELINE_SIZE = 64
PAGE_SIZE_4K = 4 * KB
PAGE_SIZE_2M = 2 * MB


@dataclass
class DramTimingConfig:
    """DDR-style timing for one DRAM technology (Table 2).

    Attributes:
        bus_mhz: I/O bus frequency in MHz (data is transferred on both edges).
        bus_width_bits: channel width in bits.
        tcas, trcd, trp, tras: timing parameters in DRAM bus cycles.
        min_transfer_bytes: minimum data transfer granularity (32 B for HBM).
    """

    bus_mhz: float = 667.0
    bus_width_bits: int = 128
    tcas: int = 10
    trcd: int = 10
    trp: int = 10
    tras: int = 24
    min_transfer_bytes: int = 32

    def __post_init__(self) -> None:
        if self.bus_mhz <= 0:
            raise ValueError(f"bus_mhz must be positive, got {self.bus_mhz}")
        if self.bus_width_bits % 8 != 0 or self.bus_width_bits <= 0:
            raise ValueError(f"bus_width_bits must be a positive multiple of 8, got {self.bus_width_bits}")
        for name in ("tcas", "trcd", "trp", "tras"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.min_transfer_bytes <= 0:
            raise ValueError("min_transfer_bytes must be positive")

    @property
    def bus_bytes_per_transfer(self) -> int:
        """Bytes moved per DDR transfer (both edges of one bus cycle move 2x width)."""
        return self.bus_width_bits // 8

    @property
    def peak_bandwidth_gb_per_s(self) -> float:
        """Peak channel bandwidth in GB/s (DDR: two transfers per bus cycle)."""
        transfers_per_s = self.bus_mhz * 1e6 * 2.0
        return transfers_per_s * (self.bus_width_bits / 8.0) / 1e9


@dataclass
class DramConfig:
    """One DRAM device (in-package or off-package)."""

    name: str
    capacity_bytes: int
    num_channels: int
    timing: DramTimingConfig = field(default_factory=DramTimingConfig)
    latency_scale: float = 1.0
    bandwidth_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("DRAM device needs a name")
        if self.capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {self.capacity_bytes}")
        if self.num_channels <= 0:
            raise ValueError(f"num_channels must be positive, got {self.num_channels}")
        if self.latency_scale <= 0 or self.bandwidth_scale <= 0:
            raise ValueError("latency_scale and bandwidth_scale must be positive")

    @property
    def peak_bandwidth_gb_per_s(self) -> float:
        """Aggregate peak bandwidth across channels, after scaling."""
        return self.timing.peak_bandwidth_gb_per_s * self.num_channels * self.bandwidth_scale


@dataclass
class CacheLevelConfig:
    """One SRAM cache level."""

    size_bytes: int
    ways: int
    line_size: int = CACHELINE_SIZE
    hit_latency: int = 4
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.ways <= 0:
            raise ValueError("cache ways must be positive")
        if not is_power_of_two(self.line_size):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")
        if self.size_bytes % (self.ways * self.line_size) != 0:
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by ways*line ({self.ways}*{self.line_size})"
            )
        num_sets = self.size_bytes // (self.ways * self.line_size)
        if not is_power_of_two(num_sets):
            raise ValueError(f"number of sets must be a power of two, got {num_sets}")
        if self.replacement not in ("lru", "fifo", "random"):
            raise ValueError(f"unknown replacement policy {self.replacement!r}")

    @property
    def num_sets(self) -> int:
        """Number of sets in this cache."""
        return self.size_bytes // (self.ways * self.line_size)


@dataclass
class TlbConfig:
    """Per-core TLB parameters."""

    entries: int = 64
    page_walk_cycles: int = 100

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("TLB must have at least one entry")
        if self.page_walk_cycles < 0:
            raise ValueError("page_walk_cycles must be non-negative")


@dataclass
class CoreConfig:
    """Analytic core timing model parameters."""

    freq_ghz: float = 2.7
    issue_width: int = 4
    mlp: float = 4.0
    l1_hit_latency: int = 1
    l2_hit_latency: int = 10
    l3_hit_latency: int = 30

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ValueError("core frequency must be positive")
        if self.issue_width <= 0:
            raise ValueError("issue_width must be positive")
        if self.mlp < 1.0:
            raise ValueError("mlp must be >= 1")


@dataclass
class DramCacheConfig:
    """DRAM-cache scheme selection and parameters (Table 3).

    ``scheme`` may name a base scheme or a registered variant
    (:mod:`repro.dramcache.variants`).  Variant resolution happens *here*,
    at construction time: the variant's field overrides are folded into
    this dataclass and the resolved base is recorded in ``base_scheme``,
    so every consumer of the configuration — workload builders, page
    tables, cell keys, result metadata — sees the values the scheme will
    actually simulate with.  ``base_scheme`` also makes a resolved config
    self-contained: a worker process (or a later session) can build the
    scheme without the registering process's runtime registry.
    """

    scheme: str = "banshee"
    #: Resolved by __post_init__; leave at the default when constructing.
    base_scheme: str = ""
    #: Field values a preset supplied (see :func:`preset_dram_cache`).  A
    #: variant may fold over these silently (they are baselines, not user
    #: intent), and ``with_scheme`` restores them when a variant's delta is
    #: reverted.  Leave at the default when constructing directly.
    preset_defaults: Dict[str, object] = field(default_factory=dict)
    ways: int = 4
    page_size: int = PAGE_SIZE_4K

    # Banshee tag buffer / lazy TLB coherence.
    tag_buffer_entries: int = 1024
    tag_buffer_ways: int = 8
    tag_buffer_flush_threshold: float = 0.7
    tag_buffer_flush_cost_us: float = 20.0
    tlb_shootdown_initiator_us: float = 4.0
    tlb_shootdown_slave_us: float = 1.0

    # Banshee frequency-based replacement.
    counter_bits: int = 5
    sampling_coefficient: float = 0.1
    num_candidates: int = 5
    replacement_threshold: Optional[int] = None

    # Banshee policy ablations (Figure 7).
    banshee_policy: str = "fbr-sample"

    # Large-page support (Section 5.4.1).
    large_page_size: int = PAGE_SIZE_2M
    large_page_sampling_coefficient: float = 0.001
    large_page_fraction: float = 0.0

    # Alloy / BEAR (Section 5.1.1).
    alloy_replacement_probability: float = 1.0

    # Unison / TDC footprint prediction.
    footprint_granularity_lines: int = 4

    # HMA (software-managed) parameters.
    hma_interval_ms: float = 100.0
    hma_remap_cost_us: float = 100.0

    # Bandwidth balancing extension (Section 5.4.2, BATMAN).
    bandwidth_balance: bool = False
    bandwidth_balance_target: float = 0.8

    def __post_init__(self) -> None:
        # Imported here, not at module level: the variant registry lives in
        # repro.dramcache (which imports this module).  Resolving against
        # the registry is what lets a declared variant name ("banshee-tb4k")
        # flow through every layer that carries a SystemConfig.
        from repro.dramcache.variants import BASE_SCHEMES, resolve_scheme

        try:
            base, overrides = resolve_scheme(self.scheme)
        except ValueError:
            # A runtime-registered variant resolved in another process
            # (campaign worker, store resume) is acceptable: the overrides
            # were folded into the field values when the config was first
            # built, and base_scheme says what to construct.
            if self.base_scheme not in BASE_SCHEMES:
                raise
        else:
            defaults = {f.name: f.default for f in dataclasses.fields(self)}
            for key, value in overrides.items():
                current = getattr(self, key)
                if (
                    current != value
                    and current != defaults[key]
                    and current != self.preset_defaults.get(key, defaults[key])
                ):
                    # The caller explicitly set a field the variant also
                    # sets (it is neither the dataclass default nor a preset
                    # baseline): reject rather than silently resolve.
                    raise ValueError(
                        f"{key}={current!r} conflicts with variant {self.scheme!r} "
                        f"(it sets {key}={value!r}); use base scheme {base!r} "
                        f"with explicit overrides instead"
                    )
                setattr(self, key, value)
            self.base_scheme = base
        if self.ways <= 0:
            raise ValueError("DRAM cache ways must be positive")
        if not is_power_of_two(self.page_size):
            raise ValueError("page_size must be a power of two")
        if not 0.0 < self.tag_buffer_flush_threshold <= 1.0:
            raise ValueError("tag_buffer_flush_threshold must be in (0, 1]")
        if self.counter_bits <= 0 or self.counter_bits > 16:
            raise ValueError("counter_bits must be in [1, 16]")
        if not 0.0 < self.sampling_coefficient <= 1.0:
            raise ValueError("sampling_coefficient must be in (0, 1]")
        if self.num_candidates < 0:
            raise ValueError("num_candidates must be non-negative")
        if self.banshee_policy not in ("fbr-sample", "fbr-nosample", "lru"):
            raise ValueError(f"unknown banshee_policy {self.banshee_policy!r}")
        if not 0.0 <= self.alloy_replacement_probability <= 1.0:
            raise ValueError("alloy_replacement_probability must be in [0, 1]")
        if self.footprint_granularity_lines <= 0:
            raise ValueError("footprint_granularity_lines must be positive")
        if not 0.0 <= self.large_page_fraction <= 1.0:
            raise ValueError("large_page_fraction must be in [0, 1]")

    @property
    def counter_max(self) -> int:
        """Largest value a frequency counter can hold."""
        return (1 << self.counter_bits) - 1

    def effective_threshold(self, page_size: int, sampling_coefficient: float) -> int:
        """Replacement threshold: page_size(lines) * sampling_coeff / 2 (Section 4.2.2).

        The threshold is capped at half the counter range so that it always
        stays reachable within the counter width (relevant only for the large
        sampling coefficients of the Figure 9 sweep).
        """
        if self.replacement_threshold is not None:
            return self.replacement_threshold
        lines = page_size // CACHELINE_SIZE
        threshold = max(1, int(lines * sampling_coefficient / 2.0))
        return min(threshold, max(1, self.counter_max // 2))


def preset_dram_cache(scheme: str, **preset_values: object) -> DramCacheConfig:
    """Build a preset's ``DramCacheConfig``, recording the preset baselines.

    Presets scale some DRAM-cache parameters (e.g. the tiny preset's
    64-entry tag buffer).  Recording them in ``preset_defaults`` marks them
    as baselines rather than user intent: a variant that sets the same
    parameter wins silently (``banshee-tb4k`` means a 4096-entry tag buffer
    on every preset), and ``with_scheme`` restores the preset value when a
    variant's delta is reverted.
    """
    return DramCacheConfig(scheme=scheme, preset_defaults=dict(preset_values), **preset_values)


@dataclass
class SystemConfig:
    """Top-level system configuration."""

    num_cores: int = 4
    num_mem_controllers: int = 4
    cacheline_size: int = CACHELINE_SIZE
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheLevelConfig = field(default_factory=lambda: CacheLevelConfig(size_bytes=16 * KB, ways=8, hit_latency=1))
    l2: CacheLevelConfig = field(default_factory=lambda: CacheLevelConfig(size_bytes=64 * KB, ways=8, hit_latency=10))
    l3: CacheLevelConfig = field(default_factory=lambda: CacheLevelConfig(size_bytes=512 * KB, ways=16, hit_latency=30))
    tlb: TlbConfig = field(default_factory=TlbConfig)
    dram_cache: DramCacheConfig = field(default_factory=DramCacheConfig)
    in_package_dram: DramConfig = field(
        default_factory=lambda: DramConfig(name="in-package", capacity_bytes=16 * MB, num_channels=4)
    )
    off_package_dram: DramConfig = field(
        default_factory=lambda: DramConfig(name="off-package", capacity_bytes=16 * GB, num_channels=1)
    )
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if self.num_mem_controllers <= 0:
            raise ValueError("num_mem_controllers must be positive")
        if not is_power_of_two(self.cacheline_size):
            raise ValueError("cacheline_size must be a power of two")
        if self.in_package_dram.capacity_bytes % self.dram_cache.page_size != 0:
            raise ValueError("in-package capacity must be a multiple of the DRAM cache page size")
        cache_pages = self.in_package_dram.capacity_bytes // self.dram_cache.page_size
        if cache_pages % self.dram_cache.ways != 0:
            raise ValueError("in-package pages must be divisible by DRAM cache associativity")
        if self.l3.size_bytes >= self.in_package_dram.capacity_bytes:
            raise ValueError("the LLC must be smaller than the in-package DRAM cache")

    # ------------------------------------------------------------------ presets

    @classmethod
    def paper_default(cls, scheme: str = "banshee") -> "SystemConfig":
        """Full-scale configuration of Table 2 / Table 3 of the paper."""
        return cls(
            num_cores=16,
            num_mem_controllers=4,
            core=CoreConfig(freq_ghz=2.7, issue_width=4, mlp=8.0),
            l1=CacheLevelConfig(size_bytes=32 * KB, ways=8, hit_latency=1),
            l2=CacheLevelConfig(size_bytes=128 * KB, ways=8, hit_latency=10),
            l3=CacheLevelConfig(size_bytes=8 * MB, ways=16, hit_latency=30),
            tlb=TlbConfig(entries=64),
            dram_cache=preset_dram_cache(scheme),
            in_package_dram=DramConfig(name="in-package", capacity_bytes=1 * GB, num_channels=4),
            off_package_dram=DramConfig(name="off-package", capacity_bytes=64 * GB, num_channels=1),
        )

    @classmethod
    def scaled_default(cls, scheme: str = "banshee", num_cores: int = 4, seed: int = 1) -> "SystemConfig":
        """Scaled-down configuration used by the benchmark harness (DESIGN.md §2).

        Capacities are scaled so that the footprint : DRAM-cache : LLC ratios
        of the paper are preserved, and channel bandwidth is scaled by
        ``num_cores / 16`` so that the *bandwidth per core* matches the
        paper's 16-core system (the paper itself uses the same argument to
        relate its configuration to Knights Landing).
        """
        bandwidth_scale = max(0.0625, num_cores / 16.0)
        return cls(
            num_cores=num_cores,
            num_mem_controllers=4,
            core=CoreConfig(freq_ghz=2.7, issue_width=4, mlp=6.0),
            l1=CacheLevelConfig(size_bytes=16 * KB, ways=8, hit_latency=1),
            l2=CacheLevelConfig(size_bytes=64 * KB, ways=8, hit_latency=10),
            l3=CacheLevelConfig(size_bytes=256 * KB, ways=16, hit_latency=30),
            tlb=TlbConfig(entries=64),
            dram_cache=preset_dram_cache(scheme, tag_buffer_entries=256),
            in_package_dram=DramConfig(
                name="in-package", capacity_bytes=8 * MB, num_channels=4, bandwidth_scale=bandwidth_scale
            ),
            off_package_dram=DramConfig(
                name="off-package", capacity_bytes=16 * GB, num_channels=1, bandwidth_scale=bandwidth_scale
            ),
            seed=seed,
        )

    @classmethod
    def tiny(cls, scheme: str = "banshee", num_cores: int = 2, seed: int = 1) -> "SystemConfig":
        """A very small configuration for unit tests."""
        return cls(
            num_cores=num_cores,
            num_mem_controllers=2,
            core=CoreConfig(freq_ghz=2.7, issue_width=4, mlp=4.0),
            l1=CacheLevelConfig(size_bytes=4 * KB, ways=4, hit_latency=1),
            l2=CacheLevelConfig(size_bytes=8 * KB, ways=4, hit_latency=10),
            l3=CacheLevelConfig(size_bytes=32 * KB, ways=8, hit_latency=30),
            tlb=TlbConfig(entries=16),
            dram_cache=preset_dram_cache(scheme, tag_buffer_entries=64, tag_buffer_ways=4),
            in_package_dram=DramConfig(name="in-package", capacity_bytes=1 * MB, num_channels=2),
            off_package_dram=DramConfig(name="off-package", capacity_bytes=1 * GB, num_channels=1),
            seed=seed,
        )

    # ------------------------------------------------------------------ helpers

    def with_scheme(self, scheme: str, **dram_cache_overrides: object) -> "SystemConfig":
        """Return a copy of this configuration with a different DRAM cache scheme.

        ``scheme`` may be a base scheme or a variant name (validated here, so
        a typo'd variant fails loudly instead of riding the carried
        ``base_scheme``).  Fields the *current* scheme's variant had folded
        in are reverted first — to the preset's value when the configuration
        came from a preset, else to the dataclass default — so switching
        between variants of one axis (or back to the base scheme) works.
        The new variant's overrides are folded back in by
        ``DramCacheConfig.__post_init__``, which rejects explicit overrides
        for a field the new variant also sets rather than silently resolving
        either way — ask for the base scheme with explicit overrides instead.
        """
        from repro.dramcache.variants import get_variant, resolve_scheme

        resolve_scheme(scheme)  # raises ValueError listing names on a typo
        dram_cache = self.dram_cache
        defaults = {f.name: f.default for f in dataclasses.fields(DramCacheConfig)}
        reverts: Dict[str, object] = {}
        old_variant = get_variant(dram_cache.scheme)
        if old_variant is not None:
            for key in old_variant.overrides:
                if key not in dram_cache_overrides:
                    reverts[key] = dram_cache.preset_defaults.get(key, defaults[key])
        new_dc = dataclasses.replace(dram_cache, scheme=scheme, **reverts, **dram_cache_overrides)
        return dataclasses.replace(self, dram_cache=new_dc)

    def with_overrides(self, **overrides: object) -> "SystemConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **overrides)

    @property
    def dram_cache_pages(self) -> int:
        """Number of page frames in the in-package DRAM cache."""
        return self.in_package_dram.capacity_bytes // self.dram_cache.page_size

    @property
    def dram_cache_sets(self) -> int:
        """Number of sets in the in-package DRAM cache."""
        return self.dram_cache_pages // self.dram_cache.ways

    def to_dict(self) -> Dict[str, object]:
        """Flatten the configuration into a plain dictionary (for reports)."""
        return dataclasses.asdict(self)


#: Nested dataclass fields of :class:`SystemConfig` (for config_from_dict).
_NESTED_CONFIG_FIELDS: Dict[str, type] = {
    "core": CoreConfig,
    "l1": CacheLevelConfig,
    "l2": CacheLevelConfig,
    "l3": CacheLevelConfig,
    "tlb": TlbConfig,
    "dram_cache": DramCacheConfig,
    "in_package_dram": DramConfig,
    "off_package_dram": DramConfig,
}


def config_from_dict(payload: Dict[str, object]) -> "SystemConfig":
    """Rebuild a :class:`SystemConfig` from its :meth:`~SystemConfig.to_dict`
    form (nested dicts), validating every level on the way up.

    The inverse of ``to_dict`` — ``config_from_dict(c.to_dict()) == c`` and
    both hash identically — used by snapshot replay and anything else that
    persists a configuration as JSON.
    """
    from repro.util.serde import dataclass_from_dict

    data = dict(payload)
    for name, cls in _NESTED_CONFIG_FIELDS.items():
        value = data.get(name)
        if isinstance(value, dict):
            sub = dict(value)
            timing = sub.get("timing")
            if isinstance(timing, dict):
                sub["timing"] = dataclass_from_dict(DramTimingConfig, timing)
            data[name] = dataclass_from_dict(cls, sub)
    return dataclass_from_dict(SystemConfig, data)


def canonical_json(payload: object) -> str:
    """Serialise ``payload`` to a canonical JSON string.

    Keys are sorted and separators fixed so that equal payloads always
    produce byte-identical text — the property the persistent result store
    relies on for its content-addressed keys.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def config_hash(config: "SystemConfig") -> str:
    """Stable content hash of a configuration.

    Two :class:`SystemConfig` objects with equal field values hash
    identically across processes and interpreter runs (unlike ``hash()``,
    which is randomised per process for strings).  Used by the result cache
    and the campaign result store to key simulations.
    """
    return hashlib.sha256(canonical_json(config.to_dict()).encode("utf-8")).hexdigest()
