"""Simulation engine: configuration, statistics, system assembly and results.

Only the leaf modules (configuration, statistics, results) are imported
eagerly.  :class:`SimulationEngine` and :class:`System` pull in the whole
simulator — cores, caches, DRAM devices, schemes — and almost every one of
those modules itself imports :mod:`repro.sim.config`; loading them from this
package ``__init__`` would make any ``repro.sim.config`` import re-enter
whichever package is mid-import.  PEP 562 lazy attributes keep
``from repro.sim import System`` working without the cycle.
"""

from repro.sim.config import (
    CacheLevelConfig,
    CoreConfig,
    DramCacheConfig,
    DramConfig,
    DramTimingConfig,
    SystemConfig,
    TlbConfig,
)
from repro.sim.results import SimulationResults
from repro.sim.stats import StatsSet, TrafficCategory, TrafficStats

__all__ = [
    "CacheLevelConfig",
    "CoreConfig",
    "DramCacheConfig",
    "DramConfig",
    "DramTimingConfig",
    "SystemConfig",
    "TlbConfig",
    "SimulationEngine",
    "SimulationResults",
    "StatsSet",
    "TrafficCategory",
    "TrafficStats",
    "System",
]


def __getattr__(name: str) -> object:
    if name == "SimulationEngine":
        from repro.sim.engine import SimulationEngine

        return SimulationEngine
    if name == "System":
        from repro.sim.system import System

        return System
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
