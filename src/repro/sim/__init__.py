"""Simulation engine: configuration, statistics, system assembly and results."""

from repro.sim.config import (
    CacheLevelConfig,
    CoreConfig,
    DramCacheConfig,
    DramConfig,
    DramTimingConfig,
    SystemConfig,
    TlbConfig,
)
from repro.sim.engine import SimulationEngine
from repro.sim.results import SimulationResults
from repro.sim.stats import StatsSet, TrafficCategory, TrafficStats
from repro.sim.system import System

__all__ = [
    "CacheLevelConfig",
    "CoreConfig",
    "DramCacheConfig",
    "DramConfig",
    "DramTimingConfig",
    "SystemConfig",
    "TlbConfig",
    "SimulationEngine",
    "SimulationResults",
    "StatsSet",
    "TrafficCategory",
    "TrafficStats",
    "System",
]
