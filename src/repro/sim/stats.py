"""Statistics collection.

Three kinds of statistics are used throughout the simulator:

* :class:`StatsSet` — a named bag of integer counters (cache hits, misses,
  TLB events, replacement counts, ...).
* :class:`TrafficStats` — bytes moved on a DRAM device, broken down by
  :class:`TrafficCategory`.  Figures 5, 6 and 9 of the paper are produced
  directly from these counters.
* :class:`MissRateWindow` — a sliding-window estimate of the recent DRAM
  cache miss rate, used by Banshee's adaptive sampling (Section 4.2.1).
"""

from __future__ import annotations

from collections import defaultdict
from enum import Enum
from typing import Dict, Iterable, Mapping


class TrafficCategory(Enum):
    """Categories of DRAM traffic, matching the stacks of Figure 5 / Figure 9."""

    HIT_DATA = "HitData"
    MISS_DATA = "MissData"
    TAG = "Tag"
    COUNTER = "Counter"
    REPLACEMENT = "Replacement"
    WRITEBACK = "Writeback"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class StatsSet:
    """A named collection of integer counters with a defaultdict interface."""

    def __init__(self, name: str = "stats") -> None:
        self.name = name
        self._counters: Dict[str, float] = defaultdict(float)

    def inc(self, key: str, amount: float = 1) -> None:
        """Increment counter ``key`` by ``amount``."""
        self._counters[key] += amount

    def get(self, key: str) -> float:
        """Read counter ``key`` (0 if never incremented)."""
        return self._counters.get(key, 0)

    def set(self, key: str, value: float) -> None:
        """Set counter ``key`` to ``value``."""
        self._counters[key] = value

    def keys(self) -> Iterable[str]:
        """All counter names recorded so far."""
        return self._counters.keys()

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all counters."""
        return dict(self._counters)

    def merge(self, other: "StatsSet") -> None:
        """Add all counters from ``other`` into this set."""
        for key, value in other.as_dict().items():
            self._counters[key] += value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StatsSet({self.name!r}, {dict(self._counters)!r})"


class TrafficStats:
    """Bytes moved on one DRAM device, by traffic category."""

    def __init__(self, device_name: str) -> None:
        self.device_name = device_name
        self._bytes: Dict[TrafficCategory, int] = {category: 0 for category in TrafficCategory}
        self._accesses: int = 0

    def record(self, category: TrafficCategory, num_bytes: int) -> None:
        """Record ``num_bytes`` of traffic in ``category``."""
        if num_bytes < 0:
            raise ValueError(f"traffic bytes must be non-negative, got {num_bytes}")
        self._bytes[category] += num_bytes
        self._accesses += 1

    def bytes_for(self, category: TrafficCategory) -> int:
        """Total bytes recorded in ``category``."""
        return self._bytes[category]

    @property
    def total_bytes(self) -> int:
        """Total bytes across all categories."""
        return sum(self._bytes.values())

    @property
    def total_accesses(self) -> int:
        """Number of individual DRAM accesses recorded."""
        return self._accesses

    def breakdown(self) -> Dict[str, int]:
        """Per-category byte totals keyed by the paper's category labels."""
        return {category.value: count for category, count in self._bytes.items()}

    def bytes_per_instruction(self, instructions: int) -> Dict[str, float]:
        """Per-category bytes normalised by instruction count (Figure 5 / 6 units)."""
        if instructions <= 0:
            return {category.value: 0.0 for category in TrafficCategory}
        return {category.value: count / instructions for category, count in self._bytes.items()}

    def merge(self, other: "TrafficStats") -> None:
        """Accumulate another device's traffic into this one."""
        for category in TrafficCategory:
            self._bytes[category] += other._bytes[category]
        self._accesses += other._accesses

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TrafficStats({self.device_name!r}, total={self.total_bytes})"


class MissRateWindow:
    """Sliding-window DRAM cache miss-rate estimator.

    Banshee's sample rate is ``recent_miss_rate * sampling_coefficient``
    (Algorithm 1, line 3).  The window keeps the estimator responsive to
    phase changes while being cheap to maintain.
    """

    def __init__(self, window: int = 4096, initial_rate: float = 1.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._hits = 0
        self._misses = 0
        self._rate = float(initial_rate)

    def record(self, hit: bool) -> None:
        """Record the outcome of one DRAM cache access."""
        if hit:
            self._hits += 1
        else:
            self._misses += 1
        if self._hits + self._misses >= self.window:
            self._rate = self._misses / (self._hits + self._misses)
            self._hits = 0
            self._misses = 0

    @property
    def rate(self) -> float:
        """Current miss-rate estimate in [0, 1]."""
        total = self._hits + self._misses
        if total >= self.window // 4:
            # Blend the running window with the last complete window so that
            # the estimate tracks the current phase reasonably quickly.
            current = self._misses / total
            return 0.5 * (self._rate + current)
        return self._rate


def merge_traffic(stats: Mapping[str, TrafficStats]) -> TrafficStats:
    """Merge a mapping of traffic stats into a single aggregate."""
    merged = TrafficStats("aggregate")
    for traffic in stats.values():
        merged.merge(traffic)
    return merged
