"""Simulation results.

:class:`SimulationResults` is the single value returned by a simulation run.
It carries everything the experiment harness needs to rebuild the paper's
tables and figures: cycle counts (for speedups), DRAM-cache hit/miss counts
(for MPKI and miss rates), and per-device traffic breakdowns in bytes per
instruction (for the traffic figures).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.util.serde import dataclass_from_dict

if TYPE_CHECKING:
    from repro.obs.timeline import Timeline


@dataclass
class SimulationResults:
    """Outcome of one (workload, scheme) simulation."""

    workload: str
    scheme: str
    num_cores: int
    instructions: int
    memory_accesses: int
    cycles: float
    per_core_cycles: List[float] = field(default_factory=list)
    dram_cache_hits: int = 0
    dram_cache_misses: int = 0
    llc_misses: int = 0
    llc_writebacks: int = 0
    tlb_misses: int = 0
    in_traffic_bytes: Dict[str, int] = field(default_factory=dict)
    off_traffic_bytes: Dict[str, int] = field(default_factory=dict)
    scheme_stats: Dict[str, float] = field(default_factory=dict)
    hierarchy_stats: Dict[str, int] = field(default_factory=dict)
    os_stall_cycles: float = 0.0
    wall_time_seconds: float = 0.0
    #: Interval timeline captured by a :class:`repro.obs.TimelineObserver`
    #: (its ``Timeline.to_dict()`` form), or ``None`` when no observer was
    #: attached.  Deterministic — built from simulated state only — so it
    #: participates in :meth:`identity_dict` comparisons.
    timeline: Optional[Dict] = None

    # ------------------------------------------------------------------ derived metrics

    @property
    def ipc(self) -> float:
        """Aggregate instructions per cycle (all cores)."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def dram_cache_accesses(self) -> int:
        """Demand accesses that reached the memory controllers."""
        return self.dram_cache_hits + self.dram_cache_misses

    @property
    def dram_cache_miss_rate(self) -> float:
        """DRAM-cache miss rate (Table 6 / Figure 9a metric)."""
        total = self.dram_cache_accesses
        return self.dram_cache_misses / total if total else 0.0

    @property
    def mpki(self) -> float:
        """DRAM-cache misses per kilo-instruction (red dots of Figure 4)."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.dram_cache_misses / self.instructions

    @property
    def in_bytes_per_instruction(self) -> Dict[str, float]:
        """In-package traffic breakdown in bytes/instruction (Figure 5)."""
        return self._per_instruction(self.in_traffic_bytes)

    @property
    def off_bytes_per_instruction(self) -> Dict[str, float]:
        """Off-package traffic breakdown in bytes/instruction (Figure 6)."""
        return self._per_instruction(self.off_traffic_bytes)

    @property
    def total_in_bytes_per_instruction(self) -> float:
        """Total in-package DRAM bytes per instruction."""
        return sum(self.in_bytes_per_instruction.values())

    @property
    def total_off_bytes_per_instruction(self) -> float:
        """Total off-package DRAM bytes per instruction."""
        return sum(self.off_bytes_per_instruction.values())

    def _per_instruction(self, traffic: Dict[str, int]) -> Dict[str, float]:
        if self.instructions == 0:
            return {key: 0.0 for key in traffic}
        return {key: value / self.instructions for key, value in traffic.items()}

    # ------------------------------------------------------------------ comparisons

    def speedup_over(self, baseline: "SimulationResults") -> float:
        """Speedup of this run relative to ``baseline`` (same workload).

        Both runs execute the same instruction streams, so the ratio of
        cycle counts is the speedup (Figure 4's normalisation).
        """
        if baseline.workload != self.workload:
            raise ValueError(
                f"speedup comparison requires the same workload, got {self.workload!r} vs {baseline.workload!r}"
            )
        if self.cycles <= 0:
            return 0.0
        return baseline.cycles / self.cycles

    # ------------------------------------------------------------------ serialization

    def to_dict(self) -> Dict[str, object]:
        """Serialise to a plain dictionary that :meth:`from_dict` round-trips.

        All fields are JSON-native (ints, floats, strings, flat dicts and
        lists), so ``json.loads(json.dumps(r.to_dict()))`` reconstructs the
        exact value — Python's JSON float formatting is shortest-round-trip,
        so cycle counts survive bit-identically.  The campaign result store
        persists results in this form.

        ``timeline`` is omitted when no observer captured one, so payloads
        (and the hot-path goldens) from before the field existed compare
        equal to current output.
        """
        payload = dataclasses.asdict(self)
        if self.timeline is None:
            payload.pop("timeline")
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SimulationResults":
        """Rebuild a results object from :meth:`to_dict` output.

        Unknown keys are rejected loudly (a store written by a newer version
        should not be silently truncated); missing optional fields fall back
        to their dataclass defaults so old store files keep loading.
        """
        return dataclass_from_dict(cls, payload)

    def identity_dict(self) -> Dict[str, object]:
        """:meth:`to_dict` minus host-dependent timing (for equality checks).

        ``wall_time_seconds`` measures the simulating host, not the simulated
        system, so it is excluded when comparing results for determinism
        (e.g. parallel vs serial campaign execution).
        """
        payload = self.to_dict()
        payload.pop("wall_time_seconds")
        return payload

    def timeline_object(self) -> Optional["Timeline"]:
        """The attached timeline as a :class:`repro.obs.Timeline` (or None)."""
        if self.timeline is None:
            return None
        from repro.obs.timeline import Timeline

        return Timeline.from_dict(self.timeline)

    def summary(self) -> Dict[str, float]:
        """Compact flat summary (used by reports and EXPERIMENTS.md)."""
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "instructions": self.instructions,
            "cycles": round(self.cycles, 1),
            "ipc": round(self.ipc, 4),
            "miss_rate": round(self.dram_cache_miss_rate, 4),
            "mpki": round(self.mpki, 3),
            "in_bpi": round(self.total_in_bytes_per_instruction, 4),
            "off_bpi": round(self.total_off_bytes_per_instruction, 4),
        }


def geometric_mean(values: List[float]) -> float:
    """Geometric mean used for the "average" bars in the paper's figures."""
    filtered = [value for value in values if value > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for value in filtered:
        product *= value
    return product ** (1.0 / len(filtered))
