"""Vectorized front-end filter for the batch engine (opt-in numpy path).

The filter keeps flat mirrors of each core's TLB keys and L1 tag array and
classifies a whole run of records in bulk: records that hit both structures
are accounted with vectorized sums, and only the first TLB or L1 miss (or
pending-stall record) returns control to the per-record path.  Mirrors are
maintained incrementally — the TLB bumps a version counter on membership
changes and the L1 logs touched set indices — so hit bursts pay nothing to
keep them fresh.

Bit-identity: the simulator's only float accumulators are the core clock and
the per-core cycle stats, all built by repeated ``+=``.  ``np.add.accumulate``
performs the same left-to-right IEEE-754 double additions, so folding a run
through it (compute cycles and L1 stall interleaved exactly as the scalar
loop adds them) produces bit-identical values; integer counters are exact
regardless of order.  LRU state is reconciled by replaying, for each distinct
key touched in the run, one ``move_to_end`` at its *last* occurrence, in
occurrence order — which leaves the recency order exactly as the per-record
sequence of moves would have.

The module needs numpy (declared as the ``repro[fast]`` extra); constructing
:class:`VectorFrontEnd` without it raises with instructions rather than
silently changing engine behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less hosts
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:
    from repro.sim.batch import _CoreSource
    from repro.sim.system import System

#: Minimum classifiable run length: below this the per-record inline path is
#: cheaper than slicing and classifying arrays.
_MIN_RUN = 16

#: Consecutive-failure backoff: after a short or missing hit prefix the
#: filter disengages for this many attempts (one attempt per scalar stretch),
#: so miss-dominated phases pay almost nothing for it.
_BACKOFF = 32


class VectorFrontEnd:
    """Flat-array TLB/L1 membership mirrors plus bulk hit accounting."""

    def __init__(self, system: "System") -> None:
        if np is None:
            raise RuntimeError(
                "engine mode 'numpy' requires numpy; install it with "
                "'pip install repro[fast]' or use the default 'batch' mode"
            )
        self._system = system
        num_cores = system.config.num_cores
        l1s = system.hierarchy.l1
        self._tlb_keys: List[Any] = [None] * num_cores
        self._tlb_versions: List[int] = [-1] * num_cores
        self._l1_tags: List[Any] = [
            np.full((l1.num_sets, l1.num_ways), -1, dtype=np.int64) for l1 in l1s
        ]
        self._l1_fresh = [False] * num_cores
        self._logs: List[List[int]] = []
        for l1 in l1s:
            log: List[int] = []
            l1._dirty_sets = log
            self._logs.append(log)
        # Per-core engagement confidence: <0 means backed off (one attempt
        # per call restores it toward 0), >=0 means engaged.
        self._confidence = [0] * num_cores

    def detach(self) -> None:
        """Remove the mirror logs installed on the L1 caches."""
        for l1 in self._system.hierarchy.l1:
            l1._dirty_sets = None

    # ------------------------------------------------------------------ mirrors

    def _refresh(self, core_id: int) -> None:
        system = self._system
        tlb = system.tlbs[core_id]
        if self._tlb_versions[core_id] != tlb.version:
            entries = tlb._entries
            keys = np.fromiter(entries.keys(), dtype=np.int64, count=len(entries))
            keys.sort()
            self._tlb_keys[core_id] = keys
            self._tlb_versions[core_id] = tlb.version
        l1 = system.hierarchy.l1[core_id]
        tags = self._l1_tags[core_id]
        log = self._logs[core_id]
        if not self._l1_fresh[core_id] or len(log) >= l1.num_sets:
            tags.fill(-1)
            for set_index, bucket in enumerate(l1._sets):
                if bucket:
                    row = tags[set_index]
                    way = 0
                    for line in bucket:
                        row[way] = line
                        way += 1
            self._l1_fresh[core_id] = True
        elif log:
            sets = l1._sets
            for set_index in sorted(set(log)):
                row = tags[set_index]
                row.fill(-1)
                way = 0
                for line in sets[set_index]:
                    row[way] = line
                    way += 1
        del log[:]

    # ------------------------------------------------------------------ bulk path

    def try_bulk(
        self,
        core_id: int,
        source: "_CoreSource",
        cap: int,
        b_clock: float,
        b_core: int,
    ) -> int:
        """Bulk-execute the TLB+L1-hit prefix of the core's next ``cap`` records.

        Returns the number of records accounted (possibly 0 when the first
        record misses, a stall is pending, the run is too short to profit,
        or the filter is backed off).  Stops at the interleave boundary
        ``(b_clock, b_core)`` exactly where the per-record path would.
        """
        confidence = self._confidence[core_id]
        if confidence < 0:
            self._confidence[core_id] = confidence + 1
            return 0
        if cap < _MIN_RUN:
            return 0
        system = self._system
        core = system.cores[core_id]
        if core._pending_stall != 0.0:
            return 0
        tlb = system.tlbs[core_id]
        l1 = system.hierarchy.l1[core_id]
        pos = source.pos
        addr0 = source.addrs[pos]
        page_size = system.page_size
        # Cheap scalar precheck: a leading miss costs two dict probes here
        # instead of a full classification pass.
        if source.addrs[pos] // page_size not in tlb._entries:
            self._confidence[core_id] = -_BACKOFF
            return 0
        line0 = addr0 >> l1._line_bits
        if line0 not in l1._sets[line0 & l1._set_mask]:
            self._confidence[core_id] = -_BACKOFF
            return 0
        clock = core.clock
        l1_stall = core._l1_stall
        if b_clock != float("inf") and l1_stall > 0.0:
            # Lower bound on per-record clock advance (compute >= 0 cycles
            # plus the L1-hit stall) upper-bounds how many records can run
            # before the boundary; never classify more than that.
            bound = int((b_clock - clock) / l1_stall) + 2
            if bound < cap:
                cap = bound
            if cap < _MIN_RUN:
                return 0
        if source.np_gaps is None:
            source.np_gaps = np.asarray(source.gaps, dtype=np.int64)
            source.np_addrs = np.asarray(source.addrs, dtype=np.int64)
            source.np_writes = np.asarray(source.writes, dtype=bool)
        self._refresh(core_id)

        gaps = source.np_gaps[pos:pos + cap]
        addrs = source.np_addrs[pos:pos + cap]
        writes = source.np_writes[pos:pos + cap]
        keys = self._tlb_keys[core_id]
        vpns = addrs // page_size
        positions = np.minimum(np.searchsorted(keys, vpns), len(keys) - 1)
        tlb_hit = keys[positions] == vpns
        lines = addrs >> l1._line_bits
        tags = self._l1_tags[core_id]
        l1_hit = (tags[lines & l1._set_mask] == lines[:, None]).any(axis=1)
        ok = tlb_hit & l1_hit
        hit_prefix = len(ok) if ok.all() else int(ok.argmin())
        if hit_prefix == 0:
            self._confidence[core_id] = -_BACKOFF
            return 0

        # Fold the run's clock advances in scalar order: += gap/issue_width
        # then += l1_stall per record (np.add.accumulate is a sequential
        # left fold, so every intermediate double is bit-identical).
        compute = gaps[:hit_prefix] / core._issue_width
        increments = np.empty(2 * hit_prefix + 1)
        increments[0] = clock
        increments[1::2] = compute
        increments[2::2] = l1_stall
        folded = np.add.accumulate(increments)
        clock_after = folded[2::2]
        if b_clock == float("inf"):
            n_run = hit_prefix
        else:
            side = "right" if core_id < b_core else "left"
            allowed = int(np.searchsorted(clock_after, b_clock, side=side)) + 1
            n_run = hit_prefix if allowed >= hit_prefix else allowed
        # Short prefixes are still applied (the work is already classified),
        # but they disengage the filter for a while: a phase of short runs
        # means classification costs more than it saves.
        self._confidence[core_id] = -_BACKOFF if n_run < _MIN_RUN else 0

        # ---- apply: timing ------------------------------------------------
        core.clock = float(folded[2 * n_run])
        stats = core.stats
        stats.instructions += int(gaps[:n_run].sum())
        stats.memory_accesses += n_run
        fold_cc = np.empty(n_run + 1)
        fold_cc[0] = stats.compute_cycles
        fold_cc[1:] = compute[:n_run]
        stats.compute_cycles = float(np.add.accumulate(fold_cc)[-1])
        fold_ms = np.empty(n_run + 1)
        fold_ms[0] = stats.memory_stall_cycles
        fold_ms[1:] = l1_stall
        stats.memory_stall_cycles = float(np.add.accumulate(fold_ms)[-1])

        # ---- apply: hit counters and replacement state -------------------
        tlb.hits += n_run
        l1.hits += n_run
        run_vpns = vpns[:n_run]
        run_lines = lines[:n_run]
        entries = tlb._entries
        # One move_to_end per distinct key at its last occurrence, in
        # occurrence order, reproduces the exact per-record recency order.
        vals, first_rev = np.unique(run_vpns[::-1], return_index=True)
        for vpn in vals[np.argsort(-first_rev)].tolist():
            entries.move_to_end(vpn)
        sets = l1._sets
        set_mask = l1._set_mask
        if l1._lru:
            lvals, lfirst_rev = np.unique(run_lines[::-1], return_index=True)
            for line in lvals[np.argsort(-lfirst_rev)].tolist():
                sets[line & set_mask].move_to_end(line)
        written = run_lines[writes[:n_run]]
        if written.size:
            for line in np.unique(written).tolist():
                sets[line & set_mask][line] = True
        source.pos = pos + n_run
        return n_run
