"""Trace-to-trace transforms.

Every transform streams records from a source ``.rtrace`` through a pure
per-record (or per-stream) function into a new file, so arbitrarily long
traces transform in constant memory.  Each output records its lineage in
``meta.source`` (operation, parameters, the source's provenance), which
``python -m repro.trace info`` prints — a transformed trace is always
auditable back to the capture that produced it.

The transforms compose the scenario space the generators cannot reach
directly: slice a long capture into a short one, interleave single-program
captures into new multi-programmed mixes (each slot rebased into its own
address slice, mirroring :class:`~repro.workloads.mixes.MixWorkload`),
fold a footprint down to stress a smaller cache, or isolate the read or
write stream of a workload.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.cpu.trace import TraceRecord
from repro.trace.format import _GAP_MASK, TraceFormatError, TraceMeta, TraceReader, TraceWriter
from repro.util.units import GB

#: Default address-slice stride for interleaved mixes (the 1 GB slots of
#: :class:`~repro.workloads.mixes.MixWorkload`).
DEFAULT_SLICE_BYTES = GB


def _derived_meta(src: TraceMeta, name: Optional[str], operation: str, **params) -> TraceMeta:
    """Fresh metadata for a transform output (stats refill during writing)."""
    return TraceMeta(
        name=name if name is not None else src.name,
        num_cores=src.num_cores,
        page_size=src.page_size,
        mlp=src.mlp,
        footprint_bytes=src.footprint_bytes,
        seed=src.seed,
        source={"transform": operation, **params, "source": src.source},
    )


def slice_trace(
    src_path: str,
    dst_path: str,
    records: Optional[int] = None,
    instructions: Optional[int] = None,
    compress: bool = False,
    name: Optional[str] = None,
) -> TraceMeta:
    """Truncate every core's stream by record count and/or instruction budget."""
    if records is None and instructions is None:
        raise ValueError("provide records and/or instructions to slice by")
    if records is not None and records <= 0:
        raise ValueError("records must be positive")
    if instructions is not None and instructions <= 0:
        raise ValueError("instructions must be positive")
    reader = TraceReader(src_path)
    meta = _derived_meta(reader.meta, name, "slice", records=records, instructions=instructions)

    def limited(stream: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
        executed = 0
        for record in stream:
            if instructions is not None and executed + record.gap > instructions:
                return
            executed += record.gap
            yield record

    with TraceWriter(dst_path, meta, compress=compress) as writer:
        for core_id in range(reader.num_cores):
            writer.write_stream(limited(reader.stream(core_id)), limit=records)
    return writer.meta


def remap_cores(
    src_path: str,
    dst_path: str,
    mapping: Sequence[int],
    compress: bool = False,
    name: Optional[str] = None,
) -> TraceMeta:
    """Build a trace whose core ``i`` replays source stream ``mapping[i]``.

    Duplicating a stream is allowed (two cores replaying identical accesses
    is a legitimate — and stressful — coherence scenario), as is dropping
    streams to carve a narrower machine out of a wide capture.
    """
    reader = TraceReader(src_path)
    if not mapping:
        raise ValueError("mapping must name at least one source stream")
    for stream_id in mapping:
        if not 0 <= stream_id < reader.num_cores:
            raise ValueError(
                f"mapping entry {stream_id} out of range for {reader.num_cores}-core trace"
            )
    meta = _derived_meta(reader.meta, name, "remap", mapping=list(mapping))
    meta.num_cores = len(mapping)
    with TraceWriter(dst_path, meta, compress=compress) as writer:
        for stream_id in mapping:
            writer.write_stream(reader.stream(stream_id))
    return writer.meta


def interleave_traces(
    src_paths: Sequence[str],
    dst_path: str,
    name: Optional[str] = None,
    slice_bytes: Optional[int] = DEFAULT_SLICE_BYTES,
    compress: bool = False,
) -> TraceMeta:
    """Concatenate the core streams of several traces into one multi-core mix.

    Output core slots follow the input order (all of trace 0's cores, then
    trace 1's, ...).  With ``slice_bytes`` set (the default: the same 1 GB
    slots :class:`~repro.workloads.mixes.MixWorkload` uses), every slot's
    addresses are rebased into a private slice so single-program captures
    combine into a multi-programmed mix without address collisions; pass
    ``None`` to keep original addresses (e.g. interleaving shared-memory
    captures of the same program).
    """
    if not src_paths:
        raise ValueError("at least one source trace is required")
    readers = [TraceReader(path) for path in src_paths]
    page_sizes = {reader.meta.page_size for reader in readers}
    if len(page_sizes) > 1:
        raise TraceFormatError(
            f"cannot interleave traces with different page sizes: {sorted(page_sizes)}"
        )
    if slice_bytes is not None:
        # Validate the address *reach* of every stream, not the (possibly
        # sparse) footprint: a capture whose addresses already sit above the
        # slice stride — any multi-core mix capture, for instance — would
        # otherwise land its rebased records inside a neighbouring slot.
        for reader in readers:
            for core_id in range(reader.num_cores):
                max_addr = reader.meta.core_stats[core_id].get("max_addr", 0)
                if max_addr >= slice_bytes:
                    raise TraceFormatError(
                        f"{reader.path}: core {core_id} addresses reach {max_addr}, "
                        f"past the {slice_bytes}-byte slot; raise slice_bytes, scale "
                        "the trace down, or pass slice_bytes=None to keep addresses"
                    )
    first = readers[0].meta
    slots = [(reader, core_id) for reader in readers for core_id in range(reader.num_cores)]
    meta = TraceMeta(
        name=name if name is not None else "+".join(reader.meta.name for reader in readers),
        num_cores=len(slots),
        page_size=first.page_size,
        mlp=sum(r.meta.mlp * r.num_cores for r in readers) / len(slots),
        footprint_bytes=sum(reader.meta.footprint_bytes for reader in readers),
        seed=first.seed,
        source={
            "transform": "interleave",
            "slice_bytes": slice_bytes,
            "sources": [
                {"path": reader.path, "digest": reader.digest, "source": reader.meta.source}
                for reader in readers
            ],
        },
    )
    with TraceWriter(dst_path, meta, compress=compress) as writer:
        for slot, (reader, core_id) in enumerate(slots):
            if slice_bytes is None:
                writer.write_stream(reader.stream(core_id))
            else:
                base = slot * slice_bytes
                writer.write_stream(
                    TraceRecord(record.gap, record.addr + base, record.is_write)
                    for record in reader.stream(core_id)
                )
    return writer.meta


def scale_footprint(
    src_path: str,
    dst_path: str,
    factor: float,
    compress: bool = False,
    name: Optional[str] = None,
) -> TraceMeta:
    """Scale the page-level footprint by ``factor``, preserving in-page offsets.

    Page numbers are multiplied by ``factor`` and truncated: a factor below
    one folds distinct pages together (shrinking the footprint and raising
    reuse — the cheap way to fit a captured workload into a smaller cache
    study), a factor above one spreads pages apart (shrinking reuse).
    Line-level locality inside each page is untouched.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    reader = TraceReader(src_path)
    page_size = reader.meta.page_size
    meta = _derived_meta(reader.meta, name, "scale_footprint", factor=factor)
    meta.footprint_bytes = max(int(reader.meta.footprint_bytes * factor), page_size)
    with TraceWriter(dst_path, meta, compress=compress) as writer:
        for core_id in range(reader.num_cores):
            writer.write_stream(
                TraceRecord(
                    record.gap,
                    int(record.addr // page_size * factor) * page_size + record.addr % page_size,
                    record.is_write,
                )
                for record in reader.stream(core_id)
            )
    return writer.meta


def filter_accesses(
    src_path: str,
    dst_path: str,
    keep: str,
    compress: bool = False,
    name: Optional[str] = None,
) -> TraceMeta:
    """Keep only reads or only writes, preserving instruction counts.

    A dropped record's instruction gap is folded into the next kept record,
    so the filtered trace executes the same instructions with a thinner
    access stream (trailing dropped gaps at end-of-stream are lost).
    """
    if keep not in ("reads", "writes"):
        raise ValueError(f"keep must be 'reads' or 'writes', got {keep!r}")
    keep_writes = keep == "writes"
    reader = TraceReader(src_path)
    meta = _derived_meta(reader.meta, name, "filter", keep=keep)

    def filtered(stream: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
        carried = 0
        for record in stream:
            if record.is_write != keep_writes:
                carried += record.gap
                continue
            yield TraceRecord(min(record.gap + carried, _GAP_MASK), record.addr, record.is_write)
            carried = 0

    with TraceWriter(dst_path, meta, compress=compress) as writer:
        for core_id in range(reader.num_cores):
            writer.write_stream(filtered(reader.stream(core_id)))
    return writer.meta
