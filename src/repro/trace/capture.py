"""Capture workloads to ``.rtrace`` files.

:func:`record_workload` snapshots any :class:`~repro.workloads.base.Workload`
object; :func:`record_named` resolves a registry name first (including a
``trace:`` name, which makes re-capture a cheap copy-with-truncate).  The
capture pays the generator cost exactly once — every subsequent replay of the
file streams packed records straight from disk.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.trace.format import TraceMeta, TraceWriter
from repro.workloads.base import Workload


def record_workload(
    workload: Workload,
    path: str,
    records_per_core: int,
    compress: bool = False,
    source: Optional[Dict[str, object]] = None,
) -> TraceMeta:
    """Capture ``records_per_core`` records of every core of ``workload``.

    The stored metadata mirrors the workload (name, mlp, page size,
    footprint, seed) so that replaying the file is indistinguishable from
    running the generator — including the ``workload`` field of the
    resulting :class:`~repro.sim.results.SimulationResults`.
    """
    if records_per_core <= 0:
        raise ValueError("records_per_core must be positive")
    meta = TraceMeta(
        name=workload.name,
        num_cores=workload.num_cores,
        page_size=workload.page_size,
        mlp=workload.mlp,
        footprint_bytes=workload.footprint_bytes,
        seed=workload.seed,
        source=dict(source) if source is not None else {"workload": workload.name},
    )
    with TraceWriter(path, meta, compress=compress) as writer:
        for core_id in range(workload.num_cores):
            writer.write_stream(
                itertools.islice(workload.trace(core_id), records_per_core),
                limit=records_per_core,
            )
    return writer.meta


def record_named(
    name: str,
    path: str,
    records_per_core: int,
    num_cores: int,
    scale: float = 1.0,
    seed: int = 1,
    page_size: int = 4096,
    compress: bool = False,
) -> TraceMeta:
    """Capture a registry workload by name (the CLI ``record`` entry point)."""
    # Imported here: the registry itself resolves ``trace:`` names through
    # this package, so a module-level import would be circular.
    from repro.workloads.registry import get_workload

    workload = get_workload(name, num_cores, scale=scale, seed=seed, page_size=page_size)
    source = {
        "workload": name,
        "num_cores": num_cores,
        "scale": scale,
        "seed": seed,
        "page_size": page_size,
        "records_per_core": records_per_core,
    }
    return record_workload(workload, path, records_per_core, compress=compress, source=source)
