"""``python -m repro.trace`` — capture, inspect, transform and replay traces.

Subcommands::

    record     capture a registry workload to an .rtrace file
    info       print a trace's metadata, lineage and per-core statistics
    transform  derive a new trace: slice / interleave / remap / scale / filter
    replay     simulate a trace against a scheme and print the result summary

The ``trace:<path>`` workload form accepted by ``repro.campaign`` and
``repro.perf`` resolves the same files, so a typical workflow is: capture
once here, then sweep the file through campaigns by name.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.trace.capture import record_named
from repro.trace.format import TraceMeta, TraceReader
from repro.trace.transform import (
    DEFAULT_SLICE_BYTES,
    filter_accesses,
    interleave_traces,
    remap_cores,
    scale_footprint,
    slice_trace,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Binary trace capture, transform and replay.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="capture a registry workload to an .rtrace file")
    record.add_argument("--workload", required=True,
                        help="registry workload name (see python -m repro.perf --help)")
    record.add_argument("--output", required=True, help="output .rtrace path")
    record.add_argument("--records", type=int, default=10000, help="records per core (default 10000)")
    record.add_argument("--cores", type=int, default=2, help="simulated cores (default 2)")
    record.add_argument("--scale", type=float, default=1.0, help="footprint scale (default 1.0)")
    record.add_argument("--seed", type=int, default=1, help="RNG seed (default 1)")
    record.add_argument("--page-size", type=int, default=4096, help="page size in bytes (default 4096)")
    record.add_argument("--compress", action="store_true", help="zlib-compress the record streams")

    info = sub.add_parser("info", help="print a trace's metadata and statistics")
    info.add_argument("trace", help=".rtrace path")
    info.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    transform = sub.add_parser("transform", help="derive a new trace from existing ones")
    ops = transform.add_subparsers(dest="operation", required=True)

    def common(op: argparse.ArgumentParser, single_input: bool = True) -> None:
        if single_input:
            op.add_argument("--input", required=True, help="source .rtrace path")
        op.add_argument("--output", required=True, help="output .rtrace path")
        op.add_argument("--name", help="workload name of the output (default: derived)")
        op.add_argument("--compress", action="store_true", help="zlib-compress the output")

    op = ops.add_parser("slice", help="truncate by record and/or instruction count")
    common(op)
    op.add_argument("--records", type=int, help="max records per core")
    op.add_argument("--instructions", type=int, help="max instructions per core")

    op = ops.add_parser("interleave",
                        help="combine traces into a multi-programmed mix (one output "
                             "core per input stream, each rebased into its own slice)")
    op.add_argument("--inputs", required=True, nargs="+", help="source .rtrace paths")
    common(op, single_input=False)
    op.add_argument("--slice-bytes", type=int, default=DEFAULT_SLICE_BYTES,
                    help=f"address-slice stride per core (default {DEFAULT_SLICE_BYTES})")
    op.add_argument("--no-rebase", action="store_true", help="keep original addresses")

    op = ops.add_parser("remap", help="reorder/duplicate/drop core streams")
    common(op)
    op.add_argument("--cores", required=True, nargs="+", type=int,
                    help="source stream per output core, e.g. --cores 0 0 1")

    op = ops.add_parser("scale", help="scale the page-level footprint")
    common(op)
    op.add_argument("--factor", required=True, type=float,
                    help="footprint factor (<1 folds pages together, >1 spreads them)")

    op = ops.add_parser("filter", help="keep only reads or only writes")
    common(op)
    op.add_argument("--keep", required=True, choices=("reads", "writes"))

    replay = sub.add_parser("replay", help="simulate a trace and print the result summary")
    replay.add_argument("trace", help=".rtrace path")
    replay.add_argument("--scheme", default="banshee",
                        help="scheme or variant name (default banshee)")
    replay.add_argument("--preset", choices=("tiny", "scaled", "paper"), default="scaled",
                        help="system configuration preset (default scaled)")
    replay.add_argument("--records", type=int,
                        help="records per core (default: everything the trace holds)")
    replay.add_argument("--warmup", type=float, default=0.0,
                        help="warmup fraction in [0, 1) (default 0)")
    replay.add_argument("--seed", type=int, default=1, help="system RNG seed (default 1)")
    return parser


def _meta_lines(meta: TraceMeta, reader: TraceReader) -> List[str]:
    lines = [
        f"workload:     {meta.name}",
        f"cores:        {meta.num_cores}",
        f"page size:    {meta.page_size}",
        f"mlp:          {meta.mlp}",
        f"seed:         {meta.seed}",
        f"compressed:   {meta.compressed}",
        f"digest:       {reader.digest}",
        f"records:      {meta.stats.get('records', 0)} "
        f"(per core: {', '.join(str(n) for n in meta.records_per_core)})",
        f"instructions: {meta.stats.get('instructions', 0)}",
        f"writes:       {meta.stats.get('writes', 0)} of "
        f"{meta.stats.get('reads', 0) + meta.stats.get('writes', 0)} accesses",
        f"footprint:    {meta.stats.get('unique_pages', 0)} pages "
        f"({meta.stats.get('footprint_bytes', 0) / (1 << 20):.1f} MB across cores)",
        f"source:       {json.dumps(meta.source, sort_keys=True)}",
    ]
    return lines


def cmd_record(args: argparse.Namespace, stream) -> int:
    meta = record_named(
        args.workload,
        args.output,
        records_per_core=args.records,
        num_cores=args.cores,
        scale=args.scale,
        seed=args.seed,
        page_size=args.page_size,
        compress=args.compress,
    )
    print(
        f"recorded {meta.stats['records']} records "
        f"({meta.num_cores} cores x {args.records}) of '{args.workload}' -> {args.output}",
        file=stream,
    )
    return 0


def cmd_info(args: argparse.Namespace, stream) -> int:
    reader = TraceReader(args.trace)
    if args.json:
        payload = {"meta": reader.meta.to_dict(), "digest": reader.digest, "path": args.trace}
        json.dump(payload, stream, indent=1, sort_keys=True)
        stream.write("\n")
    else:
        print(f"trace: {args.trace}", file=stream)
        for line in _meta_lines(reader.meta, reader):
            print(f"  {line}", file=stream)
    return 0


def cmd_transform(args: argparse.Namespace, stream) -> int:
    if args.operation == "slice":
        meta = slice_trace(args.input, args.output, records=args.records,
                           instructions=args.instructions, compress=args.compress, name=args.name)
    elif args.operation == "interleave":
        meta = interleave_traces(
            args.inputs, args.output, name=args.name,
            slice_bytes=None if args.no_rebase else args.slice_bytes,
            compress=args.compress,
        )
    elif args.operation == "remap":
        meta = remap_cores(args.input, args.output, args.cores,
                           compress=args.compress, name=args.name)
    elif args.operation == "scale":
        meta = scale_footprint(args.input, args.output, args.factor,
                               compress=args.compress, name=args.name)
    else:
        meta = filter_accesses(args.input, args.output, args.keep,
                               compress=args.compress, name=args.name)
    print(
        f"{args.operation}: wrote '{meta.name}' ({meta.num_cores} cores, "
        f"{meta.stats['records']} records) -> {args.output}",
        file=stream,
    )
    return 0


def cmd_replay(args: argparse.Namespace, stream) -> int:
    # Imported here so trace capture/transform/info work without pulling in
    # the whole simulator stack.
    from repro.dramcache.variants import available_scheme_names, is_known_scheme
    from repro.experiments.runner import run_simulation
    from repro.sim.config import SystemConfig
    from repro.trace.workload import TraceWorkload

    if not is_known_scheme(args.scheme):
        raise ValueError(
            f"unknown scheme/variant {args.scheme!r}; "
            f"available: {', '.join(available_scheme_names())}"
        )
    workload = TraceWorkload(args.trace)
    if args.preset == "tiny":
        config = SystemConfig.tiny(scheme=args.scheme, num_cores=workload.num_cores, seed=args.seed)
    elif args.preset == "scaled":
        config = SystemConfig.scaled_default(scheme=args.scheme, num_cores=workload.num_cores,
                                             seed=args.seed)
    else:
        config = SystemConfig.paper_default(scheme=args.scheme).with_overrides(
            num_cores=workload.num_cores, seed=args.seed
        )
    records = args.records if args.records is not None else workload.records_per_core
    if records > workload.records_per_core:
        raise ValueError(
            f"trace holds {workload.records_per_core} records per core, "
            f"{records} requested"
        )
    result = run_simulation(
        config, workload=workload, records_per_core=records, warmup_fraction=args.warmup
    )
    for key, value in result.summary().items():
        print(f"  {key:12s} {value}", file=stream)
    return 0


def main(argv: Optional[List[str]] = None, stream=None) -> int:
    stream = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "record":
            return cmd_record(args, stream)
        if args.command == "info":
            return cmd_info(args, stream)
        if args.command == "transform":
            return cmd_transform(args, stream)
        return cmd_replay(args, stream)
    except (ValueError, OSError) as exc:
        # Bad names, missing/invalid files and out-of-range budgets are user
        # errors: report them as one line, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
