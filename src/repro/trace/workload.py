"""Replay a captured trace as a first-class :class:`Workload`.

A :class:`TraceWorkload` is resolvable everywhere a workload name is
accepted via the ``trace:<path>`` form (see
:func:`repro.workloads.registry.get_workload`), so captured traces flow
unchanged through ``SystemConfig`` presets, ``repro.campaign`` cells,
``repro.perf`` benchmarks and the figure functions.  Replay is
bit-identical: the stored records and workload attributes (name, mlp, page
size) are exactly what the originating generator produced, so the simulated
results match the generator run field for field.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, Optional

from repro.cpu.trace import TraceRecord
from repro.trace.format import TraceReader
from repro.workloads.base import TraceBatch, Workload


class TraceWorkload(Workload):
    """A workload whose per-core streams come from an ``.rtrace`` file.

    The path is resolved to an absolute path at construction and the object
    pickles down to that path plus nothing else — spawn-based campaign
    workers (whose working directory and module state are fresh) reopen the
    file themselves.  ``scale``/``seed`` knobs of generator workloads do not
    apply: a trace replays literally (``seed`` is reported from the capture
    metadata for provenance only).
    """

    def __init__(self, path: str, num_cores: Optional[int] = None,
                 page_size: Optional[int] = None) -> None:
        self.trace_path = os.path.abspath(path)
        if not os.path.exists(self.trace_path):
            raise ValueError(f"trace file not found: {path}")
        reader = TraceReader(self.trace_path)
        meta = reader.meta
        if num_cores is not None and num_cores != meta.num_cores:
            raise ValueError(
                f"trace {path} holds {meta.num_cores} core stream(s) but {num_cores} "
                f"cores were requested; run the simulation with num_cores="
                f"{meta.num_cores}, or build a matching trace with "
                f"'python -m repro.trace transform remap'"
            )
        if page_size is not None and page_size != meta.page_size:
            # A mismatch would split the simulated system: the page table,
            # TLBs and DRAM devices follow the workload's page size while the
            # DRAM-cache scheme follows the configured one.  Refuse rather
            # than mislabel a page-size study.
            raise ValueError(
                f"trace {path} was captured at page_size={meta.page_size} but "
                f"page_size={page_size} was requested; re-capture the workload "
                f"at that page size (python -m repro.trace record --page-size "
                f"{page_size} ...)"
            )
        super().__init__(
            name=meta.name,
            num_cores=meta.num_cores,
            footprint_bytes=max(meta.footprint_bytes, meta.page_size),
            mlp=meta.mlp,
            page_size=meta.page_size,
            seed=meta.seed,
        )
        self._reader: Optional[TraceReader] = reader

    # ------------------------------------------------------------------ replay

    @property
    def reader(self) -> TraceReader:
        if self._reader is None:  # re-opened lazily after unpickling
            self._reader = TraceReader(self.trace_path)
        return self._reader

    @property
    def meta(self):
        return self.reader.meta

    @property
    def records_per_core(self) -> int:
        """Records available on every core (the safe replay budget)."""
        return min(self.reader.record_counts)

    @property
    def max_records_per_core(self) -> int:
        """Finite bound the engine enforces (see :class:`Workload`)."""
        return self.records_per_core

    def trace(self, core_id: int) -> Iterator[TraceRecord]:
        return self.reader.stream(core_id)

    def trace_batches(self, core_id: int) -> Iterator[TraceBatch]:
        """Chunked column replay: one bulk decode per stored chunk."""
        return self.reader.stream_batches(core_id)

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["trace_path"] = self.trace_path
        info["records_per_core"] = list(self.reader.record_counts)
        info["digest"] = self.reader.digest[:16]
        return info

    # ------------------------------------------------------------------ pickling

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["_reader"] = None  # holds parsed footer state; workers reopen the file
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
