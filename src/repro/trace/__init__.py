"""Binary trace capture, transform and replay.

Capture any registry workload to a compact, versioned ``.rtrace`` file
(:func:`record_workload` / :func:`record_named`), derive new scenarios from
captures without regenerating anything (:mod:`repro.trace.transform`), and
replay a file bit-identically as a first-class workload
(:class:`TraceWorkload`) — resolvable everywhere a workload name is
accepted via the ``trace:<path>`` form.  ``python -m repro.trace`` is the
command-line surface.
"""

from repro.trace.capture import record_named, record_workload
from repro.trace.format import (
    TraceFormatError,
    TraceMeta,
    TraceReader,
    TraceWriter,
    read_meta,
    trace_digest,
)
from repro.trace.transform import (
    filter_accesses,
    interleave_traces,
    remap_cores,
    scale_footprint,
    slice_trace,
)
from repro.trace.workload import TraceWorkload

__all__ = [
    "TraceFormatError",
    "TraceMeta",
    "TraceReader",
    "TraceWriter",
    "TraceWorkload",
    "read_meta",
    "record_named",
    "record_workload",
    "trace_digest",
    "filter_accesses",
    "interleave_traces",
    "remap_cores",
    "scale_footprint",
    "slice_trace",
]
