"""The ``.rtrace`` packed binary trace format.

Layout (all integers little-endian)::

    +-----------------------------------------------------------------+
    | magic "RTRC" (4) | version u16 | flags u16 | footer_offset u64  |
    +-----------------------------------------------------------------+
    | core 0 stream: chunk, chunk, ...                                |
    | core 1 stream: chunk, chunk, ...                                |
    | ...                                                             |
    +-----------------------------------------------------------------+
    | footer: length u32 | JSON {meta, index, digest}                 |
    +-----------------------------------------------------------------+

Each *chunk* is ``n_records u32 | payload_bytes u32 | payload``, where the
payload packs ``n_records`` records of 12 bytes each: a u32 word holding the
instruction gap (bit 31 = is_write) followed by the u64 address.  With the
compression flag set the payload is zlib-compressed; chunks stay
independently decodable either way, which is what makes both capture and
replay streamable — a million-record trace is never fully materialised.

The footer's ``index`` maps each core to ``(offset, nbytes, nrecords)`` so
per-core streams can be opened independently (the simulation engine
interleaves cores, so every stream gets its own file handle).  ``digest``
is a SHA-256 over the *uncompressed* packed records in core order plus the
replay-relevant metadata (name, core count, page size, mlp, per-core
record counts): two traces that replay identically share a digest
regardless of compression, while any difference a simulation could observe
changes it.  The campaign result store uses the digest as the workload
identity of a ``trace:`` cell (see
:func:`repro.experiments.runner.simulation_cell_key`).

The header keeps a fixed-offset ``footer_offset`` slot (patched on close)
rather than trailing magic so a truncated capture is detected loudly: an
unpatched offset of zero means the writer never completed.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.cpu.trace import TraceRecord, TraceStats, TraceStream, combine_stats

MAGIC = b"RTRC"
FORMAT_VERSION = 1
FLAG_COMPRESSED = 1

_HEADER = struct.Struct("<4sHHQ")
_CHUNK_HEADER = struct.Struct("<II")
_RECORD = struct.Struct("<IQ")
_WRITE_BIT = 1 << 31
_GAP_MASK = _WRITE_BIT - 1

#: Records packed per chunk (96 KB raw) — small enough to stream, large
#: enough that the per-chunk Python overhead is negligible.
CHUNK_RECORDS = 8192


class TraceFormatError(ValueError):
    """Raised when a file is not a valid (or complete) ``.rtrace``."""


@dataclass
class TraceMeta:
    """Everything a replay needs to stand in for the original workload.

    ``name``/``mlp``/``page_size``/``footprint_bytes``/``seed`` mirror the
    originating :class:`~repro.workloads.base.Workload` so a replayed
    simulation is indistinguishable from a generated one (including the
    ``workload`` field of its results).  ``source`` records provenance —
    generator build parameters for a capture, the operation lineage for a
    transform — purely for humans (``python -m repro.trace info``).
    """

    name: str
    num_cores: int
    page_size: int = 4096
    mlp: float = 6.0
    footprint_bytes: int = 0
    seed: int = 1
    source: Dict[str, object] = field(default_factory=dict)
    compressed: bool = False
    records_per_core: List[int] = field(default_factory=list)
    #: Combined multi-core summary (unique pages counted across cores).
    stats: Dict[str, object] = field(default_factory=dict)
    core_stats: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TraceMeta":
        from repro.util.serde import dataclass_from_dict

        return dataclass_from_dict(cls, payload)


def pack_records(records: List[TraceRecord]) -> bytes:
    """Pack records into the 12-byte wire form (write bit folded into gap)."""
    flat: List[int] = []
    for gap, addr, is_write in records:
        if not 0 <= gap <= _GAP_MASK:
            raise TraceFormatError(f"gap {gap} does not fit the 31-bit wire field")
        if addr < 0:
            raise TraceFormatError(f"negative address {addr}")
        flat.append(gap | _WRITE_BIT if is_write else gap)
        flat.append(addr)
    return struct.pack("<" + "IQ" * len(records), *flat)


def unpack_records(payload: bytes) -> Iterator[TraceRecord]:
    """Inverse of :func:`pack_records` (lazy)."""
    for word, addr in _RECORD.iter_unpack(payload):
        yield TraceRecord(word & _GAP_MASK, addr, bool(word & _WRITE_BIT))


# Chunk-sized Struct objects, keyed by record count.  Nearly every chunk
# holds exactly CHUNK_RECORDS records, so this dict stays tiny (the final
# short chunk of each core stream adds at most one entry per length).
_COLUMN_STRUCTS: Dict[int, struct.Struct] = {}


def unpack_columns(payload: bytes) -> Tuple[List[int], List[int], List[bool]]:
    """Decode a packed chunk into ``(gaps, addrs, writes)`` columns.

    One ``struct.unpack`` call decodes the whole chunk (versus one
    :class:`TraceRecord` construction per record in :func:`unpack_records`),
    which is what makes ``.rtrace`` replay cheap enough to feed the batch
    engine at full speed.
    """
    count = len(payload) // _RECORD.size
    decoder = _COLUMN_STRUCTS.get(count)
    if decoder is None:
        decoder = _COLUMN_STRUCTS[count] = struct.Struct("<" + "IQ" * count)
    flat = decoder.unpack(payload)
    words = flat[0::2]
    gaps = [word & _GAP_MASK for word in words]
    addrs = list(flat[1::2])
    writes = [word >= _WRITE_BIT for word in words]
    return gaps, addrs, writes


class TraceWriter:
    """Stream a trace to disk, one core at a time, in core order.

    Usage::

        writer = TraceWriter(path, meta)
        for core_id in range(meta.num_cores):
            writer.write_stream(workload.trace(core_id), limit=records)
        meta = writer.close()

    ``write_stream`` consumes lazily in :data:`CHUNK_RECORDS` batches and
    gathers per-core :class:`~repro.cpu.trace.TraceStats` (plus the
    cross-core page union) as a side effect, so the finished file is
    self-describing without a second pass.

    Usable as a context manager: leaving the block normally calls
    :meth:`close`; leaving it on an exception closes the handle and removes
    the partial file instead.
    """

    def __init__(self, path: str, meta: TraceMeta, compress: bool = False) -> None:
        self.path = path
        self.meta = meta
        self.compress = compress
        self._fh = open(path, "wb")
        self._fh.write(_HEADER.pack(MAGIC, FORMAT_VERSION, FLAG_COMPRESSED if compress else 0, 0))
        self._index: List[Tuple[int, int, int]] = []
        self._digest = hashlib.sha256()
        self._all_pages: set = set()
        self._per_core_stats: List[TraceStats] = []
        self._closed = False

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            # Abort: never leave an open handle or a half-written file behind
            # (the unpatched footer offset would mark it truncated anyway).
            self._fh.close()
            self._closed = True
            try:
                os.unlink(self.path)
            except OSError:
                pass
            return
        self.close()

    def write_stream(self, records: Iterable[TraceRecord], limit: Optional[int] = None) -> TraceStats:
        """Write the next core's stream (cores must be written in order)."""
        if self._closed:
            raise TraceFormatError("writer already closed")
        if len(self._index) >= self.meta.num_cores:
            raise TraceFormatError(f"trace already holds {self.meta.num_cores} core streams")
        offset = self._fh.tell()
        stream = TraceStream(records, page_size=self.meta.page_size)
        written = 0
        chunk: List[TraceRecord] = []
        for record in stream:
            chunk.append(record)
            written += 1
            if len(chunk) >= CHUNK_RECORDS:
                self._write_chunk(chunk)
                chunk = []
            if limit is not None and written >= limit:
                break
        if chunk:
            self._write_chunk(chunk)
        self._index.append((offset, self._fh.tell() - offset, written))
        self._all_pages |= stream.pages
        self._per_core_stats.append(stream.stats)
        self.meta.records_per_core.append(written)
        self.meta.core_stats.append(asdict(stream.stats))
        return stream.stats

    def _write_chunk(self, chunk: List[TraceRecord]) -> None:
        raw = pack_records(chunk)
        self._digest.update(raw)
        payload = zlib.compress(raw) if self.compress else raw
        self._fh.write(_CHUNK_HEADER.pack(len(chunk), len(payload)))
        self._fh.write(payload)

    def close(self) -> TraceMeta:
        """Finish the file: write the footer and patch the header offset."""
        if self._closed:
            return self.meta
        if len(self._index) != self.meta.num_cores:
            self._fh.close()
            raise TraceFormatError(
                f"expected {self.meta.num_cores} core streams, got {len(self._index)}"
            )
        meta = self.meta
        meta.compressed = self.compress
        meta.stats = asdict(combine_stats(self._per_core_stats, self._all_pages, meta.page_size))
        # Fold everything replay-relevant beyond the raw records into the
        # digest: the per-core record counts (the same flat record sequence
        # split differently across cores interleaves differently), and the
        # workload attributes that shape the simulated timing (mlp) or the
        # simulated system (page_size, num_cores) or the reported results
        # (name).  Provenance fields (seed, source) stay out — they do not
        # change what a replay computes.
        identity = (
            f"|{meta.name}|{meta.num_cores}|{meta.page_size}|{meta.mlp!r}"
            f"|{','.join(str(count) for count in meta.records_per_core)}"
        )
        self._digest.update(identity.encode("utf-8"))
        footer_offset = self._fh.tell()
        footer = json.dumps(
            {"meta": meta.to_dict(), "index": self._index, "digest": self._digest.hexdigest()},
            sort_keys=True,
        ).encode("utf-8")
        self._fh.write(struct.pack("<I", len(footer)))
        self._fh.write(footer)
        self._fh.seek(_HEADER.size - 8)
        self._fh.write(struct.pack("<Q", footer_offset))
        self._fh.close()
        self._closed = True
        return meta


class TraceReader:
    """Random access to an ``.rtrace`` file's metadata and per-core streams."""

    def __init__(self, path: str) -> None:
        self.path = path
        with open(path, "rb") as fh:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise TraceFormatError(f"{path}: too short to be a trace file")
            magic, version, flags, footer_offset = _HEADER.unpack(header)
            if magic != MAGIC:
                raise TraceFormatError(f"{path}: bad magic {magic!r} (not an .rtrace file)")
            if version != FORMAT_VERSION:
                raise TraceFormatError(
                    f"{path}: format version {version} unsupported (reader supports {FORMAT_VERSION})"
                )
            if footer_offset == 0:
                raise TraceFormatError(f"{path}: truncated trace (capture never completed)")
            fh.seek(footer_offset)
            (footer_len,) = struct.unpack("<I", fh.read(4))
            footer = json.loads(fh.read(footer_len).decode("utf-8"))
        self.compressed = bool(flags & FLAG_COMPRESSED)
        self.meta = TraceMeta.from_dict(footer["meta"])
        self.index: List[Tuple[int, int, int]] = [tuple(entry) for entry in footer["index"]]
        self.digest: str = footer["digest"]

    @property
    def num_cores(self) -> int:
        return self.meta.num_cores

    @property
    def record_counts(self) -> List[int]:
        return [entry[2] for entry in self.index]

    def stream(self, core_id: int) -> Iterator[TraceRecord]:
        """Lazily yield ``core_id``'s records.

        Each call opens its own file handle, so all cores' streams can be
        consumed concurrently (the engine interleaves cores by local clock).
        """
        if not 0 <= core_id < self.num_cores:
            raise ValueError(f"core_id {core_id} out of range for {self.num_cores}-core trace")
        offset, _nbytes, nrecords = self.index[core_id]
        compressed = self.compressed
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            remaining = nrecords
            while remaining > 0:
                nrec, payload_len = _CHUNK_HEADER.unpack(fh.read(_CHUNK_HEADER.size))
                payload = fh.read(payload_len)
                if compressed:
                    payload = zlib.decompress(payload)
                yield from unpack_records(payload)
                remaining -= nrec

    def stream_batches(self, core_id: int) -> Iterator[Tuple[List[int], List[int], List[bool]]]:
        """Lazily yield ``core_id``'s records as per-chunk column batches.

        The concatenated batches replay exactly what :meth:`stream` yields;
        each stored chunk becomes one batch via a single bulk decode.
        """
        if not 0 <= core_id < self.num_cores:
            raise ValueError(f"core_id {core_id} out of range for {self.num_cores}-core trace")
        offset, _nbytes, nrecords = self.index[core_id]
        compressed = self.compressed
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            remaining = nrecords
            while remaining > 0:
                nrec, payload_len = _CHUNK_HEADER.unpack(fh.read(_CHUNK_HEADER.size))
                payload = fh.read(payload_len)
                if compressed:
                    payload = zlib.decompress(payload)
                yield unpack_columns(payload)
                remaining -= nrec

    def streams(self) -> List[Iterator[TraceRecord]]:
        """One lazy stream per core, in core order."""
        return [self.stream(core_id) for core_id in range(self.num_cores)]


def read_meta(path: str) -> TraceMeta:
    """Parse just the metadata of a trace file (cheap: header + footer)."""
    return TraceReader(path).meta


def trace_digest(path: str) -> str:
    """Content digest of a trace file (identical records => identical digest)."""
    return TraceReader(path).digest
