"""Watchpoints: declarative triggers on addresses, pages, and cache sets.

A :class:`Watchpoint` names something to watch — an exact address, a page
number, or an LLC set index — and which hit kinds to report:

* ``touch`` — a record accessed the watched address/page/set;
* ``fill`` — the watched page became DRAM-cache resident;
* ``evict`` — the watched page left the DRAM cache (including evictions
  caused by *other* pages' accesses: residency is re-checked after every
  record, not only on matching accesses);
* ``writeback`` — an LLC writeback targeted the watched line/page/set.

:class:`WatchSession` owns a set of watchpoints for one engine run.  It is
both the per-record hook (``System._obs_watch_hook`` — a detached engine
pays only the existing ``is None`` check, and results are bit-identical
either way because the hook only reads state) and a
:class:`~repro.sim.batch.RunController` whose edges flush buffered hits to
the structured :class:`~repro.obs.events.EventLog` (the log opens its file
per emit, so hits are buffered in memory and flushed at run edges — never
from inside the per-record loop).

Hits are fully deterministic: each carries the global record index, core,
address and page that fired it, all derived from simulation state.  Only
the event-log envelope (``ts``/``pid``) differs between serial and worker
processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.batch import EngineCursor, RunController

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import EventLog
    from repro.sim.system import System

#: What a watchpoint can be anchored to.
WATCH_KINDS = ("addr", "page", "set")

#: Hit kinds a watchpoint can report.
HIT_KINDS = ("touch", "fill", "evict", "writeback")

#: Records between hit flushes to the event log (a run-cut granularity, not
#: a correctness knob: hits are buffered exactly and flushed in order).
DEFAULT_FLUSH_INTERVAL = 4096


class Watchpoint:
    """One declarative trigger; immutable after construction."""

    __slots__ = ("wid", "kind", "value", "on")

    def __init__(
        self,
        wid: str,
        kind: str,
        value: int,
        on: Optional[Sequence[str]] = None,
    ) -> None:
        if kind not in WATCH_KINDS:
            raise ValueError(f"unknown watch kind {kind!r}; expected one of {WATCH_KINDS}")
        if value < 0:
            raise ValueError(f"watch value must be non-negative, got {value}")
        hit_kinds = tuple(on) if on is not None else HIT_KINDS
        for hit in hit_kinds:
            if hit not in HIT_KINDS:
                raise ValueError(f"unknown hit kind {hit!r}; expected one of {HIT_KINDS}")
        if kind == "set" and ("fill" in hit_kinds or "evict" in hit_kinds) and on is not None:
            raise ValueError("set watchpoints cannot report fill/evict (page-granular)")
        if kind == "set" and on is None:
            hit_kinds = ("touch", "writeback")
        self.wid = str(wid)
        self.kind = kind
        self.value = int(value)
        self.on = hit_kinds

    def to_dict(self) -> Dict[str, Any]:
        return {"wid": self.wid, "kind": self.kind, "value": self.value, "on": list(self.on)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Watchpoint":
        return cls(
            wid=payload["wid"],
            kind=payload["kind"],
            value=payload["value"],
            on=payload["on"],
        )

    @classmethod
    def parse(cls, spec: str, wid: Optional[str] = None) -> "Watchpoint":
        """Parse a CLI spec ``kind:value[:hit1|hit2]``; values accept 0x….

        Examples: ``page:0x12``, ``addr:4096:touch``, ``set:7``,
        ``page:300:fill|evict``.
        """
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"bad watch spec {spec!r}; expected kind:value[:hit1|hit2] "
                f"with kind in {WATCH_KINDS}"
            )
        kind = parts[0].strip()
        value = int(parts[1], 0)
        on: Optional[List[str]] = None
        if len(parts) == 3:
            on = [token.strip() for token in parts[2].split("|") if token.strip()]
        if wid is None:
            wid = spec
        return cls(wid=wid, kind=kind, value=value, on=on)

    def describe(self) -> str:
        return f"{self.wid}: {self.kind}:{hex(self.value)} on {'|'.join(self.on)}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Watchpoint({self.describe()})"


class WatchSession(RunController):
    """A set of watchpoints attached to one engine run.

    Use::

        watch = WatchSession([Watchpoint("hot", "page", 0x12)], events=log)
        watch.attach(system)
        engine.run(..., controller=watch)
        watch.detach()

    ``attach`` installs the per-record hook (disabling the batch engine's
    inline hit path so every record is observed — the slowdown is the same
    mechanism the latency-histogram observer uses, and results stay
    bit-identical).  As a controller, the session flushes buffered hits to
    the event log every ``flush_interval`` records and at run end.
    """

    def __init__(
        self,
        watchpoints: Sequence[Watchpoint] = (),
        events: Optional["EventLog"] = None,
        flush_interval: int = DEFAULT_FLUSH_INTERVAL,
    ) -> None:
        if flush_interval <= 0:
            raise ValueError("flush_interval must be positive")
        self.watchpoints: List[Watchpoint] = []
        self.events = events
        self.flush_interval = flush_interval
        #: Every hit observed, in record order (deterministic payloads).
        self.hits: List[Dict[str, Any]] = []
        #: Hits not yet written to the event log.
        self._pending: List[Dict[str, Any]] = []
        #: Global record counter (equals the engine's processed count while
        #: attached from the start of the run / resume point).
        self.records = 0
        self._system: Optional["System"] = None
        self._page_size = 0
        self._line_bits = 0
        self._set_mask = 0
        # wid -> (watched page, last-known residency); page watches only.
        self._resident: Dict[str, Tuple[int, bool]] = {}
        for watchpoint in watchpoints:
            self.add(watchpoint)

    # ------------------------------------------------------------- lifecycle

    def attach(self, system: "System", start_record: int = 0) -> None:
        """Install the per-record hook on ``system``."""
        if system._obs_watch_hook is not None:
            raise ValueError("system already has a watch hook attached")
        self._system = system
        self._page_size = system.page_size
        l3 = system.hierarchy.l3
        self._line_bits = l3._line_bits
        self._set_mask = l3._set_mask
        self.records = start_record
        for watchpoint in self.watchpoints:
            self._init_residency(watchpoint)
        system._obs_watch_hook = self._on_record

    def detach(self) -> None:
        """Remove the hook and flush any buffered hits."""
        if self._system is not None:
            self._system._obs_watch_hook = None
            self._system = None
        self.flush()

    def add(self, watchpoint: Watchpoint) -> None:
        """Add a watchpoint (allowed while attached, between records)."""
        if any(existing.wid == watchpoint.wid for existing in self.watchpoints):
            raise ValueError(f"duplicate watchpoint id {watchpoint.wid!r}")
        self.watchpoints.append(watchpoint)
        if self._system is not None:
            self._init_residency(watchpoint)
        if self.events is not None:
            self.events.emit("watch_set", **watchpoint.to_dict())

    def remove(self, wid: str) -> bool:
        """Remove the watchpoint named ``wid``; returns whether it existed."""
        for index, watchpoint in enumerate(self.watchpoints):
            if watchpoint.wid == wid:
                del self.watchpoints[index]
                self._resident.pop(wid, None)
                if self.events is not None:
                    self.events.emit("watch_clear", wid=wid)
                return True
        return False

    def _init_residency(self, watchpoint: Watchpoint) -> None:
        if watchpoint.kind == "set":
            return
        if "fill" not in watchpoint.on and "evict" not in watchpoint.on:
            return
        if watchpoint.kind == "page":
            page = watchpoint.value
        else:
            page = watchpoint.value // self._page_size
        assert self._system is not None
        resident = bool(self._system.scheme.is_resident(page))
        self._resident[watchpoint.wid] = (page, resident)

    # ------------------------------------------------------------- the hook

    def _on_record(self, core_id: int, addr: int, is_write: bool, outcome: Any) -> None:
        """Per-record hook: match every watchpoint against this record.

        Called at the end of ``process_record_cols`` — reads state only, so
        simulation results are bit-identical with or without it.
        """
        record = self.records
        self.records = record + 1
        page = addr // self._page_size
        line_bits = self._line_bits
        set_index = (addr >> line_bits) & self._set_mask
        writebacks = outcome.writebacks
        is_resident = self._system.scheme.is_resident if self._system is not None else None
        for watchpoint in self.watchpoints:
            kind = watchpoint.kind
            on = watchpoint.on
            if kind == "page":
                touched = page == watchpoint.value
            elif kind == "addr":
                touched = addr == watchpoint.value
            else:
                touched = set_index == watchpoint.value
            if touched and "touch" in on:
                self._hit(watchpoint, "touch", record, core_id, addr, page, is_write)
            if writebacks and "writeback" in on:
                for writeback in writebacks:
                    wb_addr = writeback.addr
                    if kind == "page":
                        match = wb_addr // self._page_size == watchpoint.value
                    elif kind == "addr":
                        match = wb_addr >> line_bits == watchpoint.value >> line_bits
                    else:
                        match = (wb_addr >> line_bits) & self._set_mask == watchpoint.value
                    if match:
                        self._hit(
                            watchpoint, "writeback", record, core_id, addr, page,
                            is_write, wb_addr=wb_addr,
                        )
            state = self._resident.get(watchpoint.wid)
            if state is not None and is_resident is not None:
                watched_page, was_resident = state
                now_resident = bool(is_resident(watched_page))
                if now_resident != was_resident:
                    self._resident[watchpoint.wid] = (watched_page, now_resident)
                    hit_kind = "fill" if now_resident else "evict"
                    if hit_kind in on:
                        self._hit(watchpoint, hit_kind, record, core_id, addr, page, is_write)

    def _hit(
        self,
        watchpoint: Watchpoint,
        hit_kind: str,
        record: int,
        core_id: int,
        addr: int,
        page: int,
        is_write: bool,
        wb_addr: Optional[int] = None,
    ) -> None:
        hit: Dict[str, Any] = {
            "watch": watchpoint.wid,
            "kind": hit_kind,
            "record": record,
            "core": core_id,
            "addr": addr,
            "page": page,
            "write": bool(is_write),
        }
        if wb_addr is not None:
            hit["wb_addr"] = wb_addr
        self.hits.append(hit)
        self._pending.append(hit)

    # ------------------------------------------------- controller protocol

    def next_stop(self, processed: int) -> Optional[int]:
        return processed + self.flush_interval

    def on_edge(self, cursor: EngineCursor) -> bool:
        self.flush()
        return False

    def on_finish(self, cursor: EngineCursor) -> None:
        self.flush()

    def flush(self) -> int:
        """Emit buffered hits to the event log; returns the count emitted."""
        pending = self._pending
        if not pending:
            return 0
        count = len(pending)
        if self.events is not None:
            for hit in pending:
                self.events.emit("watch_hit", **hit)
        self._pending = []
        return count

    def summary(self) -> Dict[str, Any]:
        """Hit counts per watchpoint and per hit kind."""
        per_watch: Dict[str, int] = {}
        per_kind: Dict[str, int] = {}
        for hit in self.hits:
            per_watch[hit["watch"]] = per_watch.get(hit["watch"], 0) + 1
            per_kind[hit["kind"]] = per_kind.get(hit["kind"], 0) + 1
        return {
            "watchpoints": [w.describe() for w in self.watchpoints],
            "hits": len(self.hits),
            "per_watch": per_watch,
            "per_kind": per_kind,
            "records": self.records,
        }
