"""``python -m repro.obs`` — summarize, merge and export observability data.

Subcommands::

    summarize  describe an event log, a timeline file, or a store's timelines
    merge      merge several JSONL event logs into one, ordered by timestamp
    export     export stored timelines as CSV or JSONL

Timelines come out of ``SimulationResults.timeline`` (attach a
:class:`~repro.obs.timeline.TimelineObserver`, or pass ``--timeline N`` to
``python -m repro.campaign run``); event logs are written by the engine,
the campaign executors and the driver (``<store>/obs/events.jsonl``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.events import merge_events, read_events, validate_event, write_events
from repro.obs.timeline import Timeline


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize, merge and export run telemetry (timelines + event logs).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser("summarize", help="describe an event log, timeline, or store")
    group = summarize.add_mutually_exclusive_group(required=True)
    group.add_argument("--events", help="JSONL event log path")
    group.add_argument("--timeline", help="timeline file path (CSV or JSONL)")
    group.add_argument("--store", help="result-store directory: summarize stored timelines")
    summarize.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    merge = sub.add_parser("merge", help="merge event logs ordered by timestamp")
    merge.add_argument("--inputs", required=True, nargs="+", help="JSONL event log paths")
    merge.add_argument("--output", required=True, help="merged JSONL output path")
    merge.add_argument("--validate", action="store_true",
                       help="schema-check every event while merging")

    export = sub.add_parser("export", help="export stored timelines as CSV or JSONL")
    export.add_argument("--store", required=True, help="result-store directory")
    export.add_argument("--label", help="filter: scheme label")
    export.add_argument("--workload", help="filter: workload name")
    export.add_argument("--seed", type=int, help="filter: RNG seed")
    export.add_argument("--all", action="store_true",
                        help="export every matching cell as one long-format table "
                             "(default: filters must select exactly one cell)")
    export.add_argument("--format", choices=("csv", "jsonl"), default="csv")
    export.add_argument("--output", help="output file (default: stdout)")
    return parser


# ---------------------------------------------------------------- summarize


def _load_timeline_file(path: str) -> Timeline:
    text = Path(path).read_text(encoding="utf-8")
    head = text.lstrip()[:1]
    if head == "{":
        return Timeline.from_jsonl(text)
    return Timeline.from_csv(text)


def _summarize_events(path: str) -> Dict[str, object]:
    if not Path(path).exists():
        raise ValueError(f"no event log at {path}")
    records = read_events(path, validate=True)
    by_type: Dict[str, int] = {}
    for record in records:
        by_type[record["event"]] = by_type.get(record["event"], 0) + 1
    errors = [record for record in records if record["event"] == "cell_error"]
    span = (records[-1]["ts"] - records[0]["ts"]) if len(records) > 1 else 0.0
    return {
        "path": path,
        "events": len(records),
        "by_type": dict(sorted(by_type.items())),
        "span_seconds": round(span, 3),
        "errors": [
            {"key": record.get("key"), "cell": record.get("cell"),
             "error": record.get("error")}
            for record in errors
        ],
    }


def _stored_timelines(store_dir: str, label: Optional[str] = None,
                      workload: Optional[str] = None, seed: Optional[int] = None) -> List[Dict]:
    """(meta, key, Timeline) triples for store cells that captured one."""
    from repro.campaign.store import ResultStore
    from repro.sim.results import SimulationResults

    store = ResultStore(store_dir, create=False)
    selected: List[Dict] = []
    for record in store.records():
        if "result" not in record:
            continue
        payload = record["result"]
        if not payload.get("timeline"):
            continue
        meta = record.get("meta", {})
        if label is not None and meta.get("label") != label:
            continue
        if workload is not None and meta.get("workload") != workload:
            continue
        if seed is not None and meta.get("seed") != seed:
            continue
        result = SimulationResults.from_dict(payload)
        selected.append({
            "key": record["key"],
            "meta": meta,
            "timeline": Timeline.from_dict(result.timeline),
        })
    return selected


def cmd_summarize(args: argparse.Namespace, stream) -> int:
    if args.events:
        info = _summarize_events(args.events)
        if args.json:
            json.dump(info, stream, indent=2, sort_keys=True)
            stream.write("\n")
            return 0
        print(f"events: {info['events']} ({info['path']})", file=stream)
        print(f"span: {info['span_seconds']} s", file=stream)
        for event, count in info["by_type"].items():
            print(f"  {event:<16s} {count}", file=stream)
        for error in info["errors"]:
            print(f"  ERROR {error['cell'] or error['key']}: "
                  f"{(error['error'] or '').splitlines()[0] if error['error'] else '?'}",
                  file=stream)
        return 0
    if args.timeline:
        timeline = _load_timeline_file(args.timeline)
        info = dict(timeline.summary(), path=args.timeline)
        if args.json:
            json.dump(info, stream, indent=2, sort_keys=True)
            stream.write("\n")
            return 0
        print(f"timeline: {args.timeline}", file=stream)
        for key, value in info.items():
            if key != "path":
                print(f"  {key:<18s} {value}", file=stream)
        return 0
    entries = _stored_timelines(args.store)
    rows = [
        dict({"key": entry["key"][:12],
              "label": entry["meta"].get("label", "?"),
              "workload": entry["meta"].get("workload", "?"),
              "seed": entry["meta"].get("seed", "?")},
             **entry["timeline"].summary())
        for entry in entries
    ]
    if args.json:
        json.dump(rows, stream, indent=2, sort_keys=True)
        stream.write("\n")
        return 0
    print(f"store {args.store}: {len(rows)} cell(s) with timelines", file=stream)
    for row in rows:
        print(f"  {row['label']}/{row['workload']} seed={row['seed']}: "
              f"{row['measured_windows']} windows, hit ratio "
              f"{row['hit_ratio_min']:.3f}..{row['hit_ratio_max']:.3f}, "
              f"p95 latency {row['latency_p95']:.0f} cyc", file=stream)
    return 0


# -------------------------------------------------------------------- merge


def cmd_merge(args: argparse.Namespace, stream) -> int:
    records = merge_events(args.inputs, validate=args.validate)
    count = write_events(records, args.output)
    print(f"merged {count} events from {len(args.inputs)} log(s) into {args.output}",
          file=stream)
    return 0


# ------------------------------------------------------------------- export


#: Identity columns prefixed to long-format (--all) exports.
_IDENTITY_COLUMNS = ("label", "workload", "seed", "key")


def _long_format_csv(entries: List[Dict]) -> str:
    import csv as _csv
    import io

    from repro.obs.timeline import _CSV_COLUMNS

    buffer = io.StringIO()
    writer = _csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(_IDENTITY_COLUMNS) + list(_CSV_COLUMNS))
    for entry in entries:
        meta = entry["meta"]
        identity = [meta.get("label", ""), meta.get("workload", ""),
                    meta.get("seed", ""), entry["key"]]
        for window in entry["timeline"].windows:
            row = window.to_dict()
            row["latency_counts"] = "|".join(str(c) for c in row["latency_counts"])
            writer.writerow(identity + [row[column] for column in _CSV_COLUMNS])
    return buffer.getvalue()


def _long_format_jsonl(entries: List[Dict]) -> str:
    lines = []
    for entry in entries:
        meta = entry["meta"]
        identity = {"label": meta.get("label"), "workload": meta.get("workload"),
                    "seed": meta.get("seed"), "key": entry["key"]}
        for window in entry["timeline"].windows:
            lines.append(json.dumps(dict(identity, **window.to_dict()), sort_keys=True))
    return "\n".join(lines) + "\n" if lines else ""


def cmd_export(args: argparse.Namespace, stream) -> int:
    entries = _stored_timelines(args.store, label=args.label,
                                workload=args.workload, seed=args.seed)
    if not entries:
        raise ValueError(f"no stored timelines match in {args.store} "
                         "(run cells with --timeline N to capture them)")
    if args.all:
        text = (_long_format_csv(entries) if args.format == "csv"
                else _long_format_jsonl(entries))
    else:
        if len(entries) > 1:
            matches = ", ".join(
                f"{e['meta'].get('label', '?')}/{e['meta'].get('workload', '?')}"
                f" seed={e['meta'].get('seed', '?')}" for e in entries
            )
            raise ValueError(
                f"{len(entries)} cells match ({matches}); narrow with "
                "--label/--workload/--seed or pass --all for a combined table"
            )
        timeline = entries[0]["timeline"]
        text = timeline.to_csv() if args.format == "csv" else timeline.to_jsonl()
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}", file=stream)
    else:
        stream.write(text)
    return 0


def main(argv: Optional[List[str]] = None, stream=None) -> int:
    stream = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "summarize":
            return cmd_summarize(args, stream)
        if args.command == "merge":
            return cmd_merge(args, stream)
        return cmd_export(args, stream)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
