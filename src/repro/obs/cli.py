"""``python -m repro.obs`` — summarize, merge, export and inspect runs.

Subcommands::

    summarize      describe an event log, a timeline file, or a store's timelines
    merge          merge several JSONL event logs into one, ordered by timestamp
    export         export stored timelines as CSV or JSONL
    export-chrome  render timelines/events as Chrome trace JSON (Perfetto)
    attach         attach to a live run's inspector mailbox (pause/step/dump)
    replay         rebuild an engine from a snapshot and re-run the remainder

Timelines come out of ``SimulationResults.timeline`` (attach a
:class:`~repro.obs.timeline.TimelineObserver`, or pass ``--timeline N`` to
``python -m repro.campaign run``); event logs are written by the engine,
the campaign executors and the driver (``<store>/obs/events.jsonl``);
inspector mailboxes live wherever the run placed its control directory
(see :mod:`repro.obs.inspect`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.events import merge_events, read_events, validate_event, write_events
from repro.obs.timeline import Timeline


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize, merge and export run telemetry (timelines + event logs).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser("summarize", help="describe an event log, timeline, or store")
    group = summarize.add_mutually_exclusive_group(required=True)
    group.add_argument("--events", help="JSONL event log path")
    group.add_argument("--timeline", help="timeline file path (CSV or JSONL)")
    group.add_argument("--store", help="result-store directory: summarize stored timelines")
    summarize.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    merge = sub.add_parser("merge", help="merge event logs ordered by timestamp")
    merge.add_argument("--inputs", required=True, nargs="+", help="JSONL event log paths")
    merge.add_argument("--output", required=True, help="merged JSONL output path")
    merge.add_argument("--validate", action="store_true",
                       help="schema-check every event while merging")

    export = sub.add_parser("export", help="export stored timelines as CSV or JSONL")
    export.add_argument("--store", required=True, help="result-store directory")
    export.add_argument("--label", help="filter: scheme label")
    export.add_argument("--workload", help="filter: workload name")
    export.add_argument("--seed", type=int, help="filter: RNG seed")
    export.add_argument("--all", action="store_true",
                        help="export every matching cell as one long-format table "
                             "(default: filters must select exactly one cell)")
    export.add_argument("--format", choices=("csv", "jsonl"), default="csv")
    export.add_argument("--output", help="output file (default: stdout)")

    chrome = sub.add_parser(
        "export-chrome",
        help="export telemetry as Chrome trace-event JSON (open in ui.perfetto.dev)",
    )
    chrome.add_argument("--timeline", help="timeline file (CSV or JSONL); record-count axis")
    chrome.add_argument("--store", help="result-store directory: pick one stored timeline")
    chrome.add_argument("--label", help="filter: scheme label (with --store)")
    chrome.add_argument("--workload", help="filter: workload name (with --store)")
    chrome.add_argument("--seed", type=int, help="filter: RNG seed (with --store)")
    chrome.add_argument("--events", help="JSONL event log: instants alongside a "
                                         "timeline, or wall-clock spans alone")
    chrome.add_argument("--output", required=True, help="trace JSON output path")

    attach = sub.add_parser("attach", help="attach to a live run's inspector mailbox")
    attach.add_argument("dir", help="inspector control directory (holds state.json)")
    attach.add_argument("--timeout", type=float, default=30.0,
                        help="seconds to wait for each reply (default 30)")

    replay = sub.add_parser(
        "replay", help="restore an engine snapshot and re-run the remainder"
    )
    replay.add_argument("snapshot", help="snapshot JSON (from dump / --checkpoint-warmup)")
    replay.add_argument("--records", type=int, required=True,
                        help="records per core of the ORIGINAL run (resume target)")
    replay.add_argument("--warmup", type=int, default=0,
                        help="warmup records per core of the original run")
    replay.add_argument("--engine", choices=("scalar", "batch", "numpy"),
                        help="engine mode (default: batch)")
    replay.add_argument("--scale", type=float,
                        help="workload scale override (when the snapshot meta lacks one)")
    replay.add_argument("--timeline", type=int,
                        help="attach a TimelineObserver with this interval")
    replay.add_argument("--timeline-output", help="write the replay timeline here (CSV)")
    return parser


# ---------------------------------------------------------------- summarize


def _load_timeline_file(path: str) -> Timeline:
    text = Path(path).read_text(encoding="utf-8")
    head = text.lstrip()[:1]
    if head == "{":
        return Timeline.from_jsonl(text)
    return Timeline.from_csv(text)


def _summarize_events(path: str) -> Dict[str, object]:
    if not Path(path).exists():
        raise ValueError(f"no event log at {path}")
    records = read_events(path, validate=True)
    by_type: Dict[str, int] = {}
    for record in records:
        by_type[record["event"]] = by_type.get(record["event"], 0) + 1
    errors = [record for record in records if record["event"] == "cell_error"]
    span = (records[-1]["ts"] - records[0]["ts"]) if len(records) > 1 else 0.0
    return {
        "path": path,
        "events": len(records),
        "by_type": dict(sorted(by_type.items())),
        "span_seconds": round(span, 3),
        "errors": [
            {"key": record.get("key"), "cell": record.get("cell"),
             "error": record.get("error")}
            for record in errors
        ],
    }


def _stored_timelines(store_dir: str, label: Optional[str] = None,
                      workload: Optional[str] = None, seed: Optional[int] = None) -> List[Dict]:
    """(meta, key, Timeline) triples for store cells that captured one."""
    from repro.campaign.store import ResultStore
    from repro.sim.results import SimulationResults

    store = ResultStore(store_dir, create=False)
    selected: List[Dict] = []
    for record in store.records():
        if "result" not in record:
            continue
        payload = record["result"]
        if not payload.get("timeline"):
            continue
        meta = record.get("meta", {})
        if label is not None and meta.get("label") != label:
            continue
        if workload is not None and meta.get("workload") != workload:
            continue
        if seed is not None and meta.get("seed") != seed:
            continue
        result = SimulationResults.from_dict(payload)
        selected.append({
            "key": record["key"],
            "meta": meta,
            "timeline": Timeline.from_dict(result.timeline),
        })
    return selected


def cmd_summarize(args: argparse.Namespace, stream) -> int:
    if args.events:
        info = _summarize_events(args.events)
        if args.json:
            json.dump(info, stream, indent=2, sort_keys=True)
            stream.write("\n")
            return 0
        print(f"events: {info['events']} ({info['path']})", file=stream)
        print(f"span: {info['span_seconds']} s", file=stream)
        for event, count in info["by_type"].items():
            print(f"  {event:<16s} {count}", file=stream)
        for error in info["errors"]:
            print(f"  ERROR {error['cell'] or error['key']}: "
                  f"{(error['error'] or '').splitlines()[0] if error['error'] else '?'}",
                  file=stream)
        return 0
    if args.timeline:
        timeline = _load_timeline_file(args.timeline)
        info = dict(timeline.summary(), path=args.timeline)
        if args.json:
            json.dump(info, stream, indent=2, sort_keys=True)
            stream.write("\n")
            return 0
        print(f"timeline: {args.timeline}", file=stream)
        for key, value in info.items():
            if key != "path":
                print(f"  {key:<18s} {value}", file=stream)
        return 0
    entries = _stored_timelines(args.store)
    rows = [
        dict({"key": entry["key"][:12],
              "label": entry["meta"].get("label", "?"),
              "workload": entry["meta"].get("workload", "?"),
              "seed": entry["meta"].get("seed", "?")},
             **entry["timeline"].summary())
        for entry in entries
    ]
    if args.json:
        json.dump(rows, stream, indent=2, sort_keys=True)
        stream.write("\n")
        return 0
    print(f"store {args.store}: {len(rows)} cell(s) with timelines", file=stream)
    for row in rows:
        print(f"  {row['label']}/{row['workload']} seed={row['seed']}: "
              f"{row['measured_windows']} windows, hit ratio "
              f"{row['hit_ratio_min']:.3f}..{row['hit_ratio_max']:.3f}, "
              f"p95 latency {row['latency_p95']:.0f} cyc", file=stream)
    return 0


# -------------------------------------------------------------------- merge


def cmd_merge(args: argparse.Namespace, stream) -> int:
    records = merge_events(args.inputs, validate=args.validate)
    count = write_events(records, args.output)
    print(f"merged {count} events from {len(args.inputs)} log(s) into {args.output}",
          file=stream)
    return 0


# ------------------------------------------------------------------- export


#: Identity columns prefixed to long-format (--all) exports.
_IDENTITY_COLUMNS = ("label", "workload", "seed", "key")


def _long_format_csv(entries: List[Dict]) -> str:
    import csv as _csv
    import io

    from repro.obs.timeline import _CSV_COLUMNS

    buffer = io.StringIO()
    writer = _csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(_IDENTITY_COLUMNS) + list(_CSV_COLUMNS))
    for entry in entries:
        meta = entry["meta"]
        identity = [meta.get("label", ""), meta.get("workload", ""),
                    meta.get("seed", ""), entry["key"]]
        for window in entry["timeline"].windows:
            row = window.to_dict()
            row["latency_counts"] = "|".join(str(c) for c in row["latency_counts"])
            writer.writerow(identity + [row[column] for column in _CSV_COLUMNS])
    return buffer.getvalue()


def _long_format_jsonl(entries: List[Dict]) -> str:
    lines = []
    for entry in entries:
        meta = entry["meta"]
        identity = {"label": meta.get("label"), "workload": meta.get("workload"),
                    "seed": meta.get("seed"), "key": entry["key"]}
        for window in entry["timeline"].windows:
            lines.append(json.dumps(dict(identity, **window.to_dict()), sort_keys=True))
    return "\n".join(lines) + "\n" if lines else ""


def cmd_export(args: argparse.Namespace, stream) -> int:
    entries = _stored_timelines(args.store, label=args.label,
                                workload=args.workload, seed=args.seed)
    if not entries:
        raise ValueError(f"no stored timelines match in {args.store} "
                         "(run cells with --timeline N to capture them)")
    if args.all:
        text = (_long_format_csv(entries) if args.format == "csv"
                else _long_format_jsonl(entries))
    else:
        if len(entries) > 1:
            matches = ", ".join(
                f"{e['meta'].get('label', '?')}/{e['meta'].get('workload', '?')}"
                f" seed={e['meta'].get('seed', '?')}" for e in entries
            )
            raise ValueError(
                f"{len(entries)} cells match ({matches}); narrow with "
                "--label/--workload/--seed or pass --all for a combined table"
            )
        timeline = entries[0]["timeline"]
        text = timeline.to_csv() if args.format == "csv" else timeline.to_jsonl()
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}", file=stream)
    else:
        stream.write(text)
    return 0


# ----------------------------------------------------------- export-chrome


def cmd_export_chrome(args: argparse.Namespace, stream) -> int:
    from repro.obs.export_chrome import events_to_trace, timeline_to_trace, write_trace

    if args.timeline and args.store:
        raise ValueError("--timeline and --store are mutually exclusive")
    records = read_events(args.events) if args.events else None
    if args.events and records is not None and not records:
        raise ValueError(f"no events in {args.events}")
    timeline = None
    label = "simulation"
    if args.timeline:
        timeline = _load_timeline_file(args.timeline)
    elif args.store:
        entries = _stored_timelines(args.store, label=args.label,
                                    workload=args.workload, seed=args.seed)
        if not entries:
            raise ValueError(f"no stored timelines match in {args.store} "
                             "(run cells with --timeline N to capture them)")
        if len(entries) > 1:
            matches = ", ".join(
                f"{e['meta'].get('label', '?')}/{e['meta'].get('workload', '?')}"
                f" seed={e['meta'].get('seed', '?')}" for e in entries
            )
            raise ValueError(f"{len(entries)} cells match ({matches}); narrow "
                             "with --label/--workload/--seed")
        meta = entries[0]["meta"]
        label = f"{meta.get('label', '?')}/{meta.get('workload', '?')}"
        timeline = entries[0]["timeline"]
    if timeline is not None:
        trace = timeline_to_trace(timeline, events=records, label=label)
        axis = "record-count axis (1 us = 1 record)"
    elif records is not None:
        trace = events_to_trace(records)
        axis = "wall-clock axis"
    else:
        raise ValueError("provide --timeline, --store, or --events")
    count = write_trace(trace, args.output)
    print(f"wrote {count} trace events to {args.output} on the {axis}; "
          "open in ui.perfetto.dev or chrome://tracing", file=stream)
    return 0


# ------------------------------------------------------------------- attach


#: One usage line per inspector command (shown on attach and on 'help').
_ATTACH_HELP = (
    "commands: state | pause [N] | resume | step [n] | dump [path] | "
    "watch <kind:value[:hits]> | unwatch <wid> | watches | quit | detach"
)


def _attach_command(client, line: str, stream) -> bool:
    """Execute one attach-shell line; returns False when the shell ends."""
    tokens = line.split(None, 1)
    if not tokens:
        return True
    name, rest = tokens[0], (tokens[1].strip() if len(tokens) > 1 else "")
    if name in ("detach", "exit"):
        return False
    if name == "help":
        print(_ATTACH_HELP, file=stream)
        return True
    try:
        if name == "state":
            reply = client.request("state")
        elif name == "pause":
            reply = client.request("pause", **({"at": int(rest, 0)} if rest else {}))
        elif name == "resume":
            reply = client.request("resume")
        elif name == "step":
            reply = client.request("step", n=int(rest, 0) if rest else 1)
        elif name == "dump":
            reply = client.request("dump", **({"path": rest} if rest else {}))
        elif name == "watch":
            if not rest:
                raise ValueError("usage: watch kind:value[:hit1|hit2]")
            reply = client.request("watch", spec=rest)
        elif name == "unwatch":
            if not rest:
                raise ValueError("usage: unwatch <wid>")
            reply = client.request("unwatch", wid=rest)
        elif name == "watches":
            reply = client.request("watches")
        elif name == "quit":
            reply = client.request("quit")
            print(json.dumps(reply, sort_keys=True), file=stream)
            return False
        else:
            raise ValueError(f"unknown command {name!r} ({_ATTACH_HELP})")
    except (ValueError, TimeoutError) as exc:
        print(f"error: {exc}", file=stream)
        return True
    print(json.dumps(reply, sort_keys=True), file=stream)
    return True


def cmd_attach(args: argparse.Namespace, stream, input_stream) -> int:
    from repro.obs.inspect import InspectorClient

    client = InspectorClient(args.dir, timeout=args.timeout)
    state = client.state()
    if state is None:
        raise ValueError(
            f"no inspector mailbox at {args.dir} (no state.json); start the "
            "run with an InspectorServer controller first"
        )
    print(f"attached: pid {state.get('pid')} {state.get('workload')}/"
          f"{state.get('scheme')} at record {state.get('processed')} "
          f"[{state.get('status')}]", file=stream)
    print(_ATTACH_HELP, file=stream)
    source = input_stream if input_stream is not None else sys.stdin
    prompt = getattr(source, "isatty", lambda: False)()
    while True:
        if prompt:
            stream.write("(inspect) ")
            stream.flush()
        line = source.readline()
        if not line:
            break
        if not _attach_command(client, line.strip(), stream):
            break
    return 0


# ------------------------------------------------------------------- replay


def cmd_replay(args: argparse.Namespace, stream) -> int:
    from repro.obs.snapshot import EngineSnapshot
    from repro.sim.config import config_from_dict
    from repro.sim.engine import SimulationEngine
    from repro.sim.system import System
    from repro.workloads.registry import get_workload

    snapshot = EngineSnapshot.load(args.snapshot)
    meta = snapshot.workload
    if "name" not in meta:
        raise ValueError(f"snapshot {args.snapshot} carries no workload name; "
                         "replay needs workload metadata to rebuild the streams")
    config = config_from_dict(snapshot.config)
    scale = args.scale if args.scale is not None else float(meta.get("scale", 1.0))
    workload = get_workload(
        str(meta["name"]),
        int(meta.get("num_cores", config.num_cores)),
        scale=scale,
        seed=int(meta.get("seed", config.seed)),
        page_size=int(meta.get("page_size", config.dram_cache.page_size)),
    )
    system = System(config, workload)
    engine = SimulationEngine(system, mode=args.engine)
    engine.restore(snapshot)
    resumed_at = snapshot.progress["processed"]
    print(f"replaying {meta['name']}/{system.scheme.name} from record "
          f"{resumed_at} to {args.records} per core "
          f"({engine.mode} engine)", file=stream)
    observer = None
    if args.timeline:
        from repro.obs.timeline import TimelineObserver

        observer = TimelineObserver(args.timeline)
    result = engine.run(
        args.records, warmup_records_per_core=args.warmup, observer=observer
    )
    payload = {
        "snapshot": args.snapshot,
        "resumed_at_record": resumed_at,
        "records_processed": engine.records_processed,
        "summary": result.summary(),
    }
    json.dump(payload, stream, indent=2, sort_keys=True, default=str)
    stream.write("\n")
    if args.timeline_output and result.timeline is not None:
        from repro.obs.timeline import Timeline

        Path(args.timeline_output).write_text(
            Timeline.from_dict(result.timeline).to_csv(), encoding="utf-8")
        print(f"wrote replay timeline to {args.timeline_output}", file=stream)
    return 0


def main(argv: Optional[List[str]] = None, stream=None, input_stream=None) -> int:
    stream = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "summarize":
            return cmd_summarize(args, stream)
        if args.command == "merge":
            return cmd_merge(args, stream)
        if args.command == "export-chrome":
            return cmd_export_chrome(args, stream)
        if args.command == "attach":
            return cmd_attach(args, stream, input_stream)
        if args.command == "replay":
            return cmd_replay(args, stream)
        return cmd_export(args, stream)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
