"""Export telemetry as Chrome trace-event JSON (viewable in Perfetto).

Two timebases, two entry points:

* :func:`timeline_to_trace` — **record-count timebase**.  One trace
  microsecond equals one processed record, so the horizontal axis is the
  deterministic simulation axis every other repro artefact uses.  Each
  :class:`~repro.obs.timeline.TimelineWindow` becomes an ``X`` (complete)
  slice carrying its metrics as args, plus ``C`` counter tracks for hit
  ratio, bandwidth split and TLB miss ratio.  Event-log records that carry
  a record position (``watch_hit``, ``warmup_end``, ``inspect_pause``,
  ``snapshot_saved``, ...) are placed as instants on the same axis.

* :func:`events_to_trace` — **wall-clock timebase**.  For event logs alone
  (e.g. a campaign's ``<store>/obs/events.jsonl``): start/end pairs are
  folded into ``X`` slices per emitting process (``run_start``/``run_end``,
  ``cell_start``/``cell_finish``, ``campaign_start``/``campaign_end``) and
  everything else becomes an instant.  Timestamps are microseconds relative
  to the earliest event, one Perfetto process row per worker pid.

Both return ``{"traceEvents": [...]}`` — the JSON-object trace format that
``ui.perfetto.dev`` and ``chrome://tracing`` open directly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.timeline import Timeline

#: Event types whose payload carries a record position (``record`` for
#: per-record watch hits, ``records`` for run-edge marks), letting them be
#: placed on the record-count axis next to a timeline.
RECORD_MARK_EVENTS = {
    "watch_hit": "record",
    "warmup_end": "records",
    "inspect_pause": "records",
    "inspect_resume": "records",
    "snapshot_saved": "records",
    "checkpoint_hit": "records",
}

#: start-event -> (end events, slice name) pairs folded into spans.
_SPAN_PAIRS = {
    "run_start": (("run_end",), "run"),
    "cell_start": (("cell_finish", "cell_error"), "cell"),
    "campaign_start": (("campaign_end",), "campaign"),
}
_SPAN_ENDS = {end: start for start, (ends, _) in _SPAN_PAIRS.items() for end in ends}

#: Process/thread ids used on the record-count axis.
_PID_TIMELINE = 1
_TID_WINDOWS = 1
_TID_MARKS = 2
_TID_WATCH = 3


def _meta(pid: int, name: str, tid: Optional[int] = None,
          thread_name: Optional[str] = None) -> List[Dict[str, Any]]:
    """Perfetto ``M`` metadata events naming a process (and thread) row."""
    events: List[Dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": name},
    }]
    if tid is not None and thread_name is not None:
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": thread_name},
        })
    return events


def timeline_to_trace(
    timeline: Any,
    events: Optional[Iterable[Dict[str, Any]]] = None,
    label: str = "simulation",
) -> Dict[str, Any]:
    """Render a timeline (plus optional event records) on the record axis.

    One trace microsecond = one processed record.  ``timeline`` is a
    :class:`~repro.obs.timeline.Timeline` or its dict form (what
    ``SimulationResults.timeline`` holds).  ``events`` may be any iterable
    of parsed event-log records; only those listed in
    :data:`RECORD_MARK_EVENTS` land in the trace (the rest have no defined
    position on the record axis — export them with :func:`events_to_trace`).
    """
    if isinstance(timeline, dict):
        timeline = Timeline.from_dict(timeline)
    trace: List[Dict[str, Any]] = []
    trace.extend(_meta(_PID_TIMELINE, f"{label} (1 us = 1 record)",
                       _TID_WINDOWS, "windows"))
    trace.extend(_meta(_PID_TIMELINE, f"{label} (1 us = 1 record)",
                       _TID_MARKS, "marks"))
    for window in timeline.windows:
        trace.append({
            "ph": "X",
            "name": window.phase,
            "cat": "timeline",
            "pid": _PID_TIMELINE,
            "tid": _TID_WINDOWS,
            "ts": window.start_record,
            "dur": max(window.records, 1),
            "args": {
                "index": window.index,
                "records": window.records,
                "hit_ratio": round(window.hit_ratio, 6),
                "off_fraction": round(window.off_fraction, 6),
                "tlb_miss_ratio": round(window.tlb_miss_ratio, 6),
                "instructions": window.instructions,
                "cycles": window.cycles,
                "in_bytes": window.in_bytes,
                "off_bytes": window.off_bytes,
                "writeback_bytes": window.writeback_bytes,
                "llc_misses": window.llc_misses,
                "llc_writebacks": window.llc_writebacks,
            },
        })
        counter_common = {"ph": "C", "cat": "timeline", "pid": _PID_TIMELINE,
                          "tid": 0, "ts": window.start_record}
        trace.append(dict(counter_common, name="dram_cache_hit_ratio",
                          args={"hit_ratio": round(window.hit_ratio, 6)}))
        trace.append(dict(counter_common, name="bandwidth_bytes",
                          args={"in_package": window.in_bytes,
                                "off_package": window.off_bytes,
                                "writeback": window.writeback_bytes}))
        trace.append(dict(counter_common, name="tlb_miss_ratio",
                          args={"tlb_miss_ratio": round(window.tlb_miss_ratio, 6)}))
    for record in events or ():
        event = record.get("event")
        position_field = RECORD_MARK_EVENTS.get(event)
        if position_field is None or position_field not in record:
            continue
        args = {key: value for key, value in record.items()
                if key not in ("ts", "pid", "event")}
        name = event
        tid = _TID_MARKS
        if event == "watch_hit":
            name = f"watch:{record.get('watch', '?')}:{record.get('kind', '?')}"
            tid = _TID_WATCH
        trace.append({
            "ph": "i",
            "name": name,
            "cat": "events",
            "pid": _PID_TIMELINE,
            "tid": tid,
            "ts": int(record[position_field]),
            "s": "t",
            "args": args,
        })
    if any(entry.get("tid") == _TID_WATCH for entry in trace):
        trace.extend(_meta(_PID_TIMELINE, f"{label} (1 us = 1 record)",
                           _TID_WATCH, "watchpoints"))
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def events_to_trace(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Render an event log on wall-clock time, one process row per pid.

    Start/end pairs (see module docstring) fold into ``X`` slices; an
    unmatched start (crash, truncated log) degrades to an instant rather
    than being dropped.  Timestamps are microseconds relative to the
    earliest event so traces start at zero.
    """
    ordered = sorted(
        (record for record in records if "ts" in record and "event" in record),
        key=lambda record: record["ts"],
    )
    if not ordered:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    base = ordered[0]["ts"]
    trace: List[Dict[str, Any]] = []
    pids = []
    # Open spans: (pid, start event, span key) -> (ts_us, args).
    open_spans: Dict[Tuple[int, str, Any], Tuple[float, Dict[str, Any]]] = {}
    for record in ordered:
        pid = int(record.get("pid", 0))
        if pid not in pids:
            pids.append(pid)
        ts_us = (record["ts"] - base) * 1e6
        event = str(record["event"])
        args = {key: value for key, value in record.items()
                if key not in ("ts", "pid", "event")}
        if event in _SPAN_PAIRS:
            span_key = (pid, event, args.get("key") or args.get("cell"))
            open_spans[span_key] = (ts_us, args)
            continue
        start_event = _SPAN_ENDS.get(event)
        if start_event is not None:
            span_key = (pid, start_event, args.get("key") or args.get("cell"))
            opened = open_spans.pop(span_key, None)
            if opened is None and span_key[2] is not None:
                # End without identity match: fall back to any open span of
                # this type in the same process (older logs omit the key).
                span_key = (pid, start_event, None)
                opened = open_spans.pop(span_key, None)
            if opened is not None:
                start_us, start_args = opened
                merged = dict(start_args)
                merged.update(args)
                name = _SPAN_PAIRS[start_event][1]
                detail = merged.get("workload") or merged.get("cell") or merged.get("key")
                if detail:
                    name = f"{name}:{detail}"
                if event == "cell_error":
                    name = f"{name} (error)"
                trace.append({
                    "ph": "X", "name": name, "cat": "events", "pid": pid,
                    "tid": 1, "ts": start_us, "dur": max(ts_us - start_us, 1.0),
                    "args": merged,
                })
                continue
        trace.append({
            "ph": "i", "name": event, "cat": "events", "pid": pid,
            "tid": 2, "ts": ts_us, "s": "t", "args": args,
        })
    # Unmatched starts (still open at end of log) degrade to instants.
    for (pid, start_event, _key), (ts_us, args) in open_spans.items():
        trace.append({
            "ph": "i", "name": f"{start_event} (unclosed)", "cat": "events",
            "pid": pid, "tid": 2, "ts": ts_us, "s": "t", "args": args,
        })
    for pid in pids:
        trace.extend(_meta(pid, f"pid {pid}", 1, "spans"))
        trace.extend(_meta(pid, f"pid {pid}", 2, "marks"))
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_trace(trace: Dict[str, Any], path: Any) -> int:
    """Write a trace dict as JSON; returns the number of trace events."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(trace, sort_keys=True), encoding="utf-8")
    return len(trace.get("traceEvents", []))
