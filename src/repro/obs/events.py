"""Structured run events: an append-only JSONL log of what happened when.

Every event is one self-contained JSON line::

    {"ts": 1754550000.123, "pid": 4242, "event": "cell_finish", ...}

``ts`` is Unix epoch seconds, ``pid`` the emitting process, ``event`` one
of :data:`EVENT_TYPES`.  Everything else is event-specific context (cell
key, workload, wall seconds, ...).

Writes are one ``write()`` call of one line on a file opened in append
mode, so concurrent emitters — the campaign driver and every
:class:`~repro.campaign.executor.ParallelExecutor` worker append to the
same file — interleave at line granularity on POSIX and a truncated tail
(crash mid-write) costs at most one line, exactly like the result store.

:class:`EventLog` is picklable (it holds only the path), which is what
lets campaign cells carry it into spawn-based worker processes.
"""

from __future__ import annotations

import json
import numbers
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.obs.heartbeat import HeartbeatWriter

#: Known event types (the schema CI validates against).
EVENT_TYPES = frozenset({
    "run_start",       # engine: one simulation begins
    "warmup_end",      # engine: warmup boundary / measurement window opens
    "run_end",         # engine: one simulation finished
    "cell_start",      # executor: a campaign cell starts simulating
    "cell_finish",     # executor: a campaign cell completed successfully
    "cell_error",      # executor: a campaign cell raised
    "heartbeat",       # executor worker liveness
    "campaign_start",  # driver: campaign expansion done, execution begins
    "campaign_end",    # driver: campaign finished
    "watch_hit",       # watch: a watchpoint fired (touch/fill/evict/writeback)
    "watch_set",       # watch/inspector: a watchpoint was installed
    "watch_clear",     # watch/inspector: a watchpoint was removed
    "inspect_pause",   # inspector: engine paused at a record boundary
    "inspect_resume",  # inspector: engine resumed after a pause
    "snapshot_saved",  # inspector/checkpoint: engine snapshot written to disk
    "checkpoint_hit",  # campaign: a cell restored a shared warmup checkpoint
    "snapshot_restored",  # runner: a cell resumed mid-run from an auto-snapshot
    "lease_granted",   # supervisor: a cell was leased to a worker process
    "lease_revoked",   # supervisor: a lease died/timed out/went stale
    "cell_retry",      # supervisor: a revoked cell was requeued with backoff
    "cell_quarantined",  # supervisor: a cell exhausted its attempts (poisoned)
})

#: Fields every event carries.
REQUIRED_FIELDS = ("ts", "event", "pid")


def make_event(event: str, **fields) -> Dict[str, object]:
    """Build one event record (stamps ``ts`` and ``pid``)."""
    if event not in EVENT_TYPES:
        raise ValueError(f"unknown event type {event!r}; expected one of {sorted(EVENT_TYPES)}")
    record: Dict[str, object] = {"ts": time.time(), "pid": os.getpid(), "event": event}
    record.update(fields)
    return record


def validate_event(record: object) -> Dict[str, object]:
    """Check one parsed event against the schema; returns it on success.

    Raises ``ValueError`` describing the first violation — used by tests
    and the CI obs smoke step to keep every emitter honest.
    """
    if not isinstance(record, dict):
        raise ValueError(f"event must be a JSON object, got {type(record).__name__}")
    for field_name in REQUIRED_FIELDS:
        if field_name not in record:
            raise ValueError(f"event missing required field {field_name!r}: {record}")
    if not isinstance(record["ts"], numbers.Real) or isinstance(record["ts"], bool):
        raise ValueError(f"event ts must be a number, got {record['ts']!r}")
    if not isinstance(record["pid"], int) or isinstance(record["pid"], bool):
        raise ValueError(f"event pid must be an integer, got {record['pid']!r}")
    if record["event"] not in EVENT_TYPES:
        raise ValueError(f"unknown event type {record['event']!r}")
    return record


class EventLog:
    """Append-only JSONL event writer bound to one path."""

    def __init__(self, path) -> None:
        self.path = str(path)
        Path(self.path).parent.mkdir(parents=True, exist_ok=True)

    def emit(self, event: str, **fields) -> Dict[str, object]:
        """Append one event; returns the record written."""
        record = make_event(event, **fields)
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return record

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventLog({self.path!r})"


def read_events(path, validate: bool = False) -> List[Dict[str, object]]:
    """Load every event from a JSONL log, skipping a truncated tail line."""
    records: List[Dict[str, object]] = []
    event_path = Path(path)
    if not event_path.exists():
        return records
    with event_path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if validate:
                validate_event(record)
            records.append(record)
    return records


def merge_events(paths: Sequence, validate: bool = False) -> List[Dict[str, object]]:
    """Merge several event logs into one list ordered by timestamp.

    The sort is stable, so events sharing a timestamp keep their per-file
    order; campaign post-mortems merge the driver log with per-worker logs
    this way.
    """
    merged: List[Dict[str, object]] = []
    for path in paths:
        merged.extend(read_events(path, validate=validate))
    merged.sort(key=lambda record: record.get("ts", 0.0))
    return merged


def write_events(records: Iterable[Dict[str, object]], path) -> int:
    """Write events as JSONL; returns the number of lines written."""
    count = 0
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


@dataclass
class ObsSink:
    """Where a campaign's observability output lands (picklable).

    ``events_path`` collects the structured event log; ``heartbeat_dir``
    holds one liveness file per worker process (see
    :mod:`repro.obs.heartbeat`).  Either may be ``None`` to disable that
    output.  :meth:`for_directory` applies the standard layout a result
    store uses: ``<dir>/events.jsonl`` + ``<dir>/heartbeats/``.
    """

    events_path: Optional[str] = None
    heartbeat_dir: Optional[str] = None

    @classmethod
    def for_directory(cls, directory) -> "ObsSink":
        base = Path(directory)
        return cls(
            events_path=str(base / "events.jsonl"),
            heartbeat_dir=str(base / "heartbeats"),
        )

    def event_log(self) -> Optional[EventLog]:
        return EventLog(self.events_path) if self.events_path else None

    def heartbeat_writer(self, worker: str) -> Optional["HeartbeatWriter"]:
        if not self.heartbeat_dir:
            return None
        from repro.obs.heartbeat import HeartbeatWriter

        return HeartbeatWriter(self.heartbeat_dir, worker)
