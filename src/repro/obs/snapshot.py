"""Full engine-state snapshots: capture, serialize, restore, resume.

A snapshot records everything a :class:`~repro.sim.system.System` mutates
while simulating — core clocks and stats, TLBs, the page table, the SRAM
hierarchy, both DRAM devices, the memory controllers, the OS-service
counters, and the full DRAM-cache scheme state (stores, metadata, tag
buffers, policies, every RNG stream) — plus the engine-level progress
needed to resume: records processed, per-core consumed counts, and whether
measurement has begun.

Restoring a snapshot into a freshly built system (same ``SystemConfig``,
same workload) and calling :meth:`SimulationEngine.run` again produces
results **bit-identical** to the uninterrupted run, in every engine mode.
That works because workload streams are stateless deterministic generators:
the engine fast-forwards each core's fresh iterator by its consumed count,
and every other piece of dynamic state is restored here.

Encoding is plain JSON: integer-keyed dicts and ``OrderedDict``\\ s become
``[[key, value], ...]`` item lists (order is semantic — it carries LRU/FIFO
recency and random-victim iteration order), ``__slots__`` entry classes
become flat field rows, RNG streams serialize their generator state, and
sets whose iteration order is provably irrelevant (dirty sets, reverse
mappings, footprint line sets) are stored sorted.

Snapshots double as **warm-state checkpoints**: ``campaign run
--checkpoint-warmup`` captures one at the warmup edge and later cells that
share the same (config, workload, warmup) prefix restore it instead of
re-simulating the warmup records.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.sim.config import config_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.batch import EngineCursor
    from repro.sim.system import System

#: Bumped whenever the snapshot payload layout changes incompatibly.
SNAPSHOT_VERSION = 1

#: Marker distinguishing snapshot files from other JSON artifacts.
SNAPSHOT_KIND = "repro-engine-snapshot"


# ---------------------------------------------------------------------------
# leaf encoders/decoders
#
# Every encoder returns plain JSON-safe data; every decoder mutates the live
# object *in place* (clear + refill) so that shared references — Banshee's
# ``partition.resident`` view of ``directory.pages``, bound methods hoisted
# by the hot path — keep pointing at the restored state.
# ---------------------------------------------------------------------------


def _rng_to_dict(rng: Any) -> Dict[str, Any]:
    return {"seed": rng.seed, "state": rng.generator.bit_generator.state}


def _rng_restore(rng: Any, payload: Dict[str, Any]) -> None:
    rng.generator.bit_generator.state = payload["state"]


def _core_to_dict(core: Any) -> Dict[str, Any]:
    stats = core.stats
    return {
        "clock": core.clock,
        "pending_stall": core._pending_stall,
        "stats": {
            "instructions": stats.instructions,
            "memory_accesses": stats.memory_accesses,
            "compute_cycles": stats.compute_cycles,
            "memory_stall_cycles": stats.memory_stall_cycles,
            "os_stall_cycles": stats.os_stall_cycles,
        },
    }


def _core_restore(core: Any, payload: Dict[str, Any]) -> None:
    core.clock = payload["clock"]
    core._pending_stall = payload["pending_stall"]
    stats = core.stats
    fields = payload["stats"]
    stats.instructions = fields["instructions"]
    stats.memory_accesses = fields["memory_accesses"]
    stats.compute_cycles = fields["compute_cycles"]
    stats.memory_stall_cycles = fields["memory_stall_cycles"]
    stats.os_stall_cycles = fields["os_stall_cycles"]


def _tlb_to_dict(tlb: Any) -> Dict[str, Any]:
    return {
        # OrderedDict order is LRU recency — preserved by the item list.
        "entries": [
            [e.vpn, e.ppn, e.cached, e.way, e.large, e.generation]
            for e in tlb._entries.values()
        ],
        "hits": tlb.hits,
        "misses": tlb.misses,
        "invalidations": tlb.invalidations,
        "version": tlb.version,
    }


def _tlb_restore(tlb: Any, payload: Dict[str, Any]) -> None:
    from repro.vm.tlb import TlbEntry

    tlb._entries.clear()
    for vpn, ppn, cached, way, large, generation in payload["entries"]:
        tlb._entries[vpn] = TlbEntry(
            vpn=vpn, ppn=ppn, cached=cached, way=way, large=large, generation=generation
        )
    tlb.hits = payload["hits"]
    tlb.misses = payload["misses"]
    tlb.invalidations = payload["invalidations"]
    tlb.version = payload["version"]


def _page_table_to_dict(table: Any) -> Dict[str, Any]:
    allocator = table.allocator
    return {
        "entries": [
            [e.vpn, e.ppn, e.cached, e.way, e.large, e.generation]
            for e in table._entries.values()
        ],
        "walks": table.walks,
        "update_batches": table.update_batches,
        "updated_ptes": table.updated_ptes,
        "allocator": {
            "next": allocator._next,
            "free": list(allocator._free),
            "allocated": allocator.allocated,
        },
        # Reverse-mapping vpn sets are only consumed via commutative
        # per-element updates, so sorted order is safe to canonicalize.
        "reverse": sorted(
            [ppn, sorted(vpns)] for ppn, vpns in table.reverse_mapping._map.items()
        ),
    }


def _page_table_restore(table: Any, payload: Dict[str, Any]) -> None:
    from repro.vm.page_table import PageTableEntry

    table._entries.clear()
    for vpn, ppn, cached, way, large, generation in payload["entries"]:
        table._entries[vpn] = PageTableEntry(
            vpn=vpn, ppn=ppn, cached=cached, way=way, large=large, generation=generation
        )
    table.walks = payload["walks"]
    table.update_batches = payload["update_batches"]
    table.updated_ptes = payload["updated_ptes"]
    allocator = table.allocator
    allocator._next = payload["allocator"]["next"]
    allocator._free = list(payload["allocator"]["free"])
    allocator.allocated = payload["allocator"]["allocated"]
    table.reverse_mapping._map.clear()
    for ppn, vpns in payload["reverse"]:
        table.reverse_mapping._map[ppn] = set(vpns)


def _sram_to_dict(cache: Any) -> Dict[str, Any]:
    return {
        # Per-set item order is recency (LRU) / insertion (FIFO) order and
        # the index space of random-victim draws — it must be preserved.
        "sets": [[[line, dirty] for line, dirty in bucket.items()] for bucket in cache._sets],
        "rng": _rng_to_dict(cache._rng),
        "hits": cache.hits,
        "misses": cache.misses,
        "evictions": cache.evictions,
        "dirty_evictions": cache.dirty_evictions,
    }


def _sram_restore(cache: Any, payload: Dict[str, Any]) -> None:
    for bucket, rows in zip(cache._sets, payload["sets"]):
        bucket.clear()
        for line, dirty in rows:
            bucket[line] = dirty
    _rng_restore(cache._rng, payload["rng"])
    cache.hits = payload["hits"]
    cache.misses = payload["misses"]
    cache.evictions = payload["evictions"]
    cache.dirty_evictions = payload["dirty_evictions"]
    cache.victim_addr = None
    cache.victim_dirty = False


def _hierarchy_to_dict(hierarchy: Any) -> Dict[str, Any]:
    return {
        "l1": [_sram_to_dict(c) for c in hierarchy.l1],
        "l2": [_sram_to_dict(c) for c in hierarchy.l2],
        "l3": _sram_to_dict(hierarchy.l3),
    }


def _hierarchy_restore(hierarchy: Any, payload: Dict[str, Any]) -> None:
    for cache, state in zip(hierarchy.l1, payload["l1"]):
        _sram_restore(cache, state)
    for cache, state in zip(hierarchy.l2, payload["l2"]):
        _sram_restore(cache, state)
    _sram_restore(hierarchy.l3, payload["l3"])


def _channel_to_dict(channel: Any) -> Dict[str, Any]:
    return {
        "busy_until": channel.busy_until,
        "total_busy_cycles": channel.total_busy_cycles,
        "total_requests": channel.total_requests,
        "background_backlog": channel._background_backlog,
        "last_row": channel._last_row,
    }


def _channel_restore(channel: Any, payload: Dict[str, Any]) -> None:
    channel.busy_until = payload["busy_until"]
    channel.total_busy_cycles = payload["total_busy_cycles"]
    channel.total_requests = payload["total_requests"]
    channel._background_backlog = payload["background_backlog"]
    channel._last_row = payload["last_row"]


def _traffic_to_dict(traffic: Any) -> Dict[str, Any]:
    return {"bytes": traffic.breakdown(), "accesses": traffic.total_accesses}


def _traffic_restore(traffic: Any, payload: Dict[str, Any]) -> None:
    from repro.sim.stats import TrafficCategory

    for category in TrafficCategory:
        traffic._bytes[category] = payload["bytes"].get(category.value, 0)
    traffic._accesses = payload["accesses"]


def _device_to_dict(device: Any) -> Dict[str, Any]:
    return {
        "channels": [_channel_to_dict(c) for c in device.channels],
        "traffic": _traffic_to_dict(device.traffic),
    }


def _device_restore(device: Any, payload: Dict[str, Any]) -> None:
    for channel, state in zip(device.channels, payload["channels"]):
        _channel_restore(channel, state)
    _traffic_restore(device.traffic, payload["traffic"])


def _stats_set_to_dict(stats: Any) -> List[List[Any]]:
    return [[key, value] for key, value in stats._counters.items()]


def _stats_set_restore(stats: Any, payload: List[List[Any]]) -> None:
    stats._counters.clear()
    for key, value in payload:
        stats._counters[key] = value


def _miss_window_to_dict(window: Any) -> Dict[str, Any]:
    return {"hits": window._hits, "misses": window._misses, "rate": window._rate}


def _miss_window_restore(window: Any, payload: Dict[str, Any]) -> None:
    window._hits = payload["hits"]
    window._misses = payload["misses"]
    window._rate = payload["rate"]


def _footprint_to_dict(footprint: Any) -> Dict[str, Any]:
    return {
        # Touched-line sets are only measured (len/membership), never
        # iterated order-sensitively, so sorted canonical form is safe.
        "touched": sorted(
            [page, sorted(lines)] for page, lines in footprint._touched.items()
        ),
        "observed_fills": footprint._observed_fills,
        "observed_lines": footprint._observed_lines,
    }


def _footprint_restore(footprint: Any, payload: Dict[str, Any]) -> None:
    footprint._touched.clear()
    for page, lines in payload["touched"]:
        footprint._touched[page] = set(lines)
    footprint._observed_fills = payload["observed_fills"]
    footprint._observed_lines = payload["observed_lines"]


def _balancer_to_dict(balancer: Any) -> Optional[Dict[str, Any]]:
    if balancer is None:
        return None
    return {
        "last_in": balancer._last_in,
        "last_off": balancer._last_off,
        "redirect_probability": balancer._redirect_probability,
        "redirected": balancer.redirected,
        "evaluations": balancer.evaluations,
    }


def _balancer_restore(balancer: Any, payload: Optional[Dict[str, Any]]) -> None:
    if balancer is None or payload is None:
        return
    balancer._last_in = payload["last_in"]
    balancer._last_off = payload["last_off"]
    balancer._redirect_probability = payload["redirect_probability"]
    balancer.redirected = payload["redirected"]
    balancer.evaluations = payload["evaluations"]


# ------------------------------------------------------------------ stores


def _policy_to_dict(policy: Any) -> Dict[str, Any]:
    from repro.cache.replacement import FifoPolicy, LruPolicy, RandomPolicy

    if isinstance(policy, LruPolicy):
        return {"kind": "lru", "recency": [list(order) for order in policy._recency]}
    if isinstance(policy, FifoPolicy):
        return {"kind": "fifo", "order": [list(order) for order in policy._insert_order]}
    if isinstance(policy, RandomPolicy):
        return {"kind": "random", "rng": _rng_to_dict(policy._rng)}
    raise ValueError(f"cannot snapshot replacement policy {type(policy).__name__}")


def _policy_restore(policy: Any, payload: Dict[str, Any]) -> None:
    kind = payload["kind"]
    if kind == "lru":
        for order, saved in zip(policy._recency, payload["recency"]):
            order[:] = saved
    elif kind == "fifo":
        for order, saved in zip(policy._insert_order, payload["order"]):
            order[:] = saved
    elif kind == "random":
        _rng_restore(policy._rng, payload["rng"])
    else:  # pragma: no cover - schema guard
        raise ValueError(f"unknown replacement policy kind {kind!r}")


def _page_directory_to_dict(directory: Any) -> Dict[str, Any]:
    return {
        "pages": [[page, way] for page, way in directory.pages.items()],
        "dirty": sorted(directory.dirty),
    }


def _page_directory_restore(directory: Any, payload: Dict[str, Any]) -> None:
    directory.pages.clear()
    for page, way in payload["pages"]:
        directory.pages[page] = way
    directory.dirty.clear()
    directory.dirty.update(payload["dirty"])


# ------------------------------------------------------------------ schemes


def _scheme_base_to_dict(scheme: Any) -> Dict[str, Any]:
    return {
        "class": type(scheme).__name__,
        "stats": _stats_set_to_dict(scheme.stats),
        "rng": _rng_to_dict(scheme.rng),
    }


def _scheme_base_restore(scheme: Any, payload: Dict[str, Any]) -> None:
    found = payload["class"]
    if found != type(scheme).__name__:
        raise ValueError(
            f"snapshot holds scheme state for {found}, live scheme is {type(scheme).__name__}"
        )
    _stats_set_restore(scheme.stats, payload["stats"])
    _rng_restore(scheme.rng, payload["rng"])


def _encode_nostate(scheme: Any) -> Dict[str, Any]:
    return {}


def _restore_nostate(scheme: Any, payload: Dict[str, Any]) -> None:
    return None


def _encode_alloy(scheme: Any) -> Dict[str, Any]:
    store = scheme.store
    return {
        "tags": [[frame, line] for frame, line in store.tags.items()],
        "dirty_frames": sorted(store.dirty_frames),
        "balancer": _balancer_to_dict(scheme.balancer),
    }


def _restore_alloy(scheme: Any, payload: Dict[str, Any]) -> None:
    store = scheme.store
    store.tags.clear()
    for frame, line in payload["tags"]:
        store.tags[frame] = line
    store.dirty_frames.clear()
    store.dirty_frames.update(payload["dirty_frames"])
    _balancer_restore(scheme.balancer, payload["balancer"])


def _encode_unison(scheme: Any) -> Dict[str, Any]:
    store = scheme.store
    return {
        "sets": [
            [None if slot is None else [slot.page, slot.dirty] for slot in row]
            for row in store._sets
        ],
        "policy": _policy_to_dict(store.policy),
        "footprint": _footprint_to_dict(scheme.footprint),
    }


def _restore_unison(scheme: Any, payload: Dict[str, Any]) -> None:
    from repro.dramcache.components.stores import _StoredPage

    store = scheme.store
    store._where.clear()
    for set_index, row_state in enumerate(payload["sets"]):
        row = store._sets[set_index]
        for way, slot_state in enumerate(row_state):
            if slot_state is None:
                row[way] = None
            else:
                page, dirty = slot_state
                entry = _StoredPage(page)
                entry.dirty = dirty
                row[way] = entry
                store._where[page] = (set_index, way)
    _policy_restore(store.policy, payload["policy"])
    _footprint_restore(scheme.footprint, payload["footprint"])


def _encode_tdc(scheme: Any) -> Dict[str, Any]:
    return {
        "entries": [[page, dirty] for page, dirty in scheme.store.entries.items()],
        "footprint": _footprint_to_dict(scheme.footprint),
    }


def _restore_tdc(scheme: Any, payload: Dict[str, Any]) -> None:
    scheme.store.entries.clear()
    for page, dirty in payload["entries"]:
        scheme.store.entries[page] = dirty
    _footprint_restore(scheme.footprint, payload["footprint"])


def _encode_hma(scheme: Any) -> Dict[str, Any]:
    return {
        "pages": sorted(scheme.store.pages),
        "dirty": sorted(scheme.store.dirty),
        # Item order breaks ties in the remap ranking's stable sort, so the
        # insertion order of the epoch counters is semantic.
        "epoch_counts": [[page, count] for page, count in scheme._epoch_counts.items()],
        "next_remap": scheme._next_remap,
    }


def _restore_hma(scheme: Any, payload: Dict[str, Any]) -> None:
    scheme.store.pages.clear()
    scheme.store.pages.update(payload["pages"])
    scheme.store.dirty.clear()
    scheme.store.dirty.update(payload["dirty"])
    scheme._epoch_counts.clear()
    for page, count in payload["epoch_counts"]:
        scheme._epoch_counts[page] = count
    scheme._next_remap = payload["next_remap"]


def _slot_row(slot: Any) -> List[Any]:
    return [slot.page, slot.count, slot.valid, slot.dirty]


def _slot_restore(slot: Any, row: List[Any]) -> None:
    slot.page, slot.count, slot.valid, slot.dirty = row


def _tag_buffer_to_dict(buffer: Any) -> Dict[str, Any]:
    return {
        # Dict order is the victim scan's tie-break order — preserved.
        "sets": [
            [[e.page, e.cached, e.way, e.remap, e.last_use] for e in bucket.values()]
            for bucket in buffer._sets
        ],
        "clock": buffer._clock,
        "lookups": buffer.lookups,
        "hits": buffer.hits,
        "inserts": buffer.inserts,
        "remap_inserts": buffer.remap_inserts,
    }


def _tag_buffer_restore(buffer: Any, payload: Dict[str, Any]) -> None:
    from repro.core.tag_buffer import TagBufferEntry

    for bucket, rows in zip(buffer._sets, payload["sets"]):
        bucket.clear()
        for page, cached, way, remap, last_use in rows:
            bucket[page] = TagBufferEntry(
                page=page, cached=cached, way=way, remap=remap, last_use=last_use
            )
    buffer._clock = payload["clock"]
    buffer.lookups = payload["lookups"]
    buffer.hits = payload["hits"]
    buffer.inserts = payload["inserts"]
    buffer.remap_inserts = payload["remap_inserts"]


def _encode_banshee(scheme: Any) -> Dict[str, Any]:
    partitions = []
    for page_size, partition in scheme._partitions.items():
        partitions.append({
            "page_size": page_size,
            "metadata": [
                {
                    "cached": [_slot_row(slot) for slot in meta.cached],
                    "candidates": [_slot_row(slot) for slot in meta.candidates],
                }
                for meta in partition.metadata
            ],
            "directory": _page_directory_to_dict(partition.directory),
            "lru": None if partition.lru is None else _policy_to_dict(partition.lru),
        })
    return {
        "miss_window": _miss_window_to_dict(scheme.miss_window),
        "partitions": partitions,
        "tag_buffers": [_tag_buffer_to_dict(b) for b in scheme.tag_buffers],
        "pte_updater": {
            "flushes": scheme.pte_updater.flushes,
            "updates_applied": scheme.pte_updater.updates_applied,
        },
        "balancer": _balancer_to_dict(scheme.balancer),
    }


def _restore_banshee(scheme: Any, payload: Dict[str, Any]) -> None:
    _miss_window_restore(scheme.miss_window, payload["miss_window"])
    for state in payload["partitions"]:
        partition = scheme._partitions.get(state["page_size"])
        if partition is None:
            raise ValueError(
                f"snapshot holds a partition for page size {state['page_size']} "
                "that the live scheme does not plan"
            )
        for meta, meta_state in zip(partition.metadata, state["metadata"]):
            for slot, row in zip(meta.cached, meta_state["cached"]):
                _slot_restore(slot, row)
            for slot, row in zip(meta.candidates, meta_state["candidates"]):
                _slot_restore(slot, row)
        # ``partition.resident``/``partition.dirty`` are shared views of the
        # directory's containers; in-place restore keeps them coherent.
        _page_directory_restore(partition.directory, state["directory"])
        if partition.lru is not None and state["lru"] is not None:
            _policy_restore(partition.lru, state["lru"])
    for buffer, state in zip(scheme.tag_buffers, payload["tag_buffers"]):
        _tag_buffer_restore(buffer, state)
    scheme.pte_updater.flushes = payload["pte_updater"]["flushes"]
    scheme.pte_updater.updates_applied = payload["pte_updater"]["updates_applied"]
    _balancer_restore(scheme.balancer, payload["balancer"])


#: Scheme-state codecs keyed by scheme *class* name (variants share the base
#: class, so every registered variant is covered).  Out-of-tree schemes can
#: extend this via :func:`register_scheme_codec`.
_SCHEME_CODECS: Dict[str, Any] = {
    "NoCache": (_encode_nostate, _restore_nostate),
    "CacheOnly": (_encode_nostate, _restore_nostate),
    "AlloyCache": (_encode_alloy, _restore_alloy),
    "UnisonCache": (_encode_unison, _restore_unison),
    "TaglessDramCache": (_encode_tdc, _restore_tdc),
    "HmaCache": (_encode_hma, _restore_hma),
    "BansheeCache": (_encode_banshee, _restore_banshee),
}


def register_scheme_codec(
    class_name: str,
    encode: Callable[[Any], Dict[str, Any]],
    restore: Callable[[Any, Dict[str, Any]], None],
) -> None:
    """Register snapshot encode/restore functions for a custom scheme class."""
    _SCHEME_CODECS[class_name] = (encode, restore)


def _scheme_to_dict(scheme: Any) -> Dict[str, Any]:
    codec = _SCHEME_CODECS.get(type(scheme).__name__)
    if codec is None:
        raise ValueError(
            f"no snapshot codec for scheme class {type(scheme).__name__}; "
            "register one with repro.obs.snapshot.register_scheme_codec"
        )
    payload = _scheme_base_to_dict(scheme)
    payload["state"] = codec[0](scheme)
    return payload


def _scheme_restore(scheme: Any, payload: Dict[str, Any]) -> None:
    codec = _SCHEME_CODECS.get(type(scheme).__name__)
    if codec is None:
        raise ValueError(
            f"no snapshot codec for scheme class {type(scheme).__name__}; "
            "register one with repro.obs.snapshot.register_scheme_codec"
        )
    _scheme_base_restore(scheme, payload)
    codec[1](scheme, payload["state"])


# ---------------------------------------------------------------------------
# system-level capture/restore
# ---------------------------------------------------------------------------


def system_state_to_dict(system: "System") -> Dict[str, Any]:
    """Serialize every piece of mutable simulation state of ``system``."""
    os_services = system.os_services
    return {
        "rng": _rng_to_dict(system.rng),
        "cores": [_core_to_dict(core) for core in system.cores],
        "tlbs": [_tlb_to_dict(tlb) for tlb in system.tlbs],
        "page_table": _page_table_to_dict(system.page_table),
        "hierarchy": _hierarchy_to_dict(system.hierarchy),
        "in_dram": _device_to_dict(system.in_dram),
        "off_dram": _device_to_dict(system.off_dram),
        "controllers": {
            "requests": system.controllers.requests,
            "writebacks": system.controllers.writebacks,
        },
        "shootdowns": system.shootdown_model.shootdowns,
        "os_services": {
            "pte_update_batches": os_services.pte_update_batches,
            "pte_updates": os_services.pte_updates,
            "core_stall_events": os_services.core_stall_events,
        },
        "llc_misses": system.llc_misses,
        "llc_writebacks": system.llc_writebacks,
        "baseline": system._baseline,
        "scheme": _scheme_to_dict(system.scheme),
    }


def restore_system_state(system: "System", payload: Dict[str, Any]) -> None:
    """Restore ``payload`` (from :func:`system_state_to_dict`) in place."""
    _rng_restore(system.rng, payload["rng"])
    for core, state in zip(system.cores, payload["cores"]):
        _core_restore(core, state)
    for tlb, state in zip(system.tlbs, payload["tlbs"]):
        _tlb_restore(tlb, state)
    _page_table_restore(system.page_table, payload["page_table"])
    _hierarchy_restore(system.hierarchy, payload["hierarchy"])
    _device_restore(system.in_dram, payload["in_dram"])
    _device_restore(system.off_dram, payload["off_dram"])
    system.controllers.requests = payload["controllers"]["requests"]
    system.controllers.writebacks = payload["controllers"]["writebacks"]
    system.shootdown_model.shootdowns = payload["shootdowns"]
    os_services = system.os_services
    os_services.pte_update_batches = payload["os_services"]["pte_update_batches"]
    os_services.pte_updates = payload["os_services"]["pte_updates"]
    os_services.core_stall_events = payload["os_services"]["core_stall_events"]
    system.llc_misses = payload["llc_misses"]
    system.llc_writebacks = payload["llc_writebacks"]
    system._baseline = payload["baseline"]
    _scheme_restore(system.scheme, payload["scheme"])


class EngineSnapshot:
    """One captured engine state: config identity + progress + system state.

    ``to_dict``/``from_dict`` are exact inverses; the dict form survives a
    JSON round-trip unchanged (the round-trip exactness is pinned by tests).
    """

    def __init__(
        self,
        config: Dict[str, Any],
        config_digest: str,
        workload: Optional[Dict[str, Any]],
        progress: Dict[str, Any],
        system: Dict[str, Any],
        version: int = SNAPSHOT_VERSION,
        kind: str = SNAPSHOT_KIND,
    ) -> None:
        self.version = version
        self.kind = kind
        self.config = config
        self.config_digest = config_digest
        self.workload = workload
        self.progress = progress
        self.system = system

    # ------------------------------------------------------------------ serde

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "kind": self.kind,
            "config": self.config,
            "config_digest": self.config_digest,
            "workload": self.workload,
            "progress": self.progress,
            "system": self.system,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EngineSnapshot":
        if payload.get("kind") != SNAPSHOT_KIND:
            raise ValueError(f"not an engine snapshot (kind={payload.get('kind')!r})")
        if payload.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {payload.get('version')!r} not supported "
                f"(expected {SNAPSHOT_VERSION})"
            )
        return cls(
            config=payload["config"],
            config_digest=payload["config_digest"],
            workload=payload["workload"],
            progress=payload["progress"],
            system=payload["system"],
            version=payload["version"],
            kind=payload["kind"],
        )

    def save(self, path: str) -> str:
        """Atomically write the snapshot as JSON; returns ``path``."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".snapshot-", dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: str) -> "EngineSnapshot":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    # ------------------------------------------------------------------ restore

    def restore_into(self, system: "System") -> None:
        """Restore this snapshot's state into ``system`` (config must match)."""
        live_digest = config_hash(system.config)
        if live_digest != self.config_digest:
            raise ValueError(
                "snapshot was captured under a different configuration "
                f"(snapshot {self.config_digest[:12]}, live {live_digest[:12]}); "
                "rebuild the system from the snapshot's embedded config"
            )
        restore_system_state(system, self.system)

    def summary(self) -> Dict[str, Any]:
        """Small human-oriented description of the snapshot."""
        progress = self.progress
        return {
            "config_digest": self.config_digest[:12],
            "workload": (self.workload or {}).get("name"),
            "processed": progress.get("processed"),
            "consumed_per_core": progress.get("consumed_per_core"),
            "measurement_started": progress.get("measurement_started"),
        }


def capture(
    system: "System",
    processed: int,
    consumed_per_core: List[int],
    measurement_started: bool,
    workload_meta: Optional[Dict[str, Any]] = None,
) -> EngineSnapshot:
    """Capture a snapshot of ``system`` at an engine edge.

    ``processed`` is the run's global processed-record count at the edge,
    ``consumed_per_core`` the per-core record counts consumed *within the
    current run* (the engine restarts workload streams per run, so these
    are exactly the fast-forward distances on resume).
    """
    if len(consumed_per_core) != system.config.num_cores:
        raise ValueError(
            f"consumed_per_core has {len(consumed_per_core)} entries for "
            f"{system.config.num_cores} cores"
        )
    meta = workload_meta
    if meta is None:
        workload = system.workload
        meta = {
            "name": workload.name,
            "num_cores": workload.num_cores,
            "seed": workload.seed,
            "page_size": workload.page_size,
        }
    return EngineSnapshot(
        config=system.config.to_dict(),
        config_digest=config_hash(system.config),
        workload=meta,
        progress={
            "processed": int(processed),
            "consumed_per_core": [int(count) for count in consumed_per_core],
            "measurement_started": bool(measurement_started),
        },
        system=system_state_to_dict(system),
    )


def capture_cursor(
    cursor: "EngineCursor", workload_meta: Optional[Dict[str, Any]] = None
) -> EngineSnapshot:
    """Capture a snapshot from a controller edge's :class:`EngineCursor`."""
    return capture(
        cursor.system,
        processed=cursor.processed,
        consumed_per_core=cursor.consumed_per_core,
        measurement_started=cursor.measurement_started,
        workload_meta=workload_meta,
    )
