"""Per-worker heartbeat files: liveness for long-running campaigns.

Each worker process owns one small JSON file in the campaign's heartbeat
directory and rewrites it (atomically, via a temp file + ``os.replace``)
whenever its state changes: picking up a cell, finishing it, going idle.
``python -m repro.campaign status --live`` reads the directory to show
what is in flight right now — without any channel back into the worker
pool, surviving driver crashes, and readable from another terminal while
an overnight campaign runs.

A heartbeat older than :data:`STALE_AFTER_SECONDS` is reported as stale:
either its worker is stuck inside one very long cell or the process died
without cleaning up.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro import faults

#: Heartbeats older than this are flagged stale by readers.
STALE_AFTER_SECONDS = 300.0

_SUFFIX = ".hb.json"


class HeartbeatWriter:
    """Maintains one worker's heartbeat file."""

    def __init__(self, directory, worker: str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.worker = worker
        self.path = self.directory / f"{worker}{_SUFFIX}"
        self.started_ts = time.time()
        self.cells_done = 0

    def beat(self, state: str = "running", cell: Optional[str] = None,
             key: Optional[str] = None) -> Dict[str, object]:
        """Rewrite the heartbeat file; returns the payload written."""
        now = time.time()
        payload: Dict[str, object] = {
            "worker": self.worker,
            "pid": os.getpid(),
            "state": state,
            "cell": cell,
            "key": key,
            "updated_ts": now,
            "started_ts": self.started_ts,
            "cells_done": self.cells_done,
        }
        if faults.heartbeat_dropped():
            # Injected liveness failure: the worker keeps running but its
            # heartbeat file freezes — exactly what a wedged writer looks
            # like to the supervisor's staleness check.
            return payload
        tmp = self.path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, self.path)
        return payload

    def finished_cell(self) -> None:
        """Bump the completed-cell counter (reported in every later beat)."""
        self.cells_done += 1

    def clear(self) -> None:
        """Remove this worker's heartbeat file (clean shutdown)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


def read_heartbeats(directory) -> List[Dict[str, object]]:
    """Load every heartbeat in ``directory``, oldest worker first.

    Unparseable files (a reader racing a writer's ``os.replace`` cannot see
    one on POSIX, but half-copied directories happen) are skipped.
    """
    base = Path(directory)
    if not base.is_dir():
        return []
    beats: List[Dict[str, object]] = []
    for path in sorted(base.glob(f"*{_SUFFIX}")):
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict):
            beats.append(payload)
    return beats


def is_stale(beat: Dict[str, object], now: Optional[float] = None,
             stale_after: float = STALE_AFTER_SECONDS) -> bool:
    """Whether a heartbeat has not been refreshed within ``stale_after``."""
    now = time.time() if now is None else now
    return (now - float(beat.get("updated_ts", 0.0))) > stale_after


def pid_alive(pid: object) -> bool:
    """Whether ``pid`` names a live process on this host.

    ``os.kill(pid, 0)`` probes without signalling; ``EPERM`` means the
    process exists but belongs to someone else, which still counts as
    alive.  Anything unparseable reads as dead.
    """
    try:
        pid_int = int(pid)  # type: ignore[arg-type, call-overload]
    except (TypeError, ValueError):
        return False
    if pid_int <= 0:
        return False
    try:
        os.kill(pid_int, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def sweep_dead(directory: object) -> int:
    """Remove heartbeat files whose PID is gone; returns how many.

    Executors call this after a run so finished (or killed) campaigns do
    not leave ghost workers for ``status --live``; the reader-side filter
    in the CLI covers stores swept by nobody.
    """
    base = Path(str(directory))
    if not base.is_dir():
        return 0
    removed = 0
    for path in base.glob(f"*{_SUFFIX}"):
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict) and not pid_alive(payload.get("pid")):
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                pass
    return removed
