"""Metrics core: counters, gauges and fixed-bucket histograms.

:class:`MetricsRegistry` is the substrate the observability layer is built
on.  It is deliberately minimal — three instrument kinds, no labels, no
background threads — because its one hard requirement is hot-loop safety:
a simulation processing millions of records per second must pay *nothing*
for instrumentation that is not attached.  The engine and
:class:`~repro.sim.system.System` therefore hold an optional hook that is
``None`` when no observer is attached; the disabled path is a single
``is None`` check per record, and results stay bit-identical because every
instrument only ever *reads* simulation state.

Histograms use fixed, monotonically increasing bucket upper bounds
(``bisect`` keeps ``observe`` cheap enough to call per record); the last
bucket is an implicit overflow bucket.  Bucket counts snapshot/merge as
plain lists, which is what the interval timeline uses to report per-window
latency distributions.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Default memory-stall latency buckets in core cycles.  The low buckets
#: resolve L1/L2/L3 hit stalls, the mid-range in-package DRAM hits, and the
#: top buckets queue-delayed off-package misses; the final bucket is an
#: implicit overflow for pathological contention.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = (
    5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0, 1280.0, 2560.0,
)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value that can move in both directions."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram with an implicit overflow bucket.

    ``bounds`` are inclusive upper bounds; an observation lands in the first
    bucket whose bound is >= the value, or in the overflow bucket past the
    last bound.  ``counts`` therefore has ``len(bounds) + 1`` entries.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram bounds must be strictly increasing, got {bounds}")
        self.name = name
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (hot-path: one bisect + two adds)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def snapshot(self) -> List[int]:
        """Copy of the bucket counts (overflow last)."""
        return list(self.counts)

    def quantile(self, q: float, counts: Optional[Sequence[int]] = None) -> float:
        """Approximate quantile ``q`` in [0, 1] from bucket counts.

        Returns the upper bound of the bucket holding the q-th observation
        (the conventional fixed-bucket estimate); the overflow bucket
        reports the last finite bound.  ``counts`` defaults to this
        histogram's own counts so per-window deltas can reuse the bounds.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        counts = self.counts if counts is None else list(counts)
        total = sum(counts)
        if total == 0:
            return 0.0
        rank = q * total
        running = 0
        for index, count in enumerate(counts):
            running += count
            if running >= rank and count:
                return self.bounds[min(index, len(self.bounds) - 1)]
        return self.bounds[-1]

    def as_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Named bag of counters, gauges and histograms.

    Instruments are created on first use and shared thereafter, so
    decoupled components can contribute to the same metric without passing
    instrument objects around.
    """

    def __init__(self, name: str = "metrics") -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        elif tuple(float(b) for b in bounds) != instrument.bounds:
            raise ValueError(
                f"histogram {name!r} already registered with bounds {instrument.bounds}"
            )
        return instrument

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of every instrument."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.as_dict() for name, h in sorted(self._histograms.items())},
        }
